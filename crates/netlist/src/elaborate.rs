//! [`Deck`] AST → [`fts_spice::Netlist`] + [`fts_engine::SimJob`]s.
//!
//! Elaboration runs in two passes. Pass A walks cards in order and
//! collects definitions: `.param` values (references resolve against
//! earlier params only), `.model` cards (validated per level), `.subckt`
//! bodies, and `.nodeorder` lists. Pass B pre-creates the ordered nodes,
//! instantiates element cards in source order (flattening `X` instances
//! with a bounded recursion), resolves probes, and finally lowers each
//! analysis card into a [`SimJob`] labelled `<kind>-<ordinal>`.
//!
//! Every resource the deck controls is capped here: subcircuit depth,
//! device and node counts, and the point counts of every analysis — a
//! hostile deck fails with a [`DeckError`], it does not allocate.

use std::collections::{HashMap, HashSet};

use fts_engine::{SimJob, DEFAULT_MAX_SAMPLES};
use fts_spice::analysis::TranConfig;
use fts_spice::{Mos3Params, MosParams, Netlist, NodeId, SpiceError, Waveform};

use crate::ast::{
    AcScale, AnalysisCard, Card, Deck, ElementCard, ModelCard, SubcktDef, Value, WaveSpec,
};
use crate::error::DeckError;

/// Maximum `.subckt` instantiation depth.
pub const MAX_SUBCKT_DEPTH: usize = 16;
/// Maximum devices a deck may elaborate into.
pub const MAX_DEVICES: usize = 200_000;
/// Maximum nodes a deck may elaborate into.
pub const MAX_NODES: usize = 200_000;
/// Maximum points of a `.dc` sweep.
pub const MAX_SWEEP_POINTS: usize = 100_000;
/// Maximum fixed steps of a `.tran` (tstop / dt).
pub const MAX_TRAN_STEPS: f64 = 50_000_000.0;
/// Maximum points of an `.ac` sweep.
pub const MAX_AC_POINTS: usize = 100_000;

/// Elaboration knobs.
#[derive(Debug, Clone)]
pub struct ElabOptions {
    /// Retained-sample cap applied to `.tran` jobs (the decimating sink's
    /// budget). Defaults to [`DEFAULT_MAX_SAMPLES`].
    pub max_samples: usize,
}

impl Default for ElabOptions {
    fn default() -> ElabOptions {
        ElabOptions {
            max_samples: DEFAULT_MAX_SAMPLES,
        }
    }
}

/// What a deck elaborates into.
#[derive(Debug, Clone)]
pub struct Elaborated {
    /// The flattened circuit.
    pub netlist: Netlist,
    /// The report node: the first `.probe`, else a node named `out`, else
    /// the first non-ground node.
    pub out: NodeId,
    /// All probed nodes in `.probe` order (empty when the deck has none).
    pub probes: Vec<NodeId>,
    /// One job per analysis card, in source order, labelled
    /// `op-0` / `dc-1` / `tran-2` / `ac-3` by analysis ordinal.
    pub jobs: Vec<SimJob>,
}

/// Elaborates a parsed deck.
///
/// # Errors
///
/// A structured [`DeckError`] naming the offending card's line.
pub fn elaborate(deck: &Deck, opts: &ElabOptions) -> Result<Elaborated, DeckError> {
    // Pass A: definitions.
    let mut params: HashMap<String, f64> = HashMap::new();
    let mut models: HashMap<&str, ResolvedModel> = HashMap::new();
    let mut subckts: HashMap<&str, &SubcktDef> = HashMap::new();
    let mut node_order: Vec<(&str, u32)> = Vec::new();
    for sc in &deck.cards {
        match &sc.card {
            Card::Param { name, value } => {
                let v = resolve(value, &params, sc.line)?;
                if params.insert(name.clone(), v).is_some() {
                    return Err(err(
                        "duplicate_param",
                        sc.line,
                        format!("parameter {name:?} defined twice"),
                    ));
                }
            }
            Card::Model(m) => {
                let resolved = ResolvedModel::build(m, &params, sc.line)?;
                if models.insert(m.name.as_str(), resolved).is_some() {
                    return Err(err(
                        "duplicate_model",
                        sc.line,
                        format!("model {:?} defined twice", m.name),
                    ));
                }
            }
            Card::Subckt(def) => {
                if subckts.contains_key(def.name.as_str()) {
                    return Err(err(
                        "duplicate_subckt",
                        sc.line,
                        format!("subcircuit {:?} defined twice", def.name),
                    ));
                }
                subckts.insert(def.name.as_str(), def);
            }
            Card::NodeOrder(nodes) => {
                node_order.extend(nodes.iter().map(|n| (n.as_str(), sc.line)));
            }
            _ => {}
        }
    }

    // Pass B: instantiation.
    let mut ctx = Ctx {
        netlist: Netlist::new(),
        params: &params,
        models: &models,
        subckts: &subckts,
        vsources: HashSet::new(),
        ac_sources: Vec::new(),
    };
    for (name, line) in node_order {
        ctx.make_node("", name, line)?;
    }
    for sc in &deck.cards {
        if let Card::Element(e) = &sc.card {
            ctx.instantiate("", &HashMap::new(), sc.line, e, 0)?;
        }
    }
    if ctx.netlist.device_count() == 0 {
        return Err(err("empty_deck", 1, "deck contains no devices"));
    }

    // Probes and the report node.
    let mut probes = Vec::new();
    for sc in &deck.cards {
        if let Card::Probe { node } = &sc.card {
            let id = ctx.netlist.find_node(node).map_err(|_| {
                err(
                    "unknown_node",
                    sc.line,
                    format!("probed node {node:?} does not exist in the elaborated circuit"),
                )
            })?;
            probes.push(id);
        }
    }
    let out = match probes.first() {
        Some(id) => *id,
        None => match ctx.netlist.find_node("out") {
            Ok(id) => id,
            Err(_) => ctx.netlist.node_id(1),
        },
    };

    // Analyses.
    let mut jobs = Vec::new();
    for sc in &deck.cards {
        let Card::Analysis(a) = &sc.card else {
            continue;
        };
        let ordinal = jobs.len();
        let job = match a {
            AnalysisCard::Op => SimJob::op(ctx.netlist.clone()).label(&format!("op-{ordinal}")),
            AnalysisCard::Dc {
                source,
                start,
                stop,
                step,
            } => {
                if !ctx.vsources.contains(source.as_str()) {
                    return Err(err(
                        "unknown_source",
                        sc.line,
                        format!("\".dc\" sweeps unknown voltage source {source:?}"),
                    ));
                }
                let start = resolve(start, &params, sc.line)?;
                let stop = resolve(stop, &params, sc.line)?;
                let step = resolve(step, &params, sc.line)?;
                let values = sweep_values(start, stop, step, sc.line)?;
                SimJob::dc_sweep(ctx.netlist.clone(), source, values)
                    .label(&format!("dc-{ordinal}"))
            }
            AnalysisCard::Tran { dt, tstop } => {
                let dt = resolve(dt, &params, sc.line)?;
                let tstop = resolve(tstop, &params, sc.line)?;
                if !(dt > 0.0) || !(tstop > 0.0) {
                    return Err(err(
                        "bad_analysis",
                        sc.line,
                        "\".tran\" needs positive dt and tstop",
                    ));
                }
                if tstop / dt > MAX_TRAN_STEPS {
                    return Err(err(
                        "too_many_steps",
                        sc.line,
                        format!("\".tran\" would take more than {MAX_TRAN_STEPS} fixed steps"),
                    ));
                }
                SimJob::transient(ctx.netlist.clone(), TranConfig::fixed(dt, tstop))
                    .probes(&probes)
                    .max_samples(opts.max_samples)
                    .label(&format!("tran-{ordinal}"))
            }
            AnalysisCard::Ac {
                scale,
                n,
                fstart,
                fstop,
            } => {
                let (source, mag) = match ctx.ac_sources.as_slice() {
                    [one] => one.clone(),
                    [] => {
                        return Err(err(
                            "no_ac_source",
                            sc.line,
                            "\".ac\" needs exactly one V card with an \"ac\" magnitude",
                        ))
                    }
                    many => {
                        return Err(err(
                            "ambiguous_ac_source",
                            sc.line,
                            format!(
                                "\".ac\" found {} sources with an \"ac\" magnitude",
                                many.len()
                            ),
                        ))
                    }
                };
                if mag != 1.0 {
                    return Err(err(
                        "bad_analysis",
                        sc.line,
                        format!("only a unit AC magnitude is supported, {source:?} has {mag}"),
                    ));
                }
                let n = resolve(n, &params, sc.line)?;
                let fstart = resolve(fstart, &params, sc.line)?;
                let fstop = resolve(fstop, &params, sc.line)?;
                let freqs = ac_freqs(*scale, n, fstart, fstop, sc.line)?;
                SimJob::ac(ctx.netlist.clone(), &source, freqs).label(&format!("ac-{ordinal}"))
            }
        };
        jobs.push(job);
    }
    if jobs.is_empty() {
        return Err(err(
            "no_analysis",
            1,
            "deck has no analysis card (.op, .dc, .tran, or .ac)",
        ));
    }

    Ok(Elaborated {
        netlist: ctx.netlist,
        out,
        probes,
        jobs,
    })
}

fn err(code: &'static str, line: u32, message: impl Into<String>) -> DeckError {
    DeckError::new(code, line, 1, message)
}

fn resolve(v: &Value, params: &HashMap<String, f64>, line: u32) -> Result<f64, DeckError> {
    match v {
        Value::Lit(x) => Ok(*x),
        Value::Ref(name) => params.get(name).copied().ok_or_else(|| {
            err(
                "unknown_param",
                line,
                format!("undefined parameter {{{name}}} (params must be defined before use)"),
            )
        }),
    }
}

/// The `start + k·step` ladder `.dc` expands to — and that the exporter
/// inverts exactly (the `1e-9` guard makes `floor` immune to the last-bit
/// error of `(stop-start)/step`).
fn sweep_values(start: f64, stop: f64, step: f64, line: u32) -> Result<Vec<f64>, DeckError> {
    if step == 0.0 || !step.is_finite() {
        return Err(err("bad_sweep", line, "\".dc\" step must be nonzero"));
    }
    let ratio = (stop - start) / step;
    if ratio < -1e-9 {
        return Err(err(
            "bad_sweep",
            line,
            "\".dc\" step sign does not reach stop from start",
        ));
    }
    if !(ratio <= MAX_SWEEP_POINTS as f64) {
        return Err(err(
            "too_many_points",
            line,
            format!("\".dc\" sweep exceeds {MAX_SWEEP_POINTS} points"),
        ));
    }
    let n = (ratio + 1e-9).floor() as usize + 1;
    Ok((0..n).map(|k| start + k as f64 * step).collect())
}

fn ac_freqs(
    scale: AcScale,
    n: f64,
    fstart: f64,
    fstop: f64,
    line: u32,
) -> Result<Vec<f64>, DeckError> {
    if n.fract() != 0.0 || !(n >= 1.0) || n > MAX_AC_POINTS as f64 {
        return Err(err(
            "bad_analysis",
            line,
            format!("\".ac\" point count must be an integer in 1..={MAX_AC_POINTS}"),
        ));
    }
    if !(fstart > 0.0) || !(fstop >= fstart) {
        return Err(err(
            "bad_analysis",
            line,
            "\".ac\" needs 0 < fstart <= fstop",
        ));
    }
    let n = n as usize;
    let freqs = match scale {
        AcScale::Lin => {
            if n == 1 {
                vec![fstart]
            } else {
                (0..n)
                    .map(|k| fstart + k as f64 * (fstop - fstart) / (n - 1) as f64)
                    .collect()
            }
        }
        AcScale::Dec => {
            let mut freqs = Vec::new();
            for k in 0.. {
                let f = fstart * 10f64.powf(k as f64 / n as f64);
                if f > fstop * (1.0 + 1e-9) {
                    break;
                }
                if freqs.len() >= MAX_AC_POINTS {
                    return Err(err(
                        "too_many_points",
                        line,
                        format!("\".ac\" sweep exceeds {MAX_AC_POINTS} points"),
                    ));
                }
                freqs.push(f);
            }
            freqs
        }
    };
    Ok(freqs)
}

/// A `.model` card with every parameter resolved and level-checked.
#[derive(Debug, Clone, Copy)]
struct ResolvedModel {
    level: u8,
    kp: f64,
    vto: f64,
    lambda: f64,
    wol: Option<f64>,
    theta: f64,
    esatl: f64,
    cgs: f64,
    cgd: f64,
}

impl ResolvedModel {
    fn build(
        card: &ModelCard,
        params: &HashMap<String, f64>,
        line: u32,
    ) -> Result<ResolvedModel, DeckError> {
        let mut m = ResolvedModel {
            level: card.level,
            kp: 0.0,
            vto: 0.0,
            lambda: 0.0,
            wol: None,
            theta: 0.0,
            esatl: f64::INFINITY,
            cgs: 0.0,
            cgd: 0.0,
        };
        for (key, value) in &card.params {
            let v = resolve(value, params, line)?;
            if card.level == 1 && matches!(key.as_str(), "theta" | "esatl" | "cgs" | "cgd") {
                return Err(err(
                    "bad_model",
                    line,
                    format!("model parameter {key:?} requires level=3"),
                ));
            }
            match key.as_str() {
                "kp" => m.kp = v,
                "vto" => m.vto = v,
                "lambda" => m.lambda = v,
                "wol" => m.wol = Some(v),
                "theta" => m.theta = v,
                "esatl" => m.esatl = v,
                "cgs" => m.cgs = v,
                "cgd" => m.cgd = v,
                _ => unreachable!("parser restricts model keys"),
            }
        }
        if !(m.esatl > 0.0) {
            return Err(err("bad_model", line, "\"esatl\" must be positive"));
        }
        Ok(m)
    }
}

/// Elaboration state threaded through instantiation.
struct Ctx<'a> {
    netlist: Netlist,
    params: &'a HashMap<String, f64>,
    models: &'a HashMap<&'a str, ResolvedModel>,
    subckts: &'a HashMap<&'a str, &'a SubcktDef>,
    /// Fully-prefixed names of every voltage source (for `.dc`).
    vsources: HashSet<String>,
    /// `(prefixed name, magnitude)` of every source with an `ac` clause.
    ac_sources: Vec<(String, f64)>,
}

impl Ctx<'_> {
    /// Resolves a node name inside an instantiation context: ground, a
    /// mapped port, or a (possibly prefixed) local node.
    fn resolve_node(
        &mut self,
        prefix: &str,
        ports: &HashMap<&str, NodeId>,
        name: &str,
        line: u32,
    ) -> Result<NodeId, DeckError> {
        if name == "0" {
            return Ok(Netlist::GROUND);
        }
        if let Some(id) = ports.get(name) {
            return Ok(*id);
        }
        self.make_node(prefix, name, line)
    }

    fn make_node(&mut self, prefix: &str, name: &str, line: u32) -> Result<NodeId, DeckError> {
        let full = if prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{prefix}{name}")
        };
        let id = self.netlist.node(&full);
        if self.netlist.node_count() > MAX_NODES {
            return Err(err(
                "too_many_nodes",
                line,
                format!("deck exceeds {MAX_NODES} nodes"),
            ));
        }
        Ok(id)
    }

    fn check_devices(&self, line: u32) -> Result<(), DeckError> {
        if self.netlist.device_count() > MAX_DEVICES {
            return Err(err(
                "too_many_devices",
                line,
                format!("deck exceeds {MAX_DEVICES} devices"),
            ));
        }
        Ok(())
    }

    fn spice_err(line: u32, e: SpiceError) -> DeckError {
        err("invalid_value", line, e.to_string())
    }

    /// Instantiates one element card under `prefix`, flattening `X`
    /// instances recursively (depth-capped).
    fn instantiate(
        &mut self,
        prefix: &str,
        ports: &HashMap<&str, NodeId>,
        line: u32,
        card: &ElementCard,
        depth: usize,
    ) -> Result<(), DeckError> {
        let full_name = |name: &str| {
            if prefix.is_empty() {
                name.to_owned()
            } else {
                format!("{prefix}{name}")
            }
        };
        match card {
            ElementCard::Res { name, a, b, value } => {
                let a = self.resolve_node(prefix, ports, a, line)?;
                let b = self.resolve_node(prefix, ports, b, line)?;
                let ohms = resolve(value, self.params, line)?;
                self.netlist
                    .resistor(&full_name(name), a, b, ohms)
                    .map_err(|e| Self::spice_err(line, e))?;
            }
            ElementCard::Cap { name, a, b, value } => {
                let a = self.resolve_node(prefix, ports, a, line)?;
                let b = self.resolve_node(prefix, ports, b, line)?;
                let farads = resolve(value, self.params, line)?;
                self.netlist
                    .capacitor(&full_name(name), a, b, farads)
                    .map_err(|e| Self::spice_err(line, e))?;
            }
            ElementCard::V(body) | ElementCard::I(body) => {
                let plus = self.resolve_node(prefix, ports, &body.plus, line)?;
                let minus = self.resolve_node(prefix, ports, &body.minus, line)?;
                let wave = self.waveform(&body.wave, line)?;
                let name = full_name(&body.name);
                let is_v = matches!(card, ElementCard::V(_));
                if let Some(mag) = &body.ac_mag {
                    if !is_v {
                        return Err(err(
                            "bad_waveform",
                            line,
                            "\"ac\" magnitudes are only supported on V cards",
                        ));
                    }
                    let mag = resolve(mag, self.params, line)?;
                    self.ac_sources.push((name.clone(), mag));
                }
                if is_v {
                    self.netlist
                        .vsource(&name, plus, minus, wave)
                        .map_err(|e| Self::spice_err(line, e))?;
                    self.vsources.insert(name);
                } else {
                    self.netlist
                        .isource(&name, plus, minus, wave)
                        .map_err(|e| Self::spice_err(line, e))?;
                }
            }
            ElementCard::Mos(m) => {
                let model = self.models.get(m.model.as_str()).copied().ok_or_else(|| {
                    err(
                        "unknown_model",
                        line,
                        format!(
                            "MOSFET {:?} references undefined model {:?}",
                            m.name, m.model
                        ),
                    )
                })?;
                let d = self.resolve_node(prefix, ports, &m.d, line)?;
                let g = self.resolve_node(prefix, ports, &m.g, line)?;
                let s = self.resolve_node(prefix, ports, &m.s, line)?;
                if let Some(bulk) = &m.bulk {
                    let b = self.resolve_node(prefix, ports, bulk, line)?;
                    if b != Netlist::GROUND {
                        return Err(err(
                            "bulk_not_ground",
                            line,
                            format!(
                                "MOSFET {:?} ties bulk to {bulk:?}; only grounded bulk is supported",
                                m.name
                            ),
                        ));
                    }
                }
                let wol = self.mos_wol(m, model.wol, line)?;
                let name = full_name(&m.name);
                if model.level == 1 {
                    let p = MosParams {
                        kp: model.kp,
                        vth: model.vto,
                        lambda: model.lambda,
                        w_over_l: wol,
                    };
                    self.netlist
                        .nmos(&name, d, g, s, p)
                        .map_err(|e| Self::spice_err(line, e))?;
                } else {
                    let p = Mos3Params {
                        kp: model.kp,
                        vth: model.vto,
                        lambda: model.lambda,
                        w_over_l: wol,
                        theta: model.theta,
                        esat_l: model.esatl,
                        cgs: model.cgs,
                        cgd: model.cgd,
                    };
                    self.netlist
                        .nmos3(&name, d, g, s, p)
                        .map_err(|e| Self::spice_err(line, e))?;
                }
            }
            ElementCard::Instance {
                name,
                nodes,
                subckt,
            } => {
                if depth >= MAX_SUBCKT_DEPTH {
                    return Err(err(
                        "subckt_depth",
                        line,
                        format!("subcircuit nesting exceeds {MAX_SUBCKT_DEPTH} levels"),
                    ));
                }
                let def = *self.subckts.get(subckt.as_str()).ok_or_else(|| {
                    err(
                        "unknown_subckt",
                        line,
                        format!("instance {name:?} references undefined subcircuit {subckt:?}"),
                    )
                })?;
                if def.ports.len() != nodes.len() {
                    return Err(err(
                        "port_mismatch",
                        line,
                        format!(
                            "instance {name:?} connects {} nodes, subcircuit {subckt:?} has {} ports",
                            nodes.len(),
                            def.ports.len()
                        ),
                    ));
                }
                let mut inner_ports: HashMap<&str, NodeId> = HashMap::new();
                for (port, node) in def.ports.iter().zip(nodes) {
                    let id = self.resolve_node(prefix, ports, node, line)?;
                    inner_ports.insert(port.as_str(), id);
                }
                let inner_prefix = format!("{}{name}.", prefix);
                for (body_line, e) in &def.body {
                    self.instantiate(&inner_prefix, &inner_ports, *body_line, e, depth + 1)?;
                }
            }
        }
        self.check_devices(line)
    }

    fn mos_wol(
        &self,
        m: &crate::ast::MosCard,
        model_wol: Option<f64>,
        line: u32,
    ) -> Result<f64, DeckError> {
        if let Some(wol) = &m.wol {
            return resolve(wol, self.params, line);
        }
        match (&m.w, &m.l) {
            (Some(w), Some(l)) => {
                let w = resolve(w, self.params, line)?;
                let l = resolve(l, self.params, line)?;
                if !(l > 0.0) {
                    return Err(err("invalid_value", line, "\"l\" must be positive"));
                }
                Ok(w / l)
            }
            (None, None) => Ok(model_wol.unwrap_or(1.0)),
            _ => Err(err(
                "bad_mos_card",
                line,
                "give both \"w\" and \"l\", or \"wol\", not half a ratio",
            )),
        }
    }

    fn waveform(&self, spec: &WaveSpec, line: u32) -> Result<Waveform, DeckError> {
        Ok(match spec {
            WaveSpec::Dc(v) => Waveform::Dc(resolve(v, self.params, line)?),
            WaveSpec::Pulse(vals) => {
                let mut r = [0.0f64; 7];
                for (slot, v) in r.iter_mut().zip(vals) {
                    *slot = resolve(v, self.params, line)?;
                }
                for (i, name) in [
                    (2, "delay"),
                    (3, "rise"),
                    (4, "fall"),
                    (5, "width"),
                    (6, "period"),
                ] {
                    if r[i] < 0.0 {
                        return Err(err(
                            "bad_waveform",
                            line,
                            format!("pulse {name} must be nonnegative"),
                        ));
                    }
                }
                Waveform::Pulse {
                    v0: r[0],
                    v1: r[1],
                    delay: r[2],
                    rise: r[3],
                    fall: r[4],
                    width: r[5],
                    period: r[6],
                }
            }
            WaveSpec::Pwl(vals) => {
                let mut points = Vec::with_capacity(vals.len() / 2);
                let mut prev_t = f64::NEG_INFINITY;
                for pair in vals.chunks_exact(2) {
                    let t = resolve(&pair[0], self.params, line)?;
                    let v = resolve(&pair[1], self.params, line)?;
                    if t < prev_t {
                        return Err(err(
                            "bad_waveform",
                            line,
                            "pwl times must be non-decreasing",
                        ));
                    }
                    prev_t = t;
                    points.push((t, v));
                }
                Waveform::Pwl(points)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{read_deck, DenyIncludes};
    use crate::parse::parse_cards;
    use fts_engine::Analysis;

    fn elab(text: &str) -> Result<Elaborated, DeckError> {
        let deck = parse_cards(read_deck(text, &mut DenyIncludes)?)?;
        elaborate(&deck, &ElabOptions::default())
    }

    #[test]
    fn rc_deck_builds_jobs_in_order() {
        let e = elab(concat!(
            "v1 in 0 dc 1\n",
            "r1 in out 1k\n",
            "c1 out 0 1u\n",
            ".probe v(out)\n",
            ".op\n",
            ".tran 1u 10u\n",
            ".dc v1 0 1 0.25\n",
        ))
        .unwrap();
        assert_eq!(e.jobs.len(), 3);
        assert_eq!(e.jobs[0].label, "op-0");
        assert_eq!(e.jobs[1].label, "tran-1");
        assert_eq!(e.jobs[2].label, "dc-2");
        assert_eq!(e.netlist.node_name(e.out), "out");
        match &e.jobs[2].analysis {
            Analysis::DcSweep { source, values } => {
                assert_eq!(source, "v1");
                assert_eq!(values, &[0.0, 0.25, 0.5, 0.75, 1.0]);
            }
            other => panic!("{other:?}"),
        }
        match &e.jobs[1].analysis {
            Analysis::Transient { probes, .. } => assert_eq!(probes, &[e.out]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn params_models_and_subckts_flatten() {
        let e = elab(concat!(
            ".param vdd=1.2\n",
            ".param half={vdd}\n",
            ".model sw nmos level=3 kp=2e-4 vto=0.7 wol=2 cgs=1f\n",
            ".subckt cell d g\n",
            "m1 d g 0 sw\n",
            "r1 d 0 10k\n",
            ".ends\n",
            "v1 g 0 dc {half}\n",
            "x1 n1 g cell\n",
            "x2 n2 g cell\n",
            ".op\n",
        ))
        .unwrap();
        // 2 cells × (mos + auto-cgs cap + resistor) + vsource.
        assert_eq!(e.netlist.device_count(), 7);
        assert!(e.netlist.find_node("x1.d").is_err(), "d is a port");
        assert!(e.netlist.find_node("n1").is_ok());
        let names: Vec<String> = e
            .netlist
            .devices()
            .map(|d| match d {
                fts_spice::DeviceView::Resistor { name, .. }
                | fts_spice::DeviceView::Capacitor { name, .. }
                | fts_spice::DeviceView::VSource { name, .. }
                | fts_spice::DeviceView::ISource { name, .. }
                | fts_spice::DeviceView::Nmos { name, .. }
                | fts_spice::DeviceView::Nmos3 { name, .. } => name.to_owned(),
            })
            .collect();
        assert!(names.contains(&"x1.m1".to_owned()));
        assert!(names.contains(&"x1.m1_cgs".to_owned()));
        assert!(names.contains(&"x2.r1".to_owned()));
    }

    #[test]
    fn nodeorder_pins_node_creation() {
        let e = elab(".nodeorder b a\nr1 a b 1\nv1 a 0 dc 1\n.op\n").unwrap();
        assert_eq!(e.netlist.node_name(e.netlist.node_id(1)), "b");
        assert_eq!(e.netlist.node_name(e.netlist.node_id(2)), "a");
    }

    #[test]
    fn elaboration_errors() {
        for (text, code) in [
            (".op\n", "empty_deck"),
            ("r1 a 0 1\nv1 a 0 dc 1\n", "no_analysis"),
            ("r1 a 0 {missing}\n.op\n", "unknown_param"),
            ("m1 d g 0 nope\n.op\n", "unknown_model"),
            ("x1 a b nope\n.op\n", "unknown_subckt"),
            (
                ".subckt s a b\nr1 a b 1\n.ends\nx1 n1 s\n.op\n",
                "port_mismatch",
            ),
            ("r1 a 0 0\n.op\n", "invalid_value"),
            ("v1 a 0 dc 1\n.dc vx 0 1 0.1\n", "unknown_source"),
            ("v1 a 0 dc 1\nr1 a 0 1\n.dc v1 0 1 0\n", "bad_sweep"),
            ("v1 a 0 dc 1\nr1 a 0 1\n.dc v1 0 1 -0.1\n", "bad_sweep"),
            ("v1 a 0 dc 1\nr1 a 0 1\n.dc v1 0 1 1u\n", "too_many_points"),
            ("r1 a 0 1\n.probe v(zz)\n.op\n", "unknown_node"),
            ("r1 a 0 1\n.tran 1n 1\n", "too_many_steps"),
            (
                "v1 a 0 dc 1 ac 1\nr1 a 0 1\n.ac dec 10 0 1k\n",
                "bad_analysis",
            ),
            ("v1 a 0 dc 1\nr1 a 0 1\n.ac dec 10 1 1k\n", "no_ac_source"),
            (
                ".model m nmos level=1 kp=1 vto=1 cgs=1f\nm1 a b 0 m\n.op\n",
                "bad_model",
            ),
            (
                ".model m nmos kp=1 vto=1\nm1 a b 0 c m\nv1 c 0 dc 1\n.op\n",
                "bulk_not_ground",
            ),
            (
                "i1 a 0 dc 1 ac 1\nr1 a 0 1\n.ac dec 1 1 10\n",
                "bad_waveform",
            ),
        ] {
            let e = elab(text).unwrap_err();
            assert_eq!(e.code, code, "{text:?} → {e}");
            assert!(e.line >= 1 && e.col >= 1);
        }
    }

    #[test]
    fn subckt_depth_bomb_is_capped() {
        let mut text = String::new();
        // s0 instantiates nothing; s{k} instantiates s{k-1} twice.
        text.push_str(".subckt s0 a\nr1 a 0 1\n.ends\n");
        for k in 1..=20 {
            text.push_str(&format!(
                ".subckt s{k} a\nx1 a s{}\nx2 a s{}\n.ends\n",
                k - 1,
                k - 1
            ));
        }
        text.push_str("x1 top s20\n.op\n");
        let e = elab(&text).unwrap_err();
        assert!(
            e.code == "subckt_depth" || e.code == "too_many_devices",
            "{e}"
        );
    }

    #[test]
    fn mos_wol_precedence() {
        let e = elab(concat!(
            ".model m nmos kp=1e-4 vto=0.5 wol=3\n",
            "m1 a b 0 m\n",
            "m2 a b 0 m wol=7\n",
            "m3 a b 0 m w=10u l=2u\n",
            "v1 b 0 dc 1\n",
            ".op\n",
        ))
        .unwrap();
        let wols: Vec<f64> = e
            .netlist
            .devices()
            .filter_map(|d| match d {
                fts_spice::DeviceView::Nmos { params, .. } => Some(params.w_over_l),
                _ => None,
            })
            .collect();
        assert_eq!(wols, vec![3.0, 7.0, 5.0]);
    }
}
