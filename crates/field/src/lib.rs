//! 2-D current-density field solver (Fig. 8 of the DATE 2019 paper).
//!
//! The paper shows TCAD current-density vector profiles for the square,
//! cross, and junctionless devices, using them *qualitatively*: the cross
//! gate spreads current more uniformly across terminals than the square
//! gate. This crate reproduces those maps with a finite-difference solve of
//! the steady-state current-continuity equation `∇·(σ∇φ) = 0` over the
//! device plan view, where the conductivity map `σ(x,y)` encodes electrodes
//! (metallic), the gate-controlled channel (on/off), and the substrate.
//!
//! # Example
//!
//! ```
//! use fts_field::{device_plan, SolveOptions};
//! use fts_device::DeviceKind;
//!
//! let problem = device_plan(DeviceKind::Square, true);
//! let sol = problem.solve(&SolveOptions::default());
//! // Current flows: the drain electrode sources a nonzero total current.
//! assert!(sol.electrode_current(&problem, 0) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fts_device::DeviceKind;

/// A rectangle of grid cells: `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left column (inclusive).
    pub x0: usize,
    /// Right column (exclusive).
    pub x1: usize,
    /// Top row (inclusive).
    pub y0: usize,
    /// Bottom row (exclusive).
    pub y1: usize,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty or inverted.
    pub fn new(x0: usize, x1: usize, y0: usize, y1: usize) -> Rect {
        assert!(x0 < x1 && y0 < y1, "rectangle must be non-empty");
        Rect { x0, x1, y0, y1 }
    }

    /// True when `(x, y)` lies inside.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }
}

/// A conduction problem on an `nx × ny` grid: per-cell conductivity plus
/// Dirichlet electrodes.
#[derive(Debug, Clone)]
pub struct FieldProblem {
    nx: usize,
    ny: usize,
    sigma: Vec<f64>,
    fixed: Vec<Option<f64>>,
    electrodes: Vec<Rect>,
}

impl FieldProblem {
    /// Creates a grid with uniform background conductivity.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `background` is not positive.
    pub fn new(nx: usize, ny: usize, background: f64) -> FieldProblem {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        assert!(background > 0.0, "conductivity must be positive");
        FieldProblem {
            nx,
            ny,
            sigma: vec![background; nx * ny],
            fixed: vec![None; nx * ny],
            electrodes: Vec::new(),
        }
    }

    /// Grid width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Sets the conductivity inside a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle leaves the grid or `value` is not positive.
    pub fn set_conductivity(&mut self, rect: Rect, value: f64) {
        assert!(
            rect.x1 <= self.nx && rect.y1 <= self.ny,
            "rect outside grid"
        );
        assert!(value > 0.0, "conductivity must be positive");
        for y in rect.y0..rect.y1 {
            for x in rect.x0..rect.x1 {
                self.sigma[y * self.nx + x] = value;
            }
        }
    }

    /// Adds an electrode: high conductivity and a fixed potential. Returns
    /// the electrode index for later current queries.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle leaves the grid.
    pub fn add_electrode(&mut self, rect: Rect, volts: f64) -> usize {
        assert!(
            rect.x1 <= self.nx && rect.y1 <= self.ny,
            "rect outside grid"
        );
        self.set_conductivity(rect, 1.0e3);
        for y in rect.y0..rect.y1 {
            for x in rect.x0..rect.x1 {
                self.fixed[y * self.nx + x] = Some(volts);
            }
        }
        self.electrodes.push(rect);
        self.electrodes.len() - 1
    }

    /// Conductivity at a cell.
    pub fn conductivity(&self, x: usize, y: usize) -> f64 {
        self.sigma[y * self.nx + x]
    }

    /// Solves `∇·(σ∇φ) = 0` by successive over-relaxation with
    /// harmonic-mean face conductances.
    pub fn solve(&self, opts: &SolveOptions) -> FieldSolution {
        let (nx, ny) = (self.nx, self.ny);
        let mut phi = vec![0.0f64; nx * ny];
        for (i, f) in self.fixed.iter().enumerate() {
            if let Some(v) = f {
                phi[i] = *v;
            }
        }
        let face = |a: f64, b: f64| 2.0 * a * b / (a + b);
        let mut max_delta = f64::INFINITY;
        for _ in 0..opts.max_iterations {
            if max_delta < opts.tolerance {
                break;
            }
            max_delta = 0.0;
            for y in 0..ny {
                for x in 0..nx {
                    let i = y * nx + x;
                    if self.fixed[i].is_some() {
                        continue;
                    }
                    let s = self.sigma[i];
                    let mut num = 0.0;
                    let mut den = 0.0;
                    if x > 0 {
                        let g = face(s, self.sigma[i - 1]);
                        num += g * phi[i - 1];
                        den += g;
                    }
                    if x + 1 < nx {
                        let g = face(s, self.sigma[i + 1]);
                        num += g * phi[i + 1];
                        den += g;
                    }
                    if y > 0 {
                        let g = face(s, self.sigma[i - nx]);
                        num += g * phi[i - nx];
                        den += g;
                    }
                    if y + 1 < ny {
                        let g = face(s, self.sigma[i + nx]);
                        num += g * phi[i + nx];
                        den += g;
                    }
                    if den == 0.0 {
                        continue;
                    }
                    let target = num / den;
                    let new = phi[i] + opts.omega * (target - phi[i]);
                    max_delta = max_delta.max((new - phi[i]).abs());
                    phi[i] = new;
                }
            }
        }
        FieldSolution::from_potential(self, phi)
    }
}

/// Iteration controls for [`FieldProblem::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Maximum SOR sweeps.
    pub max_iterations: usize,
    /// Stop when the largest per-sweep potential update falls below this.
    pub tolerance: f64,
    /// Over-relaxation factor in (0, 2).
    pub omega: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_iterations: 20_000,
            tolerance: 1.0e-9,
            omega: 1.8,
        }
    }
}

/// Solved potential and current-density fields.
#[derive(Debug, Clone)]
pub struct FieldSolution {
    nx: usize,
    ny: usize,
    phi: Vec<f64>,
    jx: Vec<f64>,
    jy: Vec<f64>,
}

impl FieldSolution {
    fn from_potential(problem: &FieldProblem, phi: Vec<f64>) -> FieldSolution {
        let (nx, ny) = (problem.nx, problem.ny);
        let mut jx = vec![0.0; nx * ny];
        let mut jy = vec![0.0; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                let s = problem.sigma[i];
                // Central differences where possible, one-sided at edges.
                let dphidx = if x == 0 {
                    phi[i + 1] - phi[i]
                } else if x + 1 == nx {
                    phi[i] - phi[i - 1]
                } else {
                    0.5 * (phi[i + 1] - phi[i - 1])
                };
                let dphidy = if y == 0 {
                    phi[i + nx] - phi[i]
                } else if y + 1 == ny {
                    phi[i] - phi[i - nx]
                } else {
                    0.5 * (phi[i + nx] - phi[i - nx])
                };
                jx[i] = -s * dphidx;
                jy[i] = -s * dphidy;
            }
        }
        FieldSolution {
            nx,
            ny,
            phi,
            jx,
            jy,
        }
    }

    /// Potential at a cell \[V\].
    pub fn potential(&self, x: usize, y: usize) -> f64 {
        self.phi[y * self.nx + x]
    }

    /// Current-density vector at a cell (arbitrary units: σ·V per cell).
    pub fn current_density(&self, x: usize, y: usize) -> (f64, f64) {
        let i = y * self.nx + x;
        (self.jx[i], self.jy[i])
    }

    /// Magnitude of the current density at a cell.
    pub fn magnitude(&self, x: usize, y: usize) -> f64 {
        let (a, b) = self.current_density(x, y);
        (a * a + b * b).sqrt()
    }

    /// Net current leaving electrode `index` of `problem` (sum of boundary
    /// fluxes; positive = the electrode sources current).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn electrode_current(&self, problem: &FieldProblem, index: usize) -> f64 {
        let rect = problem.electrodes[index];
        let face = |a: f64, b: f64| 2.0 * a * b / (a + b);
        let mut total = 0.0;
        for y in rect.y0..rect.y1 {
            for x in rect.x0..rect.x1 {
                let i = y * self.nx + x;
                let mut flux = 0.0;
                let neighbours: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
                for (dx, dy) in neighbours {
                    let (nxp, nyp) = (x as isize + dx, y as isize + dy);
                    if nxp < 0 || nyp < 0 || nxp as usize >= self.nx || nyp as usize >= self.ny {
                        continue;
                    }
                    let (nxp, nyp) = (nxp as usize, nyp as usize);
                    if rect.contains(nxp, nyp) {
                        continue; // internal face
                    }
                    let j = nyp * self.nx + nxp;
                    let g = face(problem.sigma[i], problem.sigma[j]);
                    flux += g * (self.phi[i] - self.phi[j]);
                }
                total += flux;
            }
        }
        total
    }

    /// Writes the current-density vector field as CSV (`x,y,jx,jy,mag`)
    /// for external plotting — the raw data behind Fig. 8's quiver plots.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "x,y,jx,jy,mag")?;
        for y in 0..self.ny {
            for x in 0..self.nx {
                let (jx, jy) = self.current_density(x, y);
                writeln!(w, "{x},{y},{jx:.6e},{jy:.6e},{:.6e}", self.magnitude(x, y))?;
            }
        }
        Ok(())
    }

    /// Coefficient of variation (std/mean) of |J| over a region — the
    /// uniformity metric used to compare Fig. 8a against Fig. 8b.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or outside the grid.
    pub fn uniformity_cv(&self, region: Rect) -> f64 {
        assert!(
            region.x1 <= self.nx && region.y1 <= self.ny,
            "region outside grid"
        );
        let mut values = Vec::new();
        for y in region.y0..region.y1 {
            for x in region.x0..region.x1 {
                values.push(self.magnitude(x, y));
            }
        }
        assert!(!values.is_empty(), "region must be non-empty");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        var.sqrt() / mean
    }
}

/// Grid resolution used by [`device_plan`].
pub const PLAN_GRID: usize = 48;

/// Builds the plan-view conduction problem of a Table II device under the
/// DSSS bias (T1 driven at 1 V, T2–T4 grounded), with the gate `on` or off.
///
/// The conductivity map follows Fig. 4: four edge electrodes, a central
/// gate region (full square, cross arms, or nanowire) whose conductivity is
/// gate-controlled, and a poorly conducting substrate elsewhere.
pub fn device_plan(kind: DeviceKind, gate_on: bool) -> FieldProblem {
    let n = PLAN_GRID;
    let channel_sigma = if gate_on { 1.0 } else { 1.0e-5 };
    let substrate = 1.0e-4;
    let mut p = FieldProblem::new(n, n, substrate);

    // Gate-controlled region.
    match kind {
        DeviceKind::Square => {
            // Central 1000/2400 of the die.
            let a = n * 7 / 24;
            let b = n - a;
            p.set_conductivity(Rect::new(a, b, a, b), channel_sigma);
        }
        DeviceKind::Cross => {
            // Two 200/2400-wide arms spanning the die.
            let w = (n / 12).max(2);
            let mid = n / 2;
            p.set_conductivity(Rect::new(mid - w / 2, mid + w / 2, 1, n - 1), channel_sigma);
            p.set_conductivity(Rect::new(1, n - 1, mid - w / 2, mid + w / 2), channel_sigma);
        }
        DeviceKind::Junctionless => {
            // A thin wire from T1 to T3 with the gate wrapped around its
            // centre; only the gated segment switches.
            let w = 2;
            let mid = n / 2;
            p.set_conductivity(Rect::new(mid - w / 2, mid + w / 2, 1, n - 1), 1.0);
            let g = n / 6;
            p.set_conductivity(
                Rect::new(mid - w / 2, mid + w / 2, mid - g / 2, mid + g / 2),
                channel_sigma,
            );
        }
    }

    // Electrodes at the edge midpoints (T1 north, T2 east, T3 south, T4
    // west), sized 700/2400 of the edge. Like the physical n⁺ wells, they
    // extend inward until they reach the gate-controlled region, so the
    // gate — not the substrate gap — controls the current.
    let e = n * 7 / 24;
    let lo = (n - e) / 2;
    let hi = lo + e;
    let d = n * 7 / 24; // electrode depth in cells
    p.add_electrode(Rect::new(lo, hi, 0, d), 1.0); // T1 (drain)
    p.add_electrode(Rect::new(n - d, n, lo, hi), 0.0); // T2
    p.add_electrode(Rect::new(lo, hi, n - d, n), 0.0); // T3
    p.add_electrode(Rect::new(0, d, lo, hi), 0.0); // T4
    p
}

/// The central channel region used for uniformity comparisons.
pub fn channel_region() -> Rect {
    let n = PLAN_GRID;
    Rect::new(n / 3, 2 * n / 3, n / 3, 2 * n / 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bar_reproduces_ohms_law() {
        // 1-D bar: fixed 1 V left, 0 V right, uniform σ → linear potential.
        let mut p = FieldProblem::new(20, 3, 1.0);
        p.add_electrode(Rect::new(0, 1, 0, 3), 1.0);
        p.add_electrode(Rect::new(19, 20, 0, 3), 0.0);
        // Keep the bar perfectly uniform so the analytic profile is linear.
        p.set_conductivity(Rect::new(0, 1, 0, 3), 1.0);
        p.set_conductivity(Rect::new(19, 20, 0, 3), 1.0);
        let sol = p.solve(&SolveOptions::default());
        for x in 1..19 {
            let expect = 1.0 - x as f64 / 19.0;
            let got = sol.potential(x, 1);
            assert!((got - expect).abs() < 0.02, "x={x}: {got} vs {expect}");
        }
        // Current in ≈ current out.
        let i_in = sol.electrode_current(&p, 0);
        let i_out = sol.electrode_current(&p, 1);
        assert!(i_in > 0.0);
        assert!((i_in + i_out).abs() < 1e-6 * i_in);
    }

    #[test]
    fn potential_respects_maximum_principle() {
        let p = device_plan(DeviceKind::Square, true);
        let sol = p.solve(&SolveOptions::default());
        for y in 0..p.ny() {
            for x in 0..p.nx() {
                let v = sol.potential(x, y);
                assert!((-1e-9..=1.0 + 1e-9).contains(&v), "φ({x},{y}) = {v}");
            }
        }
    }

    #[test]
    fn gate_modulates_current() {
        for kind in DeviceKind::all() {
            let on = device_plan(kind, true);
            let off = device_plan(kind, false);
            let i_on = on.solve(&SolveOptions::default()).electrode_current(&on, 0);
            let i_off = off
                .solve(&SolveOptions::default())
                .electrode_current(&off, 0);
            assert!(i_on > 5.0 * i_off, "{kind}: on {i_on:.3e} off {i_off:.3e}");
        }
    }

    #[test]
    fn kcl_across_all_electrodes() {
        let p = device_plan(DeviceKind::Cross, true);
        let sol = p.solve(&SolveOptions::default());
        let total: f64 = (0..4).map(|e| sol.electrode_current(&p, e)).sum();
        let drive = sol.electrode_current(&p, 0);
        assert!(
            total.abs() < 1e-3 * drive.abs(),
            "net {total:.3e} vs drive {drive:.3e}"
        );
    }

    #[test]
    fn cross_is_more_uniform_than_square_fig8() {
        // The paper's Fig. 8 observation: the cross-shaped gate yields a
        // more uniform current-vector profile across terminals.
        let sq = device_plan(DeviceKind::Square, true);
        let cr = device_plan(DeviceKind::Cross, true);
        let sol_sq = sq.solve(&SolveOptions::default());
        let sol_cr = cr.solve(&SolveOptions::default());
        // Compare the spread of per-terminal sink currents.
        let sinks = |p: &FieldProblem, s: &FieldSolution| -> f64 {
            let i: Vec<f64> = (1..4).map(|e| -s.electrode_current(p, e)).collect();
            let mean = i.iter().sum::<f64>() / 3.0;
            let var = i.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            var.sqrt() / mean
        };
        let cv_sq = sinks(&sq, &sol_sq);
        let cv_cr = sinks(&cr, &sol_cr);
        assert!(
            cv_cr <= cv_sq + 1e-9,
            "cross terminal spread {cv_cr:.3} should not exceed square {cv_sq:.3}"
        );
    }

    #[test]
    fn solver_converges_within_budget() {
        let p = device_plan(DeviceKind::Junctionless, true);
        let tight = p.solve(&SolveOptions::default());
        let loose = p.solve(&SolveOptions {
            max_iterations: 40_000,
            ..Default::default()
        });
        let d = (tight.electrode_current(&p, 0) - loose.electrode_current(&p, 0)).abs();
        assert!(d < 1e-6 * loose.electrode_current(&p, 0).abs().max(1e-12));
    }

    #[test]
    fn csv_export_has_full_grid() {
        let p = device_plan(DeviceKind::Square, true);
        let sol = p.solve(&SolveOptions::default());
        let mut buf = Vec::new();
        sol.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), PLAN_GRID * PLAN_GRID + 1);
        assert!(text.starts_with("x,y,jx,jy,mag"));
    }

    #[test]
    fn gauss_seidel_agrees_with_sor() {
        // omega = 1 reduces SOR to Gauss-Seidel; both must converge to the
        // same solution (the ablation bench compares their speed).
        let p = device_plan(DeviceKind::Cross, true);
        let sor = p.solve(&SolveOptions::default());
        let gs = p.solve(&SolveOptions {
            omega: 1.0,
            max_iterations: 200_000,
            ..Default::default()
        });
        let d = (sor.electrode_current(&p, 0) - gs.electrode_current(&p, 0)).abs();
        assert!(d < 1e-5 * sor.electrode_current(&p, 0).abs());
    }

    #[test]
    fn rect_validation() {
        assert!(std::panic::catch_unwind(|| Rect::new(3, 3, 0, 1)).is_err());
        let r = Rect::new(1, 4, 2, 5);
        assert!(r.contains(1, 2));
        assert!(!r.contains(4, 2));
    }

    #[test]
    fn current_density_points_from_drain_to_sources() {
        let p = device_plan(DeviceKind::Square, true);
        let sol = p.solve(&SolveOptions::default());
        // Just below the T1 (north) electrode, current flows downward
        // (positive jy) on average.
        let n = PLAN_GRID;
        let below_electrode = n * 7 / 24 + 1;
        let mut jy_sum = 0.0;
        for x in n / 3..2 * n / 3 {
            jy_sum += sol.current_density(x, below_electrode).1;
        }
        assert!(
            jy_sum > 0.0,
            "southward current expected under the drain, got {jy_sum:.3e}"
        );
    }
}
