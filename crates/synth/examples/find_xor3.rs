use fts_logic::generators;
use fts_synth::search::{anneal, AnnealOptions};
fn main() {
    let f = generators::xor(3);
    let lat = anneal(&f, 3, 3, &AnnealOptions::default()).expect("found");
    println!("{lat:?}");
}
