//! Property tests for lattice synthesis: every engine's output must
//! compute exactly the target function, on arbitrary functions.

use proptest::prelude::*;

use fts_logic::TruthTable;
use fts_synth::{column, dual, synthesize};

fn arb_tt(vars: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<bool>(), 1 << vars)
        .prop_map(move |bits| TruthTable::from_fn(vars, |x| bits[x as usize]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn altun_riedel_exact_on_4var_functions(f in arb_tt(4)) {
        let lat = dual::altun_riedel(&f).unwrap();
        prop_assert_eq!(lat.truth_table(4).unwrap(), f);
    }

    #[test]
    fn column_construction_never_returns_wrong_lattices(f in arb_tt(3)) {
        if let Some(lat) = column::column_construction(&f).unwrap() {
            prop_assert_eq!(lat.truth_table(3).unwrap(), f);
        }
    }

    #[test]
    fn synthesize_picks_a_verified_minimum(f in arb_tt(3)) {
        let s = synthesize(&f).unwrap();
        prop_assert_eq!(s.lattice.truth_table(3).unwrap(), f.clone());
        // Never larger than the dual construction it always has available.
        let ar = dual::altun_riedel(&f).unwrap();
        prop_assert!(s.area() <= ar.site_count());
    }

    #[test]
    fn dual_construction_dimensions_match_isop_sizes(f in arb_tt(3)) {
        prop_assume!(!f.is_zero() && !f.is_one());
        let lat = dual::altun_riedel(&f).unwrap();
        let cols = fts_logic::isop::isop(&f).len();
        let rows = fts_logic::isop::isop(&f.dual()).len();
        prop_assert_eq!((lat.rows(), lat.cols()), (rows, cols));
    }
}
