use std::error::Error;
use std::fmt;

use fts_lattice::LatticeError;
use fts_logic::LogicError;

/// Errors produced by lattice synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// The target function has too many variables for cube-based synthesis.
    TooManyVariables {
        /// The variable count of the target.
        vars: usize,
    },
    /// The Altun–Riedel invariant failed: a product of `f` and a product of
    /// `f^D` share no literal. This indicates a non-ISOP input cover and is
    /// unreachable through the public API.
    NoSharedLiteral {
        /// Index of the column (product of `f`).
        column: usize,
        /// Index of the row (product of `f^D`).
        row: usize,
    },
    /// An underlying logic operation failed.
    Logic(LogicError),
    /// An underlying lattice operation failed.
    Lattice(LatticeError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::TooManyVariables { vars } => {
                write!(f, "synthesis supports at most 26 variables, got {vars}")
            }
            SynthError::NoSharedLiteral { column, row } => {
                write!(
                    f,
                    "no shared literal between product {column} and dual product {row}"
                )
            }
            SynthError::Logic(e) => write!(f, "logic error: {e}"),
            SynthError::Lattice(e) => write!(f, "lattice error: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Logic(e) => Some(e),
            SynthError::Lattice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogicError> for SynthError {
    fn from(e: LogicError) -> Self {
        SynthError::Logic(e)
    }
}

impl From<LatticeError> for SynthError {
    fn from(e: LatticeError) -> Self {
        SynthError::Lattice(e)
    }
}
