//! Logic synthesis targeting four-terminal switching lattices (§II of the
//! DATE 2019 paper; algorithms from its references \[2\]–\[4\], \[9\], \[13\]).
//!
//! Three synthesis engines are provided, in increasing search effort:
//!
//! * [`dual::altun_riedel`] — the constructive Altun–Riedel method: an
//!   irredundant SOP of the target `f` supplies the columns, an irredundant
//!   SOP of its dual `f^D` the rows, and each site receives a literal shared
//!   by its column and row products. Always succeeds, size
//!   `|ISOP(f^D)| × |ISOP(f)|`.
//! * [`column::column_construction`] — one column per product, applicable
//!   when every product has the same literal count; finds the 3×4 XOR3
//!   realization of the paper's Fig. 3a.
//! * [`search`] — exhaustive (tiny lattices) and simulated-annealing
//!   searches for minimum-size realizations; finds the 3×3 XOR3 lattice of
//!   Fig. 3b.
//!
//! # Example
//!
//! ```
//! use fts_logic::generators;
//! use fts_synth::dual;
//!
//! let f = generators::xor(3);
//! let lat = dual::altun_riedel(&f)?;
//! assert_eq!((lat.rows(), lat.cols()), (4, 4)); // XOR3 is self-dual, 4 products
//! assert_eq!(lat.truth_table(3)?, f);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod dual;
mod error;
pub mod search;

pub use error::SynthError;

use fts_lattice::Lattice;
use fts_logic::TruthTable;

/// The outcome of [`synthesize`]: a verified lattice plus provenance.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The synthesized lattice; its function equals the target.
    pub lattice: Lattice,
    /// Which engine produced the result.
    pub method: Method,
}

/// Synthesis engine identifiers, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// Altun–Riedel dual-cover construction.
    AltunRiedel,
    /// Column-per-product construction.
    Column,
    /// Simulated-annealing size search.
    Annealing,
    /// Exhaustive search.
    Exhaustive,
}

impl Synthesis {
    /// Switch count of the realization.
    pub fn area(&self) -> usize {
        self.lattice.site_count()
    }
}

/// Synthesizes `f`, preferring smaller realizations: tries the column
/// construction, then Altun–Riedel, and returns the smaller verified result.
///
/// This is the "pick the most appropriate lattice" workflow the paper
/// sketches at the end of §II. For aggressive minimization call
/// [`search::anneal_minimal`] explicitly.
///
/// # Errors
///
/// Returns [`SynthError`] when `f` cannot be processed (e.g. more variables
/// than the lattice cube representation supports).
pub fn synthesize(f: &TruthTable) -> Result<Synthesis, SynthError> {
    let ar = dual::altun_riedel(f)?;
    let best_column = column::column_construction(f)?;
    let mut best = Synthesis {
        lattice: ar,
        method: Method::AltunRiedel,
    };
    if let Some(col) = best_column {
        if col.site_count() < best.area() {
            best = Synthesis {
                lattice: col,
                method: Method::Column,
            };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    #[test]
    fn synthesize_prefers_smaller_realization() {
        let f = generators::xor(3);
        let s = synthesize(&f).unwrap();
        assert_eq!(s.lattice.truth_table(3).unwrap(), f);
        // Column construction gives 3×4 = 12 < 16 = 4×4 Altun–Riedel.
        assert_eq!(s.method, Method::Column);
        assert_eq!(s.area(), 12);
    }

    #[test]
    fn synthesize_verifies_on_assorted_functions() {
        for f in [
            generators::and(4),
            generators::or(4),
            generators::majority(3),
            generators::xnor(3),
            generators::threshold(4, 2),
        ] {
            let s = synthesize(&f).unwrap();
            assert_eq!(
                s.lattice.truth_table(f.vars()).unwrap(),
                f,
                "method {:?}",
                s.method
            );
        }
    }
}
