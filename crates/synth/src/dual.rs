//! The Altun–Riedel dual-cover lattice construction (reference \[9\] of the
//! paper: Altun & Riedel, *Logic synthesis for switching lattices*, IEEE
//! Trans. Computers 2012).
//!
//! Given a target `f` with irredundant SOP `p_1 + … + p_k` and its dual
//! `f^D` with irredundant SOP `q_1 + … + q_r`, build an `r×k` lattice whose
//! site `(i, j)` carries any literal shared by `p_j` and `q_i`. Every column
//! then realizes its product `p_j` and — by duality — every sneak path is
//! covered by some product, so the lattice computes exactly `f`.

use fts_lattice::Lattice;
use fts_logic::{isop, Cube, Literal, TruthTable};

use crate::SynthError;

/// Synthesizes `f` with the Altun–Riedel construction, returning a verified
/// `|ISOP(f^D)| × |ISOP(f)|` lattice.
///
/// Constant functions yield a 1×1 lattice holding the constant.
///
/// # Errors
///
/// Returns [`SynthError::TooManyVariables`] for more than 26 variables
/// (literal display and cube masks bound the practical range) and
/// [`SynthError::NoSharedLiteral`] if the dual invariant is violated
/// (unreachable via this API; defensive).
///
/// # Example
///
/// ```
/// use fts_logic::generators;
/// use fts_synth::dual::altun_riedel;
///
/// let f = generators::majority(3);
/// let lat = altun_riedel(&f)?;
/// assert_eq!((lat.rows(), lat.cols()), (3, 3)); // MAJ3 is self-dual
/// assert_eq!(lat.truth_table(3)?, f);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn altun_riedel(f: &TruthTable) -> Result<Lattice, SynthError> {
    if f.vars() > 26 {
        return Err(SynthError::TooManyVariables { vars: f.vars() });
    }
    if f.is_zero() {
        return Ok(Lattice::filled(1, 1, Literal::False)?);
    }
    if f.is_one() {
        return Ok(Lattice::filled(1, 1, Literal::True)?);
    }

    let cols_cover = isop::isop(f);
    let rows_cover = isop::isop(&f.dual());
    let k = cols_cover.len();
    let r = rows_cover.len();

    let mut sites = Vec::with_capacity(r * k);
    for (i, q) in rows_cover.iter().enumerate() {
        for (j, p) in cols_cover.iter().enumerate() {
            let lit =
                shared_literal(*p, *q).ok_or(SynthError::NoSharedLiteral { column: j, row: i })?;
            sites.push(lit);
        }
    }
    let lattice = Lattice::from_literals(r, k, sites)?;
    debug_assert_eq!(
        lattice.truth_table(f.vars())?,
        *f,
        "Altun–Riedel construction must be exact"
    );
    Ok(lattice)
}

/// A literal common to both cubes (same variable, same polarity), lowest
/// variable index first.
fn shared_literal(p: Cube, q: Cube) -> Option<Literal> {
    let pos = p.pos_mask() & q.pos_mask();
    let neg = p.neg_mask() & q.neg_mask();
    if pos != 0 && (neg == 0 || pos.trailing_zeros() < neg.trailing_zeros()) {
        Some(Literal::pos(pos.trailing_zeros() as u8))
    } else if neg != 0 {
        Some(Literal::neg(neg.trailing_zeros() as u8))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    fn verify(f: &TruthTable) -> Lattice {
        let lat = altun_riedel(f).unwrap();
        assert_eq!(lat.truth_table(f.vars()).unwrap(), *f, "lattice:\n{lat:?}");
        lat
    }

    #[test]
    fn constants_are_one_by_one() {
        let zero = TruthTable::constant(3, false).unwrap();
        let one = TruthTable::constant(3, true).unwrap();
        assert_eq!(altun_riedel(&zero).unwrap().site_count(), 1);
        assert_eq!(altun_riedel(&one).unwrap().site_count(), 1);
    }

    #[test]
    fn and_or_degenerate_shapes() {
        // AND(n): one product, dual OR(n) has n products → n×1 lattice.
        let lat = verify(&generators::and(3));
        assert_eq!((lat.rows(), lat.cols()), (3, 1));
        // OR(n): n products, dual has 1 product → 1×n lattice.
        let lat = verify(&generators::or(3));
        assert_eq!((lat.rows(), lat.cols()), (1, 3));
    }

    #[test]
    fn xor3_is_four_by_four() {
        let lat = verify(&generators::xor(3));
        assert_eq!((lat.rows(), lat.cols()), (4, 4));
    }

    #[test]
    fn majority_is_three_by_three() {
        let lat = verify(&generators::majority(3));
        assert_eq!((lat.rows(), lat.cols()), (3, 3));
    }

    #[test]
    fn exact_on_random_functions() {
        let mut state = 0xC0FFEEu64;
        for vars in 2..=5 {
            for _ in 0..15 {
                let f = TruthTable::from_fn(vars, |_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 41) & 1 == 1
                })
                .unwrap();
                if f.is_zero() || f.is_one() {
                    continue;
                }
                verify(&f);
            }
        }
    }

    #[test]
    fn single_literal_functions() {
        let f = TruthTable::var(4, 2).unwrap();
        let lat = verify(&f);
        assert_eq!(lat.site_count(), 1);
        let g = !&f;
        let lat = verify(&g);
        assert_eq!(lat.site_count(), 1);
    }
}
