//! Minimum-size lattice search.
//!
//! The paper's Fig. 3b shows the *minimum* realization of XOR3: a 3×3
//! lattice found by search-based synthesis (its references \[3\], \[13\] use
//! SAT; here we provide an exhaustive engine for tiny lattices and a
//! simulated-annealing engine that scales to the sizes the paper uses).

use fts_lattice::Lattice;
use fts_logic::{Literal, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SynthError;

/// Options controlling [`anneal`].
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Independent restarts before giving up.
    pub restarts: usize,
    /// Moves per restart.
    pub iterations: usize,
    /// Initial acceptance temperature (in truth-table-row units).
    pub initial_temperature: f64,
    /// RNG seed — searches are deterministic per seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            restarts: 40,
            iterations: 30_000,
            initial_temperature: 3.0,
            seed: 0x4C41_5454,
        }
    }
}

/// Exhaustively searches all literal assignments of an `rows×cols` lattice
/// for one computing `f`. Only feasible for very small lattices: the space
/// is `(2·vars + 2)^(rows·cols)`.
///
/// Returns `None` when no assignment realizes `f`.
///
/// # Errors
///
/// Returns [`SynthError::TooManyVariables`] when the search space exceeds
/// 2^28 assignments.
pub fn exhaustive(f: &TruthTable, rows: usize, cols: usize) -> Result<Option<Lattice>, SynthError> {
    let alphabet = literal_alphabet(f.vars());
    let sites = rows * cols;
    let space = (alphabet.len() as f64).powi(sites as i32);
    if space > (1u64 << 28) as f64 {
        return Err(SynthError::TooManyVariables { vars: f.vars() });
    }
    let mut lat = Lattice::filled(rows, cols, alphabet[0])?;
    let mut digits = vec![0usize; sites];
    loop {
        if lat.truth_table(f.vars()).ok().as_ref() == Some(f) {
            return Ok(Some(lat));
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == sites {
                return Ok(None);
            }
            digits[i] += 1;
            if digits[i] < alphabet.len() {
                lat.set_literal((i / cols, i % cols), alphabet[digits[i]])?;
                break;
            }
            digits[i] = 0;
            lat.set_literal((i / cols, i % cols), alphabet[0])?;
            i += 1;
        }
    }
}

/// Simulated-annealing search for an `rows×cols` realization of `f`.
///
/// Cost = number of truth-table rows where the candidate disagrees with
/// `f`. Returns the first exact realization found, or `None` when the
/// budget is exhausted (which does **not** prove non-existence).
///
/// # Example
///
/// ```
/// use fts_logic::generators;
/// use fts_synth::search::{anneal, AnnealOptions};
///
/// // The paper's Fig. 3b: XOR3 fits on a 3×3 lattice.
/// let f = generators::xor(3);
/// let lat = anneal(&f, 3, 3, &AnnealOptions::default()).expect("known realizable");
/// assert_eq!(lat.truth_table(3).unwrap(), f);
/// ```
pub fn anneal(f: &TruthTable, rows: usize, cols: usize, opts: &AnnealOptions) -> Option<Lattice> {
    let alphabet = literal_alphabet(f.vars());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sites = rows * cols;
    let total_rows = f.len() as f64;

    for _ in 0..opts.restarts {
        let mut lat = Lattice::from_literals(
            rows,
            cols,
            (0..sites)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect(),
        )
        .expect("dims validated by caller");
        let mut cost = mismatch_count(f, &lat);
        if cost == 0 {
            return Some(lat);
        }
        for step in 0..opts.iterations {
            let temp =
                opts.initial_temperature * (1.0 - step as f64 / opts.iterations as f64).max(1e-3);
            let site = (rng.gen_range(0..rows), rng.gen_range(0..cols));
            let old = lat.literal(site);
            let new = alphabet[rng.gen_range(0..alphabet.len())];
            if new == old {
                continue;
            }
            lat.set_literal(site, new).expect("site in range");
            let new_cost = mismatch_count(f, &lat);
            if new_cost == 0 {
                return Some(lat);
            }
            let delta = new_cost as f64 - cost as f64;
            let accept = delta <= 0.0
                || rng.gen_bool(
                    (-delta / (temp * total_rows / f.len() as f64))
                        .exp()
                        .min(1.0),
                );
            if accept {
                cost = new_cost;
            } else {
                lat.set_literal(site, old).expect("site in range");
            }
        }
    }
    None
}

/// Searches for the minimum-area realization of `f` by annealing over
/// candidate dimensions in order of increasing area, up to `max_area`
/// switches. Degenerate 1×1 constants are handled directly.
///
/// Returns the smallest realization found with the given options.
pub fn anneal_minimal(f: &TruthTable, max_area: usize, opts: &AnnealOptions) -> Option<Lattice> {
    if f.is_zero() {
        return Lattice::filled(1, 1, Literal::False).ok();
    }
    if f.is_one() {
        return Lattice::filled(1, 1, Literal::True).ok();
    }
    let mut dims: Vec<(usize, usize)> = Vec::new();
    for rows in 1..=max_area {
        for cols in 1..=max_area {
            if rows * cols <= max_area {
                dims.push((rows, cols));
            }
        }
    }
    dims.sort_by_key(|&(r, c)| (r * c, r.abs_diff(c)));
    for (rows, cols) in dims {
        if let Some(lat) = anneal(f, rows, cols, opts) {
            return Some(lat);
        }
    }
    None
}

/// Proves the minimum area of any lattice realization of `f` by
/// exhausting every dimension whose search space fits the
/// [`exhaustive`] budget, in increasing area order, up to `max_area`.
///
/// Returns `Some((lattice, proven))`: `proven` is true when every smaller
/// area was exhaustively refuted (a true optimality certificate — the
/// goal of the paper's reference \[13\]), false when some smaller
/// dimension had to be skipped for budget reasons.
///
/// # Example
///
/// ```
/// use fts_logic::generators;
/// use fts_synth::search::prove_minimal_area;
///
/// let (lat, proven) = prove_minimal_area(&generators::xor(2), 6).expect("realizable");
/// assert!(proven);
/// assert_eq!(lat.site_count(), 4, "XOR2 provably needs four switches");
/// ```
pub fn prove_minimal_area(f: &TruthTable, max_area: usize) -> Option<(Lattice, bool)> {
    if f.is_zero() {
        return Some((Lattice::filled(1, 1, Literal::False).ok()?, true));
    }
    if f.is_one() {
        return Some((Lattice::filled(1, 1, Literal::True).ok()?, true));
    }
    let mut dims: Vec<(usize, usize)> = Vec::new();
    for rows in 1..=max_area {
        for cols in 1..=max_area {
            if rows * cols <= max_area {
                dims.push((rows, cols));
            }
        }
    }
    dims.sort_by_key(|&(r, c)| (r * c, r.abs_diff(c)));
    let mut all_refuted = true;
    for (rows, cols) in dims {
        match exhaustive(f, rows, cols) {
            Ok(Some(lat)) => return Some((lat, all_refuted)),
            Ok(None) => {}
            Err(_) => all_refuted = false, // search space too large to certify
        }
    }
    None
}

/// Number of input assignments where the lattice disagrees with `f`.
fn mismatch_count(f: &TruthTable, lat: &Lattice) -> usize {
    (0..f.len() as u32)
        .filter(|&x| lat.eval(x) != f.eval(x))
        .count()
}

/// The site alphabet for a `vars`-input search: both polarities of every
/// variable plus the constants.
fn literal_alphabet(vars: usize) -> Vec<Literal> {
    let mut out = Vec::with_capacity(2 * vars + 2);
    for v in 0..vars as u8 {
        out.push(Literal::pos(v));
        out.push(Literal::neg(v));
    }
    out.push(Literal::True);
    out.push(Literal::False);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    #[test]
    fn exhaustive_finds_and2_on_2x1() {
        let f = generators::and(2);
        let lat = exhaustive(&f, 2, 1).unwrap().expect("AND2 fits");
        assert_eq!(lat.truth_table(2).unwrap(), f);
    }

    #[test]
    fn exhaustive_proves_infeasibility() {
        // XOR2 = ab' + a'b needs 4 literal slots minimum; a 1×1 lattice
        // cannot realize it.
        let f = generators::xor(2);
        assert!(exhaustive(&f, 1, 1).unwrap().is_none());
    }

    #[test]
    fn exhaustive_rejects_huge_spaces() {
        let f = generators::xor(3);
        assert!(matches!(
            exhaustive(&f, 4, 4),
            Err(SynthError::TooManyVariables { .. })
        ));
    }

    #[test]
    fn anneal_finds_xor2_minimum() {
        // XOR2 on 2×2: known realizable (e.g. a b' / b a' … verified by
        // search rather than assumption).
        let f = generators::xor(2);
        let opts = AnnealOptions {
            seed: 7,
            ..AnnealOptions::default()
        };
        let lat = anneal(&f, 2, 2, &opts).expect("XOR2 fits on 2×2");
        assert_eq!(lat.truth_table(2).unwrap(), f);
    }

    #[test]
    fn anneal_xor3_on_3x3_fig3b() {
        let f = generators::xor(3);
        let lat = anneal(&f, 3, 3, &AnnealOptions::default()).expect("paper Fig. 3b");
        assert_eq!(lat.truth_table(3).unwrap(), f);
    }

    #[test]
    fn anneal_minimal_orders_by_area() {
        let f = generators::and(2);
        let lat = anneal_minimal(&f, 9, &AnnealOptions::default()).expect("AND2 realizable");
        assert_eq!(lat.site_count(), 2, "minimum area for AND2 is two switches");
        assert_eq!(lat.truth_table(2).unwrap(), f);
    }

    #[test]
    fn anneal_minimal_constants() {
        let one = TruthTable::constant(2, true).unwrap();
        let lat = anneal_minimal(&one, 4, &AnnealOptions::default()).unwrap();
        assert_eq!(lat.site_count(), 1);
        assert!(lat.truth_table(2).unwrap().is_one());
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let f = generators::majority(3);
        let opts = AnnealOptions {
            seed: 99,
            ..AnnealOptions::default()
        };
        let a = anneal(&f, 3, 3, &opts);
        let b = anneal(&f, 3, 3, &opts);
        assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn prove_minimal_area_certifies_and2() {
        let f = generators::and(2);
        let (lat, proven) = prove_minimal_area(&f, 4).expect("realizable");
        assert!(proven);
        assert_eq!(lat.site_count(), 2);
        assert_eq!(lat.truth_table(2).unwrap(), f);
    }

    #[test]
    fn prove_minimal_area_certifies_xor2_needs_four() {
        let f = generators::xor(2);
        let (lat, proven) = prove_minimal_area(&f, 6).expect("realizable");
        assert!(proven, "all areas below 4 exhaustively refuted");
        assert_eq!(lat.site_count(), 4);
        assert_eq!(lat.truth_table(2).unwrap(), f);
    }

    #[test]
    fn prove_minimal_area_constants() {
        let one = TruthTable::constant(2, true).unwrap();
        let (lat, proven) = prove_minimal_area(&one, 2).unwrap();
        assert!(proven);
        assert_eq!(lat.site_count(), 1);
    }
}
