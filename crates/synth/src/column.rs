//! Column-per-product lattice construction.
//!
//! When every product of an irredundant SOP of `f` has exactly `m`
//! literals, the products can sometimes be laid out as the columns of an
//! `m×k` lattice: the intended conduction paths are the straight columns,
//! and the construction is valid when every *sneak path* (a path hopping
//! between adjacent columns) yields a product already covered by `f`.
//!
//! Validity depends on the column ordering and on the literal ordering
//! inside each column, so this module searches those orderings and verifies
//! each candidate against the target truth table. The paper's Fig. 3a —
//! XOR3 on a 3×4 lattice — is exactly such a realization.

use fts_lattice::Lattice;
use fts_logic::{isop, Cube, Literal, TruthTable};

use crate::SynthError;

/// Maximum number of products for which the ordering search is attempted
/// (the search tries permutations of columns).
pub const MAX_COLUMNS: usize = 7;

/// Attempts a column-per-product realization of `f`.
///
/// Returns `Ok(None)` when the construction does not apply (products of
/// unequal size, too many products, or no ordering verifies).
///
/// # Errors
///
/// Returns [`SynthError::TooManyVariables`] for more than 26 variables.
///
/// # Example
///
/// ```
/// use fts_logic::generators;
/// use fts_synth::column::column_construction;
///
/// // The paper's Fig. 3a: XOR3 on a 3×4 lattice.
/// let f = generators::xor(3);
/// let lat = column_construction(&f)?.expect("XOR3 has a column realization");
/// assert_eq!((lat.rows(), lat.cols()), (3, 4));
/// assert_eq!(lat.truth_table(3)?, f);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn column_construction(f: &TruthTable) -> Result<Option<Lattice>, SynthError> {
    if f.vars() > 26 {
        return Err(SynthError::TooManyVariables { vars: f.vars() });
    }
    if f.is_zero() || f.is_one() {
        let lit = if f.is_zero() {
            Literal::False
        } else {
            Literal::True
        };
        return Ok(Some(Lattice::filled(1, 1, lit)?));
    }

    let cover = isop::isop(f);
    let k = cover.len();
    if k == 0 || k > MAX_COLUMNS {
        return Ok(None);
    }
    let m = cover.cubes()[0].literal_count() as usize;
    if m == 0 || cover.iter().any(|c| c.literal_count() as usize != m) {
        return Ok(None);
    }

    // Try every column permutation; within a column, literal order is
    // explored implicitly by trying all permutations of small products.
    // A global candidate budget keeps the worst case bounded.
    let columns: Vec<Vec<Literal>> = cover.iter().map(|c| c.literals().collect()).collect();
    let mut order: Vec<usize> = (0..k).collect();
    let mut found: Option<Lattice> = None;
    let mut budget = 200_000usize;
    permute(&mut order, 0, &mut |perm| {
        if found.is_some() || budget == 0 {
            return;
        }
        if let Some(lat) = try_orderings(f, &columns, perm, m, &mut budget) {
            found = Some(lat);
        }
    });
    Ok(found)
}

/// For a fixed column order, search literal orderings column by column with
/// backtracking, verifying the full lattice at the end.
fn try_orderings(
    f: &TruthTable,
    columns: &[Vec<Literal>],
    perm: &[usize],
    m: usize,
    budget: &mut usize,
) -> Option<Lattice> {
    // Generate all literal permutations per column lazily via Heap's
    // algorithm; product of permutations is explored by backtracking.
    let per_col: Vec<Vec<Vec<Literal>>> = perm.iter().map(|&j| permutations(&columns[j])).collect();
    let mut choice = vec![0usize; per_col.len()];
    loop {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        // Assemble and verify.
        let mut sites = Vec::with_capacity(m * per_col.len());
        for r in 0..m {
            for (c, options) in per_col.iter().enumerate() {
                sites.push(options[choice[c]][r]);
            }
        }
        let lat = Lattice::from_literals(m, per_col.len(), sites).expect("dims consistent");
        if lat.truth_table(f.vars()).ok().as_ref() == Some(f) {
            return Some(lat);
        }
        // Next choice vector (odometer).
        let mut i = 0;
        loop {
            if i == choice.len() {
                return None;
            }
            choice[i] += 1;
            if choice[i] < per_col[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    heap(&mut work, items.len(), &mut out);
    out
}

fn heap<T: Clone>(work: &mut [T], k: usize, out: &mut Vec<Vec<T>>) {
    if k <= 1 {
        out.push(work.to_vec());
        return;
    }
    for i in 0..k {
        heap(work, k - 1, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
    }
}

fn permute(order: &mut Vec<usize>, at: usize, f: &mut impl FnMut(&[usize])) {
    if at == order.len() {
        f(order);
        return;
    }
    for i in at..order.len() {
        order.swap(at, i);
        permute(order, at + 1, f);
        order.swap(at, i);
    }
}

/// Lower bound on the rows of any column realization: the largest product
/// size of the irredundant SOP. Exposed for planning heuristics.
pub fn min_rows(cover_products: &[Cube]) -> usize {
    cover_products
        .iter()
        .map(|c| c.literal_count() as usize)
        .max()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    #[test]
    fn xor3_column_realization_is_3x4() {
        let f = generators::xor(3);
        let lat = column_construction(&f)
            .unwrap()
            .expect("should find ordering");
        assert_eq!((lat.rows(), lat.cols()), (3, 4));
        assert_eq!(lat.truth_table(3).unwrap(), f);
    }

    #[test]
    fn and_column_realization_is_single_column() {
        let f = generators::and(4);
        let lat = column_construction(&f)
            .unwrap()
            .expect("single product always valid");
        assert_eq!((lat.rows(), lat.cols()), (4, 1));
        assert_eq!(lat.truth_table(4).unwrap(), f);
    }

    #[test]
    fn or_column_realization_is_single_row() {
        let f = generators::or(3);
        let lat = column_construction(&f)
            .unwrap()
            .expect("1-literal products");
        assert_eq!((lat.rows(), lat.cols()), (1, 3));
        assert_eq!(lat.truth_table(3).unwrap(), f);
    }

    #[test]
    fn unequal_products_are_rejected() {
        // f = a + bc has products of size 1 and 2.
        let a = TruthTable::var(3, 0).unwrap();
        let b = TruthTable::var(3, 1).unwrap();
        let c = TruthTable::var(3, 2).unwrap();
        let f = &a | &(&b & &c);
        assert!(column_construction(&f).unwrap().is_none());
    }

    #[test]
    fn constants_build_trivially() {
        let one = TruthTable::constant(2, true).unwrap();
        let lat = column_construction(&one).unwrap().unwrap();
        assert!(lat.truth_table(2).unwrap().is_one());
    }

    #[test]
    fn majority3_column_realization() {
        let f = generators::majority(3);
        if let Some(lat) = column_construction(&f).unwrap() {
            assert_eq!(lat.truth_table(3).unwrap(), f);
            assert_eq!(lat.rows(), 2);
        }
    }

    #[test]
    fn xnor3_column_realization_matches_function() {
        let f = generators::xnor(3);
        if let Some(lat) = column_construction(&f).unwrap() {
            assert_eq!(lat.truth_table(3).unwrap(), f);
        }
    }
}
