//! Property tests for the Monte Carlo engine: determinism across thread
//! counts, reproducibility from the master seed, and agreement with the
//! nominal pipeline when variation is switched off.

use proptest::prelude::*;

use fts_circuit::experiments::xor3_lattice;
use fts_circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_lattice::Lattice;
use fts_logic::Literal;
use fts_montecarlo::{EvalMode, MonteCarlo, VariationModel};

fn nominal() -> SwitchCircuitModel {
    SwitchCircuitModel::square_hfo2().unwrap()
}

/// The headline acceptance property: a parallel ≥256-trial DC ensemble of
/// the paper's XOR3 lattice is **bit-identical** to the sequential run
/// with the same master seed.
#[test]
fn xor3_256_trial_parallel_ensemble_matches_sequential_exactly() {
    let lat = xor3_lattice();
    let mc = MonteCarlo::new(256, 0xD1CE)
        .variation(VariationModel::standard().with_defect_prob(0.02))
        .eval(EvalMode::Dc);
    let sequential = mc.threads(1).run(&lat, 3, &nominal()).unwrap();
    let parallel = mc.threads(0).run(&lat, 3, &nominal()).unwrap();
    // PartialEq covers every counter, histogram bin, and f64 moment; the
    // bit-level check on the most rounding-sensitive numbers makes the
    // "bit-identical" claim explicit.
    assert_eq!(parallel, sequential);
    assert_eq!(parallel.v_ol.mean.to_bits(), sequential.v_ol.mean.to_bits());
    assert_eq!(
        parallel.v_ol.std_dev.to_bits(),
        sequential.v_ol.std_dev.to_bits()
    );
    assert_eq!(parallel.v_oh.mean.to_bits(), sequential.v_oh.mean.to_bits());
    assert_eq!(sequential.evaluated, 256, "no sample may be lost");
    assert!(
        sequential.functional_yield() > 0.2,
        "ensemble is not degenerate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Telemetry is an observer, never an actor: running the same ensemble
    /// with collection enabled produces a bit-identical [`YieldReport`] to
    /// running it disabled, and the enabled run actually collects spans.
    #[test]
    fn telemetry_does_not_change_the_yield_report(
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let mc = MonteCarlo::new(16, seed)
            .variation(VariationModel::standard().with_defect_prob(0.05))
            .eval(EvalMode::Dc)
            .threads(threads);

        fts_telemetry::set_enabled(false);
        let quiet = mc.run(&lat, 2, &nominal()).unwrap();

        fts_telemetry::set_enabled(true);
        let observed = mc.run(&lat, 2, &nominal()).unwrap();
        let snap = fts_telemetry::snapshot();
        fts_telemetry::set_enabled(false);
        fts_telemetry::reset();

        prop_assert_eq!(&quiet, &observed);
        prop_assert_eq!(quiet.v_ol.mean.to_bits(), observed.v_ol.mean.to_bits());
        // DC trials run inside lockstep chunks by default, so the trial
        // span may appear under `mc.chunk` as well as directly under the
        // run (or bare, when the span stack was primed elsewhere).
        let trials = snap.span("mc.run/mc.trial").map_or(0, |s| s.count)
            + snap.span("mc.trial").map_or(0, |s| s.count)
            + snap.span("mc.run/mc.chunk/mc.trial").map_or(0, |s| s.count)
            + snap.span("mc.chunk/mc.trial").map_or(0, |s| s.count);
        prop_assert!(trials >= 16, "trial spans collected: {trials}");
    }

    /// Same master seed ⇒ identical YieldReport, whatever the thread
    /// count or (logical-mode) lattice.
    #[test]
    fn report_is_invariant_to_thread_count(
        seed in any::<u64>(),
        threads in 2usize..9,
        defect_prob in 0.0f64..0.3,
    ) {
        let lat = xor3_lattice();
        let mc = MonteCarlo::new(96, seed)
            .variation(VariationModel::standard().with_defect_prob(defect_prob))
            .eval(EvalMode::Logical);
        let seq = mc.threads(1).run(&lat, 3, &nominal()).unwrap();
        let par = mc.threads(threads).run(&lat, 3, &nominal()).unwrap();
        prop_assert_eq!(seq, par);
    }

    /// Re-running the same configuration reproduces the report, and a
    /// different master seed produces a genuinely different ensemble
    /// (compared on a continuous statistic, which cannot collide).
    #[test]
    fn master_seed_fixes_the_ensemble(seed in any::<u64>()) {
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let mc = MonteCarlo::new(12, seed)
            .variation(VariationModel::standard())
            .eval(EvalMode::Dc);
        let a = mc.run(&lat, 2, &nominal()).unwrap();
        let b = mc.run(&lat, 2, &nominal()).unwrap();
        prop_assert_eq!(&a, &b);
        let other = MonteCarlo { master_seed: seed ^ 0x5DEE_CE66, ..mc }
            .run(&lat, 2, &nominal())
            .unwrap();
        prop_assert_ne!(a.v_ol.mean.to_bits(), other.v_ol.mean.to_bits());
    }

    /// Zero variance and zero defects ⇒ 100% functional and parametric
    /// yield, and the measured V_OL/V_OH equal the nominal circuit's: to
    /// the bit on the scalar path (`ensemble_width == 1`), and to the
    /// ensemble-vs-scalar pin (1e-9) on the default lockstep path, whose
    /// lane-batched refactor is a different — equally valid — arithmetic
    /// ordering than the scalar solver's.
    #[test]
    fn zero_variation_reproduces_the_nominal_circuit(
        seed in any::<u64>(),
        rows in 1usize..3,
        cols in 1usize..3,
    ) {
        let vars = (rows * cols).min(3);
        let lits: Vec<Literal> = (0..rows * cols)
            .map(|k| Literal::pos((k % vars) as u8))
            .collect();
        let lat = Lattice::from_literals(rows, cols, lits).unwrap();
        let mc = MonteCarlo::new(8, seed).variation(VariationModel::none());
        for width in [1usize, 8] {
            let report = mc.ensemble_width(width).run(&lat, vars, &nominal()).unwrap();
            prop_assert_eq!(report.functional_yield(), 1.0);
            prop_assert_eq!(report.parametric_yield(), 1.0);
            prop_assert_eq!(report.sim_failures, 0);
            prop_assert_eq!(report.defects_injected, 0);
            prop_assert!(report.v_ol.std_dev == 0.0, "σ(V_OL) = {}", report.v_ol.std_dev);

            // The degenerate distribution sits exactly on the nominal value.
            let ckt = LatticeCircuit::build(&lat, vars, &nominal(), BenchConfig::default()).unwrap();
            let truth = lat.truth_table(vars).unwrap();
            let mut v_ol = f64::NEG_INFINITY;
            for x in 0..(1u32 << vars) {
                if truth.eval(x) {
                    v_ol = v_ol.max(ckt.dc_output(x).unwrap());
                }
            }
            if v_ol > f64::NEG_INFINITY {
                if width == 1 {
                    prop_assert_eq!(report.v_ol.mean.to_bits(), v_ol.to_bits());
                    prop_assert_eq!(report.v_ol.min.to_bits(), v_ol.to_bits());
                } else {
                    prop_assert!((report.v_ol.mean - v_ol).abs() < 1e-9);
                    prop_assert!((report.v_ol.min - v_ol).abs() < 1e-9);
                }
            }
        }
    }

    /// The lockstep ensemble path is pinned to the scalar path: identical
    /// counts and ≤1e-9 on every voltage statistic, for every ensemble
    /// width — including K = 1 (the scalar path itself), K that does not
    /// divide the trial count (a ragged final chunk), and nonzero defect
    /// probability (defect-rewired lanes are rejected by the topology
    /// gate and fall back to the scalar sweep mid-batch).
    #[test]
    fn ensemble_path_is_pinned_to_scalar(
        seed in any::<u64>(),
        rows in 1usize..3,
        cols in 1usize..4,
        width in 1usize..11,
        defect_prob in 0.0f64..0.25,
    ) {
        let sites = rows * cols;
        let vars = sites.min(3);
        let lits: Vec<Literal> = (0..sites)
            .map(|k| Literal::pos((k % vars) as u8))
            .collect();
        let lat = Lattice::from_literals(rows, cols, lits).unwrap();
        // 13 trials: most widths leave a ragged final chunk.
        let mc = MonteCarlo::new(13, seed)
            .variation(VariationModel::standard().with_defect_prob(defect_prob))
            .threads(1);
        let scalar = mc.ensemble_width(1).run(&lat, vars, &nominal()).unwrap();
        let ens = mc.ensemble_width(width).run(&lat, vars, &nominal()).unwrap();
        prop_assert_eq!(ens.evaluated, scalar.evaluated);
        prop_assert_eq!(ens.sim_failures, scalar.sim_failures);
        prop_assert_eq!(ens.failure_causes, scalar.failure_causes);
        prop_assert_eq!(ens.functional_pass, scalar.functional_pass);
        prop_assert_eq!(ens.parametric_pass, scalar.parametric_pass);
        prop_assert_eq!(ens.logical_fail, scalar.logical_fail);
        prop_assert_eq!(ens.defects_injected, scalar.defects_injected);
        prop_assert_eq!(&ens.site_criticality, &scalar.site_criticality);
        for (e, s, name) in [
            (&ens.v_ol, &scalar.v_ol, "v_ol"),
            (&ens.v_oh, &scalar.v_oh, "v_oh"),
        ] {
            prop_assert_eq!(e.n, s.n, "{}.n", name);
            if e.n > 0 {
                prop_assert!((e.mean - s.mean).abs() < 1e-9, "{}.mean: {} vs {}", name, e.mean, s.mean);
                prop_assert!((e.min - s.min).abs() < 1e-9, "{}.min", name);
                prop_assert!((e.max - s.max).abs() < 1e-9, "{}.max", name);
                prop_assert!((e.std_dev - s.std_dev).abs() < 1e-9, "{}.std_dev", name);
            }
        }
    }

    /// Yield counters are always consistent: evaluated + sim_failures =
    /// trials, passes never exceed evaluated, parametric ≤ functional.
    #[test]
    fn yield_counters_are_consistent(
        seed in any::<u64>(),
        defect_prob in 0.0f64..0.5,
    ) {
        let lat = xor3_lattice();
        let report = MonteCarlo::new(48, seed)
            .variation(VariationModel::standard().with_defect_prob(defect_prob))
            .eval(EvalMode::Logical)
            .run(&lat, 3, &nominal())
            .unwrap();
        prop_assert_eq!(report.evaluated + report.sim_failures, report.trials);
        prop_assert_eq!(report.failure_causes.total(), report.sim_failures);
        prop_assert!(report.functional_pass <= report.evaluated);
        prop_assert!(report.parametric_pass <= report.functional_pass);
        prop_assert!(report.logical_fail <= report.evaluated);
        let blamed: u64 = report.site_criticality.iter().sum();
        if report.defects_injected == 0 {
            prop_assert_eq!(blamed, 0);
        }
    }
}
