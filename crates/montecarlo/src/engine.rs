//! The ensemble engine: configuration, trial evaluation, and the
//! [`YieldReport`].
//!
//! Each trial draws an independent random stream from `(master_seed,
//! trial_index)`, realizes one "fabricated" lattice — crosspoint defects
//! plus a die corner and per-switch mismatch — and evaluates it logically
//! and (optionally) electrically against the nominal function. Results
//! stream into per-block accumulators that merge in fixed block order, so
//! the report is bit-identical for every thread count.

use std::sync::Arc;
use std::time::Instant;

use fts_circuit::lattice_netlist::{pwl_from_bits, BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_engine::executor::{auto_threads, blocks, map_blocks};
use fts_lattice::defects::{inject_all, Fault};
use fts_lattice::Lattice;
use fts_logic::TruthTable;
use fts_spice::analysis::TranConfig;
use fts_spice::{measure, LaneOutcome, NodeId, OpEnsemble, OpOptions, Simulator, Waveform};

use crate::error::McError;
use crate::rng::trial_rng;
use crate::stats::{Histogram, SummaryStats, Welford};
use crate::variation::VariationModel;

/// Pass/fail limits for *parametric* yield (§V electrical margins). A trial
/// that reads the right logic levels but violates these margins is
/// functional yet parametrically failing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecLimits {
    /// Maximum tolerated low output level \[V\] (paper margin: 0.3 V
    /// against the nominal V_OL ≈ 0.22 V).
    pub v_ol_max: f64,
    /// Minimum tolerated high output level \[V\].
    pub v_oh_min: f64,
    /// Maximum tolerated 10–90% rise time \[s\], when transients run.
    pub t_rise_max: Option<f64>,
    /// Maximum tolerated 90–10% fall time \[s\], when transients run.
    pub t_fall_max: Option<f64>,
}

impl SpecLimits {
    /// Limits scaled to a bench: `V_OL ≤ 0.3 V`, `V_OH ≥ 0.7·VDD`, no
    /// timing limits.
    pub fn for_bench(bench: &BenchConfig) -> SpecLimits {
        SpecLimits {
            v_ol_max: 0.3,
            v_oh_min: 0.7 * bench.vdd,
            t_rise_max: None,
            t_fall_max: None,
        }
    }
}

impl Default for SpecLimits {
    fn default() -> SpecLimits {
        SpecLimits::for_bench(&BenchConfig::default())
    }
}

/// Per-cause breakdown of trials abandoned on a simulator failure.
///
/// A generic "the simulator failed" bucket hides whether an ensemble is
/// hitting convergence trouble (a solver/settings problem) or sampling
/// non-physical parameters (a variation-model problem); this split keeps
/// the two diagnosable from the [`YieldReport`] alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimFailureCauses {
    /// Newton–Raphson failed even after every homotopy fallback.
    pub no_convergence: u64,
    /// The MNA matrix was singular despite gmin regularization.
    pub singular_matrix: u64,
    /// The perturbed trial circuit could not be built — model extraction
    /// or netlist construction rejected the sampled parameters.
    pub build: u64,
    /// Anything else (defect injection, lookups, configuration).
    pub other: u64,
}

impl SimFailureCauses {
    /// Total failed trials across all causes.
    pub fn total(&self) -> u64 {
        self.no_convergence + self.singular_matrix + self.build + self.other
    }

    fn merge(&mut self, o: &SimFailureCauses) {
        self.no_convergence += o.no_convergence;
        self.singular_matrix += o.singular_matrix;
        self.build += o.build;
        self.other += o.other;
    }

    fn classify(&mut self, e: &fts_circuit::CircuitError) {
        use fts_circuit::CircuitError as E;
        use fts_spice::SpiceError as S;
        let (slot, name) = match e {
            // `SpiceError::is_retryable` is the single source of truth for
            // "convergence trouble" — the same predicate that drives the
            // batch engine's retry ladder.
            E::Spice(s) if s.is_retryable() => {
                (&mut self.no_convergence, "mc.sim_failure.no_convergence")
            }
            E::Spice(S::SingularMatrix) => {
                (&mut self.singular_matrix, "mc.sim_failure.singular_matrix")
            }
            E::Spice(S::InvalidValue { .. })
            | E::InvalidConfig { .. }
            | E::MissingStimulus { .. }
            | E::Extract(_) => (&mut self.build, "mc.sim_failure.build"),
            _ => (&mut self.other, "mc.sim_failure.other"),
        };
        *slot += 1;
        fts_telemetry::counter(name, 1);
    }
}

/// Transient-evaluation settings (one phase per input combination, as in
/// the Fig. 11 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSettings {
    /// Time allotted to each input phase \[s\].
    pub phase: f64,
    /// Input edge time \[s\].
    pub transition: f64,
    /// Simulation step \[s\].
    pub dt: f64,
}

impl Default for TransientSettings {
    fn default() -> TransientSettings {
        TransientSettings {
            phase: 120.0e-9,
            transition: 1.0e-9,
            dt: 0.8e-9,
        }
    }
}

/// How deeply each trial is evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalMode {
    /// Boolean only: does the defective lattice still compute the nominal
    /// function? Microseconds per trial; no electrical statistics.
    Logical,
    /// DC sweep over all `2^vars` input assignments: logic levels plus
    /// V_OL / V_OH distributions.
    Dc,
    /// Full transient walking every input combination: DC metrics plus
    /// rise/fall-time distributions. Slowest.
    Transient(TransientSettings),
}

/// A configured Monte Carlo ensemble.
///
/// # Example
///
/// ```
/// use fts_circuit::experiments::xor3_lattice;
/// use fts_circuit::model::SwitchCircuitModel;
/// use fts_montecarlo::{EvalMode, MonteCarlo, VariationModel};
///
/// let nominal = SwitchCircuitModel::square_hfo2()?;
/// let mc = MonteCarlo::new(64, 42)
///     .variation(VariationModel::standard().with_defect_prob(0.01))
///     .eval(EvalMode::Logical);
/// let report = mc.run(&xor3_lattice(), 3, &nominal)?;
/// assert_eq!(report.trials, 64);
/// assert!(report.functional_yield() <= 1.0);
/// # Ok::<(), fts_montecarlo::McError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarlo {
    /// Number of trials.
    pub trials: u64,
    /// Master seed; together with a trial index it fixes every random
    /// draw of that trial.
    pub master_seed: u64,
    /// Worker threads: 0 = all available cores, 1 = sequential.
    pub threads: usize,
    /// Trials per scheduling/accumulation block. The report is invariant
    /// to `threads` but *not* to `block_size` (it fixes the merge tree).
    pub block_size: u64,
    /// Statistical model of the fabricated lattice.
    pub variation: VariationModel,
    /// Parametric pass/fail limits.
    pub spec: SpecLimits,
    /// Evaluation depth.
    pub eval: EvalMode,
    /// Electrical bench around the lattice.
    pub bench: BenchConfig,
    /// Lockstep lanes per solver ensemble in [`EvalMode::Dc`]: trials are
    /// pulled in chunks of up to this many and stamped/factored/solved
    /// together (structure-of-arrays). `1` disables the ensemble path and
    /// evaluates every trial through the scalar simulator. Like
    /// `block_size`, the *numerical* report may shift at the last-ulp
    /// level when this changes (lane retirement falls back to the scalar
    /// path); trial sampling and all counts are invariant.
    pub ensemble_width: usize,
}

impl MonteCarlo {
    /// An ensemble with default settings: auto threads, 16-trial blocks,
    /// 16-lane solver ensembles, [`VariationModel::standard`], DC
    /// evaluation, default bench/spec.
    pub fn new(trials: u64, master_seed: u64) -> MonteCarlo {
        MonteCarlo {
            trials,
            master_seed,
            threads: 0,
            block_size: 16,
            variation: VariationModel::standard(),
            spec: SpecLimits::default(),
            eval: EvalMode::Dc,
            bench: BenchConfig::default(),
            ensemble_width: 16,
        }
    }

    /// Replaces the variation model.
    pub fn variation(mut self, v: VariationModel) -> MonteCarlo {
        self.variation = v;
        self
    }

    /// Replaces the evaluation mode.
    pub fn eval(mut self, e: EvalMode) -> MonteCarlo {
        self.eval = e;
        self
    }

    /// Replaces the worker-thread count (0 = auto).
    pub fn threads(mut self, n: usize) -> MonteCarlo {
        self.threads = n;
        self
    }

    /// Replaces the parametric limits.
    pub fn spec(mut self, s: SpecLimits) -> MonteCarlo {
        self.spec = s;
        self
    }

    /// Replaces the ensemble width (1 = scalar DC evaluation).
    pub fn ensemble_width(mut self, w: usize) -> MonteCarlo {
        self.ensemble_width = w;
        self
    }

    /// Runs the ensemble over `lattice` (a realization of a `vars`-input
    /// function) built from perturbations of `nominal`.
    ///
    /// # Errors
    ///
    /// Rejects unusable configurations and propagates nominal-path
    /// failures (bad lattice/variable count, nominal circuit that does not
    /// build). Per-trial simulator failures are *counted*, not returned —
    /// see [`YieldReport::sim_failures`].
    pub fn run(
        &self,
        lattice: &Lattice,
        vars: usize,
        nominal: &SwitchCircuitModel,
    ) -> Result<YieldReport, McError> {
        if self.trials == 0 {
            return Err(McError::InvalidConfig {
                reason: "trials must be at least 1",
            });
        }
        if self.block_size == 0 {
            return Err(McError::InvalidConfig {
                reason: "block_size must be at least 1",
            });
        }
        if !(0.0..=1.0).contains(&self.variation.defect_prob) {
            return Err(McError::InvalidConfig {
                reason: "defect_prob must be in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.variation.stuck_on_fraction) {
            return Err(McError::InvalidConfig {
                reason: "stuck_on_fraction must be in [0, 1]",
            });
        }
        if self.ensemble_width == 0 {
            return Err(McError::InvalidConfig {
                reason: "ensemble_width must be at least 1",
            });
        }
        let _span = fts_telemetry::span("mc.run");
        let truth = lattice.truth_table(vars)?;
        let use_ensemble = self.ensemble_width >= 2 && matches!(self.eval, EvalMode::Dc);
        let (shared_symbolic, ensemble_reference) = if matches!(self.eval, EvalMode::Logical) {
            (None, None)
        } else {
            // Surface configuration-level circuit problems once, up front,
            // instead of as `trials` identical per-trial failures — and
            // reuse the validated nominal circuit to run the fill-reducing
            // symbolic analysis once for the whole ensemble. Trials whose
            // defects change the topology fall back to a fresh analysis
            // (the pattern is verified before reuse).
            let mut nominal_ckt = LatticeCircuit::build(lattice, vars, nominal, self.bench)?;
            let sym = nominal_ckt.mna_symbolic();
            nominal_ckt.share_symbolic(Arc::clone(&sym));
            // The nominal circuit doubles as the lockstep ensemble's
            // topology reference: lanes are admitted by `same_topology`
            // against it, so defect-rewired trials fall to the scalar path.
            (Some(sym), use_ensemble.then_some(nominal_ckt))
        };

        let threads = if self.threads == 0 {
            auto_threads()
        } else {
            self.threads
        };
        let block_list = blocks(self.trials, self.block_size);
        let ctx = TrialContext {
            mc: self,
            lattice,
            vars,
            nominal,
            truth: &truth,
            sites: lattice.rows() * lattice.cols(),
            shared_symbolic,
            ensemble_reference,
        };
        let partials = map_blocks(&block_list, threads, |_, &(start, end)| {
            let mut acc = BlockStats::new(ctx.sites, self.bench.vdd);
            if ctx.ensemble_reference.is_some() {
                ctx.run_dc_block_ensemble(start, end, &mut acc);
            } else {
                for trial in start..end {
                    let _trial_span = fts_telemetry::span("mc.trial");
                    let t0 = fts_telemetry::enabled().then(Instant::now);
                    ctx.run_trial(trial, &mut acc);
                    if let Some(t0) = t0 {
                        fts_telemetry::record("mc.trial.wall_s", t0.elapsed().as_secs_f64());
                    }
                }
            }
            acc
        });

        let mut total = BlockStats::new(ctx.sites, self.bench.vdd);
        for p in &partials {
            total.merge(p);
        }
        Ok(total.into_report(self))
    }
}

/// Shared read-only state for trial evaluation.
struct TrialContext<'a> {
    mc: &'a MonteCarlo,
    lattice: &'a Lattice,
    vars: usize,
    nominal: &'a SwitchCircuitModel,
    truth: &'a TruthTable,
    sites: usize,
    /// Fill-reducing ordering computed once from the nominal circuit and
    /// reused by every electrically evaluated trial (`None` in
    /// [`EvalMode::Logical`], where no MNA system is ever built).
    shared_symbolic: Option<Arc<fts_spice::Symbolic>>,
    /// Nominal circuit serving as the lockstep ensemble's topology
    /// reference (`Some` only when the ensemble DC path is active).
    ensemble_reference: Option<LatticeCircuit>,
}

/// Electrical measurements of one trial.
struct Electrical {
    functional: bool,
    v_ol: Option<f64>,
    v_oh: Option<f64>,
    rise: Option<f64>,
    fall: Option<f64>,
}

impl TrialContext<'_> {
    fn run_trial(&self, trial: u64, acc: &mut BlockStats) {
        let mut rng = trial_rng(self.mc.master_seed, trial);
        let v = &self.mc.variation;

        // 1. Fabrication defects → a (possibly) faulty lattice.
        let defects = v.sample_defects(self.lattice, &mut rng);
        let faulty = match inject_all(self.lattice, &defects) {
            Ok(l) => l,
            // Unreachable: sampled sites are in range by construction.
            Err(e) => {
                acc.sim_fail(&fts_circuit::CircuitError::Lattice(e));
                return;
            }
        };

        // 2. Logical verdict: does the defective lattice still realize f?
        let logical_ok = defects.is_empty()
            || (0..(1u32 << self.vars)).all(|x| faulty.eval(x) == self.truth.eval(x));

        // 3. Parameter realization: die corner, then per-site mismatch.
        let base = match v.sample_base_model(self.nominal, &mut rng) {
            Ok(b) => b,
            Err(e) => {
                acc.sim_fail_mc(&e);
                return;
            }
        };
        let site_models = v.sample_site_models(&base, self.lattice, &mut rng);

        // 4. Electrical verdict.
        let elec = match self.mc.eval {
            EvalMode::Logical => {
                let _eval_span = fts_telemetry::span("mc.trial.logical");
                Electrical {
                    functional: logical_ok,
                    v_ol: None,
                    v_oh: None,
                    rise: None,
                    fall: None,
                }
            }
            EvalMode::Dc => {
                let _eval_span = fts_telemetry::span("mc.trial.dc");
                match self.eval_dc(&faulty, &site_models) {
                    Ok(e) => e,
                    Err(e) => {
                        acc.sim_fail(&e);
                        return;
                    }
                }
            }
            EvalMode::Transient(ts) => {
                let _eval_span = fts_telemetry::span("mc.trial.transient");
                match self.eval_transient(&faulty, &site_models, ts) {
                    Ok(e) => e,
                    Err(e) => {
                        acc.sim_fail(&e);
                        return;
                    }
                }
            }
        };

        acc.record(self.mc, self.lattice.cols(), &defects, logical_ok, &elec);
    }

    fn build(
        &self,
        faulty: &Lattice,
        site_models: &[SwitchCircuitModel],
    ) -> Result<LatticeCircuit, fts_circuit::CircuitError> {
        let cols = self.lattice.cols();
        let mut ckt = LatticeCircuit::build_with(faulty, self.vars, self.mc.bench, |(r, c)| {
            site_models[r * cols + c]
        })?;
        if let Some(symbolic) = &self.shared_symbolic {
            ckt.share_symbolic(Arc::clone(symbolic));
        }
        Ok(ckt)
    }

    /// DC sweep over all assignments: settled levels against the read
    /// thresholds (low < 0.45 V, high > 0.7·VDD, as in §V).
    fn eval_dc(
        &self,
        faulty: &Lattice,
        site_models: &[SwitchCircuitModel],
    ) -> Result<Electrical, fts_circuit::CircuitError> {
        let ckt = self.build(faulty, site_models)?;
        self.eval_dc_circuit(&ckt)
    }

    /// The DC sweep over a prebuilt trial circuit (shared by the scalar
    /// path and the ensemble's per-lane fallback).
    fn eval_dc_circuit(
        &self,
        ckt: &LatticeCircuit,
    ) -> Result<Electrical, fts_circuit::CircuitError> {
        let vdd = self.mc.bench.vdd;
        let mut functional = true;
        let mut v_ol = f64::NEG_INFINITY;
        let mut v_oh = f64::INFINITY;
        for x in 0..(1u32 << self.vars) {
            let level = ckt.dc_output(x)?;
            let expect_high = !self.truth.eval(x); // pull-down inverts f
            if expect_high {
                v_oh = v_oh.min(level);
                functional &= level > 0.7 * vdd;
            } else {
                v_ol = v_ol.max(level);
                functional &= level < 0.45;
            }
        }
        Ok(Electrical {
            functional,
            v_ol: (v_ol > f64::NEG_INFINITY).then_some(v_ol),
            v_oh: (v_oh < f64::INFINITY).then_some(v_oh),
            rise: None,
            fall: None,
        })
    }

    /// Runs one scheduling block through the lockstep ensemble: trials are
    /// pulled in chunks of up to `ensemble_width`, each chunk's admissible
    /// lanes are solved together for every input assignment, and results
    /// are recorded in ascending trial order so the report stays
    /// bit-identical for every thread count.
    fn run_dc_block_ensemble(&self, start: u64, end: u64, acc: &mut BlockStats) {
        let reference = self
            .ensemble_reference
            .as_ref()
            .expect("ensemble path requires a reference circuit");
        let mut ensemble = OpEnsemble::new(reference.netlist());
        let width = self.mc.ensemble_width as u64;
        let mut trial = start;
        while trial < end {
            let chunk_end = (trial + width).min(end);
            self.run_dc_chunk(&mut ensemble, reference.out(), trial, chunk_end, acc);
            trial = chunk_end;
        }
    }

    /// Evaluates trials `start..end` as one lockstep chunk (at most
    /// `ensemble_width` of them). Per-trial sampling order is identical to
    /// [`TrialContext::run_trial`]; trials whose defects rewire the
    /// topology — or that fail to build — are evaluated on the scalar path
    /// instead, and recording happens strictly in trial order.
    fn run_dc_chunk(
        &self,
        ensemble: &mut OpEnsemble,
        out: NodeId,
        start: u64,
        end: u64,
        acc: &mut BlockStats,
    ) {
        /// Per-trial disposition, buffered so the chunk can record in
        /// ascending trial order after the lockstep solve.
        enum Slot {
            Circuit(fts_circuit::CircuitError),
            Engine(McError),
            Scalar {
                defects: Vec<Fault>,
                logical_ok: bool,
                ckt: LatticeCircuit,
            },
            Lane {
                defects: Vec<Fault>,
                logical_ok: bool,
                lane: usize,
            },
        }

        let _span = fts_telemetry::span("mc.chunk");
        let t0 = fts_telemetry::enabled().then(Instant::now);
        ensemble.clear();
        let v = &self.mc.variation;
        let mut slots: Vec<Slot> = Vec::with_capacity((end - start) as usize);
        for trial in start..end {
            let _trial_span = fts_telemetry::span("mc.trial");
            let mut rng = trial_rng(self.mc.master_seed, trial);
            let defects = v.sample_defects(self.lattice, &mut rng);
            let faulty = match inject_all(self.lattice, &defects) {
                Ok(l) => l,
                Err(e) => {
                    slots.push(Slot::Circuit(fts_circuit::CircuitError::Lattice(e)));
                    continue;
                }
            };
            let logical_ok = defects.is_empty()
                || (0..(1u32 << self.vars)).all(|x| faulty.eval(x) == self.truth.eval(x));
            let base = match v.sample_base_model(self.nominal, &mut rng) {
                Ok(b) => b,
                Err(e) => {
                    slots.push(Slot::Engine(e));
                    continue;
                }
            };
            let site_models = v.sample_site_models(&base, self.lattice, &mut rng);
            match self.build(&faulty, &site_models) {
                Err(e) => slots.push(Slot::Circuit(e)),
                Ok(ckt) => match ensemble.try_push(ckt.netlist().clone()) {
                    Ok(lane) => slots.push(Slot::Lane {
                        defects,
                        logical_ok,
                        lane,
                    }),
                    Err(_) => slots.push(Slot::Scalar {
                        defects,
                        logical_ok,
                        ckt,
                    }),
                },
            }
        }

        // Lockstep DC sweep: one ensemble solve per input assignment, all
        // admitted lanes advancing together. A lane's first failure
        // abandons that trial (as in the scalar sweep); surviving lanes
        // keep iterating.
        let lanes = ensemble.len();
        let vdd = self.mc.bench.vdd;
        let mut lane_v_ol = vec![f64::NEG_INFINITY; lanes];
        let mut lane_v_oh = vec![f64::INFINITY; lanes];
        let mut lane_functional = vec![true; lanes];
        let mut lane_err: Vec<Option<fts_circuit::CircuitError>> =
            (0..lanes).map(|_| None).collect();
        if lanes > 0 {
            let opts = OpOptions::full();
            for step in 0..(1u32 << self.vars) {
                // Gray-code order: consecutive assignments differ in one
                // input, so the ensemble's warm start (the previous
                // assignment's operating points) stays close and plain
                // Newton usually converges without the gmin ladder. The
                // V_OL/V_OH accumulation below is min/max, so the sweep
                // order cannot change any recorded statistic.
                let x = step ^ (step >> 1);
                if lane_err.iter().all(|e| e.is_some()) {
                    break;
                }
                for (lane, err) in lane_err.iter_mut().enumerate() {
                    if err.is_some() {
                        continue;
                    }
                    let nl = ensemble.lane_mut(lane);
                    for var in 0..self.vars {
                        let bit = (x >> var) & 1 == 1;
                        let set = nl
                            .set_vsource(
                                &format!("VIN{var}"),
                                Waveform::Dc(if bit { vdd } else { 0.0 }),
                            )
                            .and_then(|_| {
                                nl.set_vsource(
                                    &format!("VIN{var}N"),
                                    Waveform::Dc(if bit { 0.0 } else { vdd }),
                                )
                            });
                        if let Err(e) = set {
                            *err = Some(e.into());
                            break;
                        }
                    }
                }
                let expect_high = !self.truth.eval(x); // pull-down inverts f
                for (lane, outcome) in ensemble.solve_op(&opts).into_iter().enumerate() {
                    if lane_err[lane].is_some() {
                        continue;
                    }
                    match outcome {
                        LaneOutcome::Solved(op) | LaneOutcome::Fallback(op) => {
                            let level = op.voltage(out);
                            if expect_high {
                                lane_v_oh[lane] = lane_v_oh[lane].min(level);
                                lane_functional[lane] &= level > 0.7 * vdd;
                            } else {
                                lane_v_ol[lane] = lane_v_ol[lane].max(level);
                                lane_functional[lane] &= level < 0.45;
                            }
                        }
                        LaneOutcome::Failed(e) => {
                            lane_err[lane] = Some(fts_circuit::CircuitError::Spice(e));
                        }
                    }
                }
            }
        }

        for slot in slots {
            match slot {
                Slot::Circuit(e) => acc.sim_fail(&e),
                Slot::Engine(e) => acc.sim_fail_mc(&e),
                Slot::Scalar {
                    defects,
                    logical_ok,
                    ckt,
                } => {
                    let _eval_span = fts_telemetry::span("mc.trial.dc");
                    match self.eval_dc_circuit(&ckt) {
                        Ok(e) => acc.record(self.mc, self.lattice.cols(), &defects, logical_ok, &e),
                        Err(e) => acc.sim_fail(&e),
                    }
                }
                Slot::Lane {
                    defects,
                    logical_ok,
                    lane,
                } => match lane_err[lane].take() {
                    Some(e) => acc.sim_fail(&e),
                    None => {
                        let e = Electrical {
                            functional: lane_functional[lane],
                            v_ol: (lane_v_ol[lane] > f64::NEG_INFINITY).then_some(lane_v_ol[lane]),
                            v_oh: (lane_v_oh[lane] < f64::INFINITY).then_some(lane_v_oh[lane]),
                            rise: None,
                            fall: None,
                        };
                        acc.record(self.mc, self.lattice.cols(), &defects, logical_ok, &e);
                    }
                },
            }
        }
        if let Some(t0) = t0 {
            fts_telemetry::record("mc.chunk.wall_s", t0.elapsed().as_secs_f64());
        }
    }

    /// Transient walking every input combination (the Fig. 11 protocol
    /// generalized to `vars` inputs), adding edge-time measurements.
    fn eval_transient(
        &self,
        faulty: &Lattice,
        site_models: &[SwitchCircuitModel],
        ts: TransientSettings,
    ) -> Result<Electrical, fts_circuit::CircuitError> {
        let mut ckt = self.build(faulty, site_models)?;
        let vdd = self.mc.bench.vdd;
        let combos = 1u32 << self.vars;
        for v in 0..self.vars {
            let bits: Vec<bool> = (0..combos).map(|x| (x >> v) & 1 == 1).collect();
            let (p, n) = pwl_from_bits(&bits, ts.phase, ts.transition, vdd);
            ckt.set_stimulus(v, p, n)?;
        }
        let tr = Simulator::new(ckt.netlist())
            .transient(&TranConfig::fixed(ts.dt, ts.phase * combos as f64))?;
        let out = tr.voltage(ckt.out());

        let mut functional = true;
        let mut v_ol = f64::NEG_INFINITY;
        let mut v_oh = f64::INFINITY;
        for x in 0..combos {
            let t0 = (x as f64 + 0.8) * ts.phase;
            let t1 = (x + 1) as f64 * ts.phase;
            let level = measure::settled_level(&tr.time, &out, t0, t1);
            if !self.truth.eval(x) {
                v_oh = v_oh.min(level);
                functional &= level > 0.7 * vdd;
            } else {
                v_ol = v_ol.max(level);
                functional &= level < 0.45;
            }
        }
        let (rise, fall) = if v_ol > f64::NEG_INFINITY && v_oh < f64::INFINITY && v_oh > v_ol {
            (
                measure::rise_time(&tr.time, &out, v_ol.max(0.0), v_oh, 1),
                measure::fall_time(&tr.time, &out, v_ol.max(0.0), v_oh, 1),
            )
        } else {
            (None, None)
        };
        Ok(Electrical {
            functional,
            v_ol: (v_ol > f64::NEG_INFINITY).then_some(v_ol),
            v_oh: (v_oh < f64::INFINITY).then_some(v_oh),
            rise,
            fall,
        })
    }
}

/// Per-block streaming accumulator. Merging blocks in ascending index
/// order reproduces the sequential result bit for bit.
struct BlockStats {
    evaluated: u64,
    sim_failures: u64,
    failure_causes: SimFailureCauses,
    functional_pass: u64,
    parametric_pass: u64,
    logical_fail: u64,
    defects_injected: u64,
    site_criticality: Vec<u64>,
    v_ol_w: Welford,
    v_ol_h: Histogram,
    v_oh_w: Welford,
    v_oh_h: Histogram,
    rise_w: Welford,
    rise_h: Histogram,
    fall_w: Welford,
    fall_h: Histogram,
}

const BINS: usize = 256;
/// Histogram span for edge times: 0–500 ns at ~2 ns resolution; slower
/// edges land in the overflow bucket and still count toward quantiles.
const TIME_SPAN: f64 = 500.0e-9;

impl BlockStats {
    fn new(sites: usize, vdd: f64) -> BlockStats {
        let vspan = 1.5 * vdd;
        BlockStats {
            evaluated: 0,
            sim_failures: 0,
            failure_causes: SimFailureCauses::default(),
            functional_pass: 0,
            parametric_pass: 0,
            logical_fail: 0,
            defects_injected: 0,
            site_criticality: vec![0; sites],
            v_ol_w: Welford::default(),
            v_ol_h: Histogram::new(0.0, vspan, BINS),
            v_oh_w: Welford::default(),
            v_oh_h: Histogram::new(0.0, vspan, BINS),
            rise_w: Welford::default(),
            rise_h: Histogram::new(0.0, TIME_SPAN, BINS),
            fall_w: Welford::default(),
            fall_h: Histogram::new(0.0, TIME_SPAN, BINS),
        }
    }

    /// Abandons the current trial on a circuit-level failure.
    fn sim_fail(&mut self, e: &fts_circuit::CircuitError) {
        self.sim_failures += 1;
        self.failure_causes.classify(e);
    }

    /// Abandons the current trial on an engine-level failure.
    fn sim_fail_mc(&mut self, e: &McError) {
        match e {
            McError::Circuit(c) => self.sim_fail(c),
            McError::Extract(x) => {
                self.sim_fail(&fts_circuit::CircuitError::Extract(x.clone()));
            }
            _ => {
                self.sim_failures += 1;
                self.failure_causes.other += 1;
                fts_telemetry::counter("mc.sim_failure.other", 1);
            }
        }
    }

    fn record(
        &mut self,
        mc: &MonteCarlo,
        cols: usize,
        defects: &[Fault],
        logical_ok: bool,
        e: &Electrical,
    ) {
        self.evaluated += 1;
        if !logical_ok {
            self.logical_fail += 1;
        }
        self.defects_injected += defects.len() as u64;
        if !e.functional {
            for f in defects {
                let (r, c) = f.site;
                self.site_criticality[r * cols + c] += 1;
            }
        }
        if e.functional {
            self.functional_pass += 1;
        }

        let mut parametric = e.functional;
        if let Some(v) = e.v_ol {
            self.v_ol_w.push(v);
            self.v_ol_h.push(v);
            parametric &= v <= mc.spec.v_ol_max;
        }
        if let Some(v) = e.v_oh {
            self.v_oh_w.push(v);
            self.v_oh_h.push(v);
            parametric &= v >= mc.spec.v_oh_min;
        }
        if let Some(t) = e.rise {
            self.rise_w.push(t);
            self.rise_h.push(t);
            if let Some(limit) = mc.spec.t_rise_max {
                parametric &= t <= limit;
            }
        }
        if let Some(t) = e.fall {
            self.fall_w.push(t);
            self.fall_h.push(t);
            if let Some(limit) = mc.spec.t_fall_max {
                parametric &= t <= limit;
            }
        }
        if parametric {
            self.parametric_pass += 1;
        }
    }

    fn merge(&mut self, other: &BlockStats) {
        self.evaluated += other.evaluated;
        self.sim_failures += other.sim_failures;
        self.failure_causes.merge(&other.failure_causes);
        self.functional_pass += other.functional_pass;
        self.parametric_pass += other.parametric_pass;
        self.logical_fail += other.logical_fail;
        self.defects_injected += other.defects_injected;
        for (a, b) in self
            .site_criticality
            .iter_mut()
            .zip(&other.site_criticality)
        {
            *a += b;
        }
        self.v_ol_w.merge(&other.v_ol_w);
        self.v_ol_h.merge(&other.v_ol_h);
        self.v_oh_w.merge(&other.v_oh_w);
        self.v_oh_h.merge(&other.v_oh_h);
        self.rise_w.merge(&other.rise_w);
        self.rise_h.merge(&other.rise_h);
        self.fall_w.merge(&other.fall_w);
        self.fall_h.merge(&other.fall_h);
    }

    fn into_report(self, mc: &MonteCarlo) -> YieldReport {
        YieldReport {
            trials: mc.trials,
            master_seed: mc.master_seed,
            evaluated: self.evaluated,
            sim_failures: self.sim_failures,
            failure_causes: self.failure_causes,
            functional_pass: self.functional_pass,
            parametric_pass: self.parametric_pass,
            logical_fail: self.logical_fail,
            defects_injected: self.defects_injected,
            site_criticality: self.site_criticality,
            v_ol: SummaryStats::from_accumulators(&self.v_ol_w, &self.v_ol_h),
            v_oh: SummaryStats::from_accumulators(&self.v_oh_w, &self.v_oh_h),
            rise_s: SummaryStats::from_accumulators(&self.rise_w, &self.rise_h),
            fall_s: SummaryStats::from_accumulators(&self.fall_w, &self.fall_h),
        }
    }
}

/// Outcome of a Monte Carlo ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Configured trial count.
    pub trials: u64,
    /// Master seed the ensemble ran with.
    pub master_seed: u64,
    /// Trials that produced a verdict (`trials - sim_failures`).
    pub evaluated: u64,
    /// Trials abandoned because the simulator failed on that sample.
    pub sim_failures: u64,
    /// Why those trials failed, by cause (`failure_causes.total() ==
    /// sim_failures`).
    pub failure_causes: SimFailureCauses,
    /// Trials reading correct logic levels at every input.
    pub functional_pass: u64,
    /// Functional trials also inside [`SpecLimits`].
    pub parametric_pass: u64,
    /// Trials whose defective lattice computes a wrong Boolean function.
    pub logical_fail: u64,
    /// Total crosspoint defects injected across all trials.
    pub defects_injected: u64,
    /// Row-major per-site count of "a defect here coincided with a
    /// functional failure" — the fault-criticality map.
    pub site_criticality: Vec<u64>,
    /// Worst-case low output level distribution \[V\].
    pub v_ol: SummaryStats,
    /// Worst-case high output level distribution \[V\].
    pub v_oh: SummaryStats,
    /// 10–90% rise-time distribution \[s\] (transient mode only).
    pub rise_s: SummaryStats,
    /// 90–10% fall-time distribution \[s\] (transient mode only).
    pub fall_s: SummaryStats,
}

impl YieldReport {
    /// Fraction of evaluated trials that are functionally correct.
    pub fn functional_yield(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.functional_pass as f64 / self.evaluated as f64
        }
    }

    /// Fraction of evaluated trials that are functional *and* within spec.
    pub fn parametric_yield(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.parametric_pass as f64 / self.evaluated as f64
        }
    }

    /// The most failure-critical sites, best first: `(row-major index,
    /// failure coincidence count)`, zero-count sites omitted.
    pub fn critical_sites(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = self
            .site_criticality
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_circuit::experiments::xor3_lattice;
    use fts_logic::Literal;

    fn nominal() -> SwitchCircuitModel {
        SwitchCircuitModel::square_hfo2().unwrap()
    }

    #[test]
    fn nominal_ensemble_yields_everything() {
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let report = MonteCarlo::new(16, 1)
            .variation(VariationModel::none())
            .run(&lat, 2, &nominal())
            .unwrap();
        assert_eq!(report.evaluated, 16);
        assert_eq!(report.sim_failures, 0);
        assert_eq!(report.functional_yield(), 1.0);
        assert_eq!(report.parametric_yield(), 1.0);
        assert_eq!(report.defects_injected, 0);
        // Zero variance: every trial measures the same V_OL.
        assert!(report.v_ol.std_dev < 1e-12, "σ = {}", report.v_ol.std_dev);
        assert!(report.v_ol.mean > 0.0 && report.v_ol.mean < 0.45);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let lat = xor3_lattice();
        let mc = MonteCarlo::new(48, 99)
            .variation(VariationModel::standard().with_defect_prob(0.05))
            .eval(EvalMode::Logical);
        let seq = mc.threads(1).run(&lat, 3, &nominal()).unwrap();
        for threads in [2, 4, 8] {
            let par = mc.threads(threads).run(&lat, 3, &nominal()).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn defects_reduce_functional_yield() {
        let lat = xor3_lattice();
        let report = MonteCarlo::new(200, 7)
            .variation(VariationModel::none().with_defect_prob(0.2))
            .eval(EvalMode::Logical)
            .run(&lat, 3, &nominal())
            .unwrap();
        assert!(
            report.defects_injected > 100,
            "defects {}",
            report.defects_injected
        );
        assert!(
            report.functional_yield() < 0.9,
            "yield {}",
            report.functional_yield()
        );
        assert_eq!(
            report.logical_fail,
            report.evaluated - report.functional_pass
        );
        // Failing trials attribute blame to defect sites.
        assert!(!report.critical_sites().is_empty());
    }

    #[test]
    fn dc_mode_collects_voltage_distributions() {
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let report = MonteCarlo::new(24, 3)
            .variation(VariationModel::standard())
            .run(&lat, 2, &nominal())
            .unwrap();
        assert_eq!(report.v_ol.n, report.evaluated);
        assert!(report.v_ol.std_dev > 0.0, "variation must spread V_OL");
        assert!(report.v_ol.p50 <= report.v_ol.p95 && report.v_ol.p95 <= report.v_ol.p99);
        assert!(report.v_oh.mean > 1.0);
    }

    #[test]
    fn transient_mode_measures_edges() {
        // XOR3 toggles the output within the phase walk, so both edges
        // exist (the Fig. 11 protocol).
        let report = MonteCarlo::new(2, 5)
            .variation(VariationModel::standard())
            .eval(EvalMode::Transient(TransientSettings::default()))
            .run(&xor3_lattice(), 3, &nominal())
            .unwrap();
        assert_eq!(report.evaluated, 2);
        assert!(report.rise_s.n > 0, "rise edges measured");
        assert!(report.rise_s.mean > 1.0e-9 && report.rise_s.mean < 100.0e-9);
        assert!(report.fall_s.mean > 0.0 && report.fall_s.mean < report.rise_s.mean);
    }

    #[test]
    fn tight_spec_fails_parametrically_not_functionally() {
        let lat = Lattice::from_literals(1, 1, vec![Literal::pos(0)]).unwrap();
        // Ratioed V_OL can never be this low.
        let spec = SpecLimits {
            v_ol_max: 1e-6,
            ..SpecLimits::default()
        };
        let report = MonteCarlo::new(8, 2)
            .variation(VariationModel::none())
            .spec(spec)
            .run(&lat, 1, &nominal())
            .unwrap();
        assert_eq!(report.functional_yield(), 1.0);
        assert_eq!(report.parametric_yield(), 0.0);
    }

    #[test]
    fn sim_failures_are_classified_by_cause() {
        use fts_circuit::CircuitError as E;
        use fts_spice::SpiceError as S;
        let mut acc = BlockStats::new(1, 1.2);
        acc.sim_fail(&E::Spice(S::NoConvergence {
            analysis: "op",
            residual: 1.0,
        }));
        acc.sim_fail(&E::Spice(S::SingularMatrix));
        acc.sim_fail(&E::Spice(S::InvalidValue {
            device: "M1".into(),
            reason: "w <= 0",
        }));
        acc.sim_fail(&E::InvalidConfig {
            reason: "degenerate",
        });
        acc.sim_fail(&E::TargetNotBracketed { target: 1.0 });
        acc.sim_fail_mc(&McError::InvalidConfig { reason: "bad" });
        let c = acc.failure_causes;
        assert_eq!(c.no_convergence, 1);
        assert_eq!(c.singular_matrix, 1);
        assert_eq!(c.build, 2);
        assert_eq!(c.other, 2);
        assert_eq!(c.total(), acc.sim_failures);

        let mut merged = SimFailureCauses::default();
        merged.merge(&c);
        merged.merge(&c);
        assert_eq!(merged.total(), 2 * c.total());
    }

    #[test]
    fn dc_ensemble_matches_scalar_path() {
        // Mixed population: defect-rewired trials fall back to the scalar
        // path mid-chunk while clean lanes stay in lockstep. Counts must
        // agree exactly; voltages to the ensemble-vs-scalar pin (1e-9).
        let lat = xor3_lattice();
        let mc = MonteCarlo::new(24, 11)
            .variation(VariationModel::standard().with_defect_prob(0.1))
            .threads(1);
        let scalar = mc.ensemble_width(1).run(&lat, 3, &nominal()).unwrap();
        for width in [2, 6, 8, 32] {
            let ens = mc.ensemble_width(width).run(&lat, 3, &nominal()).unwrap();
            assert_eq!(ens.evaluated, scalar.evaluated, "width {width}");
            assert_eq!(ens.sim_failures, scalar.sim_failures, "width {width}");
            assert_eq!(ens.functional_pass, scalar.functional_pass, "width {width}");
            assert_eq!(ens.parametric_pass, scalar.parametric_pass, "width {width}");
            assert_eq!(ens.logical_fail, scalar.logical_fail, "width {width}");
            assert_eq!(
                ens.defects_injected, scalar.defects_injected,
                "width {width}"
            );
            assert_eq!(
                ens.site_criticality, scalar.site_criticality,
                "width {width}"
            );
            assert!(
                (ens.v_ol.mean - scalar.v_ol.mean).abs() < 1e-9
                    && (ens.v_oh.mean - scalar.v_oh.mean).abs() < 1e-9,
                "width {width}: v_ol {} vs {}, v_oh {} vs {}",
                ens.v_ol.mean,
                scalar.v_ol.mean,
                ens.v_oh.mean,
                scalar.v_oh.mean
            );
        }
    }

    #[test]
    fn dc_ensemble_report_is_thread_invariant() {
        let lat = xor3_lattice();
        let mc = MonteCarlo::new(24, 17)
            .variation(VariationModel::standard().with_defect_prob(0.05))
            .ensemble_width(4);
        let seq = mc.threads(1).run(&lat, 3, &nominal()).unwrap();
        for threads in [2, 4] {
            let par = mc.threads(threads).run(&lat, 3, &nominal()).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let lat = Lattice::from_literals(1, 1, vec![Literal::pos(0)]).unwrap();
        let m = nominal();
        let err = MonteCarlo::new(0, 1).run(&lat, 1, &m);
        assert!(matches!(err, Err(McError::InvalidConfig { .. })));
        let mut mc = MonteCarlo::new(4, 1);
        mc.block_size = 0;
        assert!(matches!(
            mc.run(&lat, 1, &m),
            Err(McError::InvalidConfig { .. })
        ));
        let bad = MonteCarlo::new(4, 1).variation(VariationModel::none().with_defect_prob(1.5));
        assert!(matches!(
            bad.run(&lat, 1, &m),
            Err(McError::InvalidConfig { .. })
        ));
        let no_lanes = MonteCarlo::new(4, 1).ensemble_width(0);
        assert!(matches!(
            no_lanes.run(&lat, 1, &m),
            Err(McError::InvalidConfig { .. })
        ));
        // Lattice referencing variable 5 with only 1 stimulus: the nominal
        // path fails up front (truth table or circuit build), not per trial.
        let wide = Lattice::from_literals(1, 1, vec![Literal::pos(5)]).unwrap();
        assert!(matches!(
            MonteCarlo::new(4, 1).run(&wide, 1, &m),
            Err(McError::Lattice(_) | McError::Circuit(_))
        ));
    }
}
