//! Parallel Monte Carlo variation and yield analysis for four-terminal
//! switching lattices.
//!
//! The DATE 2019 paper realizes lattices in a CMOS-compatible flow and
//! models them as six-MOSFET switch circuits; this crate answers the
//! manufacturing question the paper leaves open: *how many fabricated
//! lattices actually work, and with what margins?* It runs ensembles of
//! perturbed lattice realizations — per-device parameter variation
//! (threshold shift, transconductance/mobility scaling, geometry and oxide
//! variation mapped through `fts-device`/`fts-extract` level-1 parameters)
//! plus crosspoint defects (stuck-ON/OFF faults from
//! `fts-lattice::defects`) — and reports functional yield, parametric
//! yield, and the distributions of V_OL, V_OH, and switching delays.
//!
//! Three properties define the engine:
//!
//! - **Deterministic seed-splitting** ([`rng`]): a master seed derives an
//!   independent stream per trial, so any trial can be reproduced in
//!   isolation and the ensemble is reproducible end to end.
//! - **Order-stable parallelism** ([`executor`]): trials run in fixed
//!   blocks pulled from a work-stealing queue, and block results merge in
//!   block order — the report is **bit-identical** for any thread count,
//!   including the sequential fallback.
//! - **Streaming statistics** ([`stats`]): Welford moments and integer
//!   histograms, so memory stays O(bins) however many trials run.
//!
//! # Example
//!
//! Yield of the paper's XOR3 lattice under standard process variation and
//! a 1% crosspoint-defect rate:
//!
//! ```
//! use fts_circuit::experiments::xor3_lattice;
//! use fts_circuit::model::SwitchCircuitModel;
//! use fts_montecarlo::{EvalMode, MonteCarlo, VariationModel};
//!
//! let nominal = SwitchCircuitModel::square_hfo2()?;
//! let report = MonteCarlo::new(128, 0xFACE)
//!     .variation(VariationModel::standard().with_defect_prob(0.01))
//!     .eval(EvalMode::Logical) // use EvalMode::Dc for electrical margins
//!     .run(&xor3_lattice(), 3, &nominal)?;
//! assert!(report.functional_yield() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod rng;
pub mod stats;
pub mod variation;

pub use engine::{
    EvalMode, MonteCarlo, SimFailureCauses, SpecLimits, TransientSettings, YieldReport,
};
pub use error::McError;
/// Re-export of the shared work-stealing block executor (now maintained
/// in `fts-engine`; this alias keeps existing `fts_montecarlo::executor`
/// callers working).
pub use fts_engine::executor;
pub use stats::SummaryStats;
pub use variation::{ParamMapping, ParamSample, ParamSigmas, VariationModel};
