//! Deterministic, seed-splittable random streams.
//!
//! One master seed defines the whole ensemble; every trial derives its own
//! independent [`StdRng`] stream from `(master, trial_index)` through a
//! SplitMix64-style mix. Properties the engine relies on:
//!
//! - **Reproducibility** — trial `k` of seed `s` draws the same values on
//!   every run, platform, and thread count.
//! - **Isolation** — a trial can be re-simulated alone (e.g. to debug one
//!   failing sample) without replaying the stream of any other trial.
//! - **Decorrelation** — the 64-bit finalizer scatters consecutive trial
//!   indices across the full seed space, so neighbouring trials do not see
//!   correlated streams.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The SplitMix64 finalizer: a bijective 64-bit hash with full avalanche.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The independent random stream of one trial.
///
/// # Example
///
/// ```
/// use fts_montecarlo::rng::trial_rng;
/// use rand::Rng;
///
/// let a: f64 = trial_rng(42, 7).gen_range(0.0..1.0);
/// let b: f64 = trial_rng(42, 7).gen_range(0.0..1.0);
/// assert_eq!(a.to_bits(), b.to_bits(), "same (seed, trial) ⇒ same stream");
/// ```
pub fn trial_rng(master_seed: u64, trial: u64) -> StdRng {
    // Two rounds of mixing keep (s, t) and (s + 1, t - 1) style collisions
    // from sharing a stream prefix.
    StdRng::seed_from_u64(mix64(
        mix64(master_seed) ^ mix64(trial.wrapping_mul(0xA24B_AED4_963E_E407)),
    ))
}

/// A standard normal (mean 0, variance 1) sample via Box–Muller.
///
/// Uses two uniform draws per sample (no cached spare) so the number of
/// RNG draws per call is fixed — important for keeping trial streams
/// alignment-independent of call history.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    use rand::Rng;
    // u1 in (0, 1]: avoid ln(0).
    let u1 = 1.0 - rng.gen_range(0.0f64..1.0);
    let u2 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_reproducible() {
        for trial in [0u64, 1, 2, 1000, u64::MAX] {
            let mut a = trial_rng(9, trial);
            let mut b = trial_rng(9, trial);
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn neighbouring_trials_are_decorrelated() {
        let mut a = trial_rng(9, 0);
        let mut b = trial_rng(9, 1);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn master_seed_changes_every_stream() {
        let mut a = trial_rng(1, 5);
        let mut b = trial_rng(2, 5);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = trial_rng(11, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert!(samples.iter().all(|x| x.is_finite()));
    }
}
