//! Streaming, mergeable statistics.
//!
//! Ensembles can run millions of trials, so no per-trial data is retained:
//! moments stream through a [`Welford`] accumulator and percentiles through
//! a fixed-bin [`Histogram`]. Both merge associatively in a *fixed block
//! order*, which is what makes the parallel engine bit-identical to the
//! sequential one — every thread count produces the same sequence of merge
//! operations (see `executor`).

/// Welford/Chan streaming moments: count, mean, variance, extrema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Welford {
    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan et al. pairwise update). The result
    /// depends on operand order only through floating-point rounding, so
    /// callers must merge in a deterministic order.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std_dev(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0).sqrt()
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A fixed-range, fixed-bin histogram with exact integer counts — the
/// streaming percentile estimator. Counts merge exactly, so percentile
/// queries are bit-identical however the ensemble was partitioned.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo`.
    below: u64,
    /// Observations at or above `hi`.
    above: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics when `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0, "bad histogram range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let k = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[k] += 1;
        }
    }

    /// Merges another histogram with the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (different range or bin count).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram shape mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.below + self.above + self.bins.iter().sum::<u64>()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper edge of the bin
    /// where the cumulative count crosses `q·total`; 0 when empty.
    /// Resolution is one bin width.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = self.below;
        if cum >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (k, &n) in self.bins.iter().enumerate() {
            cum += n;
            if cum >= target {
                return self.lo + w * (k + 1) as f64;
            }
        }
        self.hi
    }
}

/// The condensed distribution summary reported per metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Observations contributing to this metric.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (histogram resolution).
    pub p50: f64,
    /// 95th percentile (histogram resolution).
    pub p95: f64,
    /// 99th percentile (histogram resolution).
    pub p99: f64,
}

impl SummaryStats {
    /// Builds the summary from the two streaming accumulators.
    pub fn from_accumulators(w: &Welford, h: &Histogram) -> SummaryStats {
        SummaryStats {
            n: w.count(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: w.min(),
            max: w.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }

    /// An all-zero summary (no observations).
    pub fn empty() -> SummaryStats {
        SummaryStats {
            n: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs: Vec<f64> = (0..100)
            .map(|k| (k as f64 * 0.37).sin() * 3.0 + 1.0)
            .collect();
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.std_dev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(w.count(), 100);
    }

    #[test]
    fn block_merge_is_thread_count_invariant() {
        // The exact scenario the executor creates: the same blocks, merged
        // in the same order, must give bit-identical results no matter how
        // blocks were computed.
        let xs: Vec<f64> = (0..1000)
            .map(|k| ((k * 2654435761u64 % 1000) as f64) * 0.01)
            .collect();
        let block = 64;
        let blocks: Vec<Welford> = xs
            .chunks(block)
            .map(|c| {
                let mut w = Welford::default();
                c.iter().for_each(|&x| w.push(x));
                w
            })
            .collect();
        let merge_all = || {
            let mut g = Welford::default();
            blocks.iter().for_each(|b| g.merge(b));
            g
        };
        let a = merge_all();
        let b = merge_all();
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.std_dev().to_bits(), b.std_dev().to_bits());
    }

    #[test]
    fn empty_welford_reports_zeros() {
        let w = Welford::default();
        assert_eq!(
            (w.count(), w.mean(), w.std_dev(), w.min(), w.max()),
            (0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut a = Welford::default();
        a.push(2.0);
        a.push(4.0);
        let before = a;
        a.merge(&Welford::default());
        assert_eq!(a, before);
        let mut e = Welford::default();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for k in 0..1000 {
            h.push(k as f64 / 1000.0);
        }
        assert_eq!(h.count(), 1000);
        assert!(
            (h.quantile(0.5) - 0.5).abs() <= 0.02,
            "p50 {}",
            h.quantile(0.5)
        );
        assert!(
            (h.quantile(0.95) - 0.95).abs() <= 0.02,
            "p95 {}",
            h.quantile(0.95)
        );
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_overflow_buckets_count() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(-1.0);
        h.push(0.5);
        h.push(7.0);
        assert_eq!(h.count(), 3);
        let mut other = Histogram::new(0.0, 1.0, 10);
        other.push(0.25);
        h.merge(&other);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn summary_of_empty_is_all_zero() {
        let s = SummaryStats::from_accumulators(&Welford::default(), &Histogram::new(0.0, 1.0, 4));
        assert_eq!(s, SummaryStats::empty());
    }
}
