//! Process-variation and defect models.
//!
//! A [`VariationModel`] describes how fabricated four-terminal switches
//! deviate from the nominal extracted model:
//!
//! - **Die-level corners** (`global`): one sample per trial shifts every
//!   switch together — lot-to-lot oxide thickness, lithography bias,
//!   doping. Optionally mapped through the full virtual-TCAD →
//!   level-1-extraction flow ([`ParamMapping::Refit`]) instead of the
//!   analytic first-order map.
//! - **Per-switch mismatch** (`mismatch`): one sample per lattice site on
//!   top of the die corner — local Vth/Kp/geometry mismatch.
//! - **Crosspoint defects**: each switch is independently stuck-ON or
//!   stuck-OFF with probability [`VariationModel::defect_prob`], the fault
//!   model of `fts-lattice::defects`.
//!
//! The analytic parameter map uses the standard first-order sensitivities
//! of the level-1 model: `Kp = µ·Cox ∝ 1/tox`, `Vth` rising linearly with
//! `tox` (fixed depletion charge across a thicker oxide), and `W/L`
//! scaling directly with the lithography factor.

use fts_circuit::model::SwitchCircuitModel;
use fts_device::{Device, DeviceKind, Dielectric};
use fts_extract::fit::{channel_iv_data, fit_level1};
use fts_lattice::defects::{Fault, FaultKind};
use fts_lattice::Lattice;
use fts_spice::MosParams;
use rand::rngs::StdRng;
use rand::Rng;

use crate::error::McError;
use crate::rng::standard_normal;

/// Standard deviations of one layer of parameter variation. All fields are
/// 1-σ values; `sigma_vth` is absolute volts, the rest are relative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSigmas {
    /// Threshold-voltage shift σ \[V\].
    pub vth_v: f64,
    /// Relative transconductance (`Kp`) σ.
    pub kp_rel: f64,
    /// Relative channel-geometry (`W/L`) σ.
    pub geom_rel: f64,
    /// Relative gate-oxide-thickness σ (mapped into `Kp` and `Vth`).
    pub tox_rel: f64,
    /// Relative terminal-capacitance σ.
    pub cap_rel: f64,
}

impl ParamSigmas {
    /// No variation at all.
    pub fn zero() -> ParamSigmas {
        ParamSigmas {
            vth_v: 0.0,
            kp_rel: 0.0,
            geom_rel: 0.0,
            tox_rel: 0.0,
            cap_rel: 0.0,
        }
    }

    /// True when every σ is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.vth_v == 0.0
            && self.kp_rel == 0.0
            && self.geom_rel == 0.0
            && self.tox_rel == 0.0
            && self.cap_rel == 0.0
    }

    /// Draws one correlated sample of this layer (5 normal draws, always —
    /// the draw count is fixed so trial streams stay aligned).
    fn sample(&self, rng: &mut StdRng) -> ParamSample {
        ParamSample {
            dvth: self.vth_v * standard_normal(rng),
            kp_factor: factor(self.kp_rel, rng),
            geom_factor: factor(self.geom_rel, rng),
            tox_factor: factor(self.tox_rel, rng),
            cap_factor: factor(self.cap_rel, rng),
        }
    }
}

/// `1 + σ·N(0,1)`, clamped away from zero so a 5-σ tail cannot produce a
/// non-physical (negative or vanishing) device.
fn factor(sigma: f64, rng: &mut StdRng) -> f64 {
    (1.0 + sigma * standard_normal(rng)).max(0.05)
}

/// One drawn realization of a [`ParamSigmas`] layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSample {
    /// Threshold shift \[V\].
    pub dvth: f64,
    /// Multiplicative `Kp` factor.
    pub kp_factor: f64,
    /// Multiplicative `W/L` factor.
    pub geom_factor: f64,
    /// Multiplicative oxide-thickness factor.
    pub tox_factor: f64,
    /// Multiplicative terminal-capacitance factor.
    pub cap_factor: f64,
}

impl ParamSample {
    /// The identity sample (no perturbation).
    pub fn nominal() -> ParamSample {
        ParamSample {
            dvth: 0.0,
            kp_factor: 1.0,
            geom_factor: 1.0,
            tox_factor: 1.0,
            cap_factor: 1.0,
        }
    }

    /// Applies the first-order sensitivity map to one transistor.
    fn apply(&self, p: MosParams) -> MosParams {
        MosParams {
            // Kp = µ·Cox ∝ 1/tox, times the mobility/doping factor.
            kp: p.kp * self.kp_factor / self.tox_factor,
            // Vth grows with tox (depletion charge across a thicker oxide).
            vth: p.vth * self.tox_factor + self.dvth,
            lambda: p.lambda,
            w_over_l: p.w_over_l * self.geom_factor,
        }
    }

    /// Applies the map to a whole switch (both transistor types share one
    /// physical device, so one sample perturbs both).
    pub fn apply_switch(&self, m: &SwitchCircuitModel) -> SwitchCircuitModel {
        SwitchCircuitModel {
            type_a: self.apply(m.type_a),
            type_b: self.apply(m.type_b),
            terminal_cap: m.terminal_cap * self.cap_factor,
        }
    }
}

/// How die-level corners become level-1 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamMapping {
    /// First-order analytic sensitivities applied to the nominal extracted
    /// model (fast; the default).
    Direct,
    /// Re-run the §III–§IV flow per trial: perturb the virtual-TCAD I-V
    /// data and re-fit the level-1 model with `fts-extract` — the full
    /// paper pipeline under variation. Roughly 100× slower than
    /// [`ParamMapping::Direct`].
    Refit {
        /// Device structure to characterize.
        kind: DeviceKind,
        /// Gate dielectric.
        dielectric: Dielectric,
    },
}

/// The complete statistical description of a fabricated lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Die-level corner σ (one sample per trial).
    pub global: ParamSigmas,
    /// Per-switch mismatch σ (one sample per site, on top of the corner).
    pub mismatch: ParamSigmas,
    /// How the die-level corner maps to parameters.
    pub mapping: ParamMapping,
    /// Per-switch crosspoint-defect probability.
    pub defect_prob: f64,
    /// Fraction of defects that are stuck-ON (the rest are stuck-OFF).
    pub stuck_on_fraction: f64,
}

impl VariationModel {
    /// No variation, no defects: every trial is the nominal lattice.
    pub fn none() -> VariationModel {
        VariationModel {
            global: ParamSigmas::zero(),
            mismatch: ParamSigmas::zero(),
            mapping: ParamMapping::Direct,
            defect_prob: 0.0,
            stuck_on_fraction: 0.5,
        }
    }

    /// A plausible 180 nm-class starting point: 2% oxide and 3% geometry
    /// die corners, 30 mV / 5% local mismatch, no defects.
    pub fn standard() -> VariationModel {
        VariationModel {
            global: ParamSigmas {
                vth_v: 0.02,
                kp_rel: 0.03,
                geom_rel: 0.03,
                tox_rel: 0.02,
                cap_rel: 0.03,
            },
            mismatch: ParamSigmas {
                vth_v: 0.03,
                kp_rel: 0.05,
                geom_rel: 0.02,
                tox_rel: 0.0,
                cap_rel: 0.05,
            },
            mapping: ParamMapping::Direct,
            defect_prob: 0.0,
            stuck_on_fraction: 0.5,
        }
    }

    /// The same model with a per-switch defect probability.
    pub fn with_defect_prob(mut self, p: f64) -> VariationModel {
        self.defect_prob = p;
        self
    }

    /// True when no trial can deviate from nominal.
    pub fn is_nominal(&self) -> bool {
        self.global.is_zero() && self.mismatch.is_zero() && self.defect_prob == 0.0
    }

    /// Draws the trial's die-level base model.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures in [`ParamMapping::Refit`] mode.
    pub fn sample_base_model(
        &self,
        nominal: &SwitchCircuitModel,
        rng: &mut StdRng,
    ) -> Result<SwitchCircuitModel, McError> {
        let corner = self.global.sample(rng);
        match self.mapping {
            ParamMapping::Direct => Ok(corner.apply_switch(nominal)),
            ParamMapping::Refit { kind, dielectric } => {
                refit_switch_model(kind, dielectric, &corner)
            }
        }
    }

    /// Draws the per-site mismatch models for every switch, row-major.
    pub fn sample_site_models(
        &self,
        base: &SwitchCircuitModel,
        lattice: &Lattice,
        rng: &mut StdRng,
    ) -> Vec<SwitchCircuitModel> {
        let sites = lattice.rows() * lattice.cols();
        (0..sites)
            .map(|_| {
                if self.mismatch.is_zero() {
                    *base
                } else {
                    self.mismatch.sample(rng).apply_switch(base)
                }
            })
            .collect()
    }

    /// Draws the trial's crosspoint-defect set, row-major. The RNG draw
    /// count per site is fixed (one Bernoulli, plus one polarity draw when
    /// a defect lands) for stream stability.
    pub fn sample_defects(&self, lattice: &Lattice, rng: &mut StdRng) -> Vec<Fault> {
        let mut faults = Vec::new();
        for r in 0..lattice.rows() {
            for c in 0..lattice.cols() {
                if rng.gen_bool(self.defect_prob) {
                    let kind = if rng.gen_bool(self.stuck_on_fraction) {
                        FaultKind::StuckOn
                    } else {
                        FaultKind::StuckOff
                    };
                    faults.push(Fault { site: (r, c), kind });
                }
            }
        }
        faults
    }
}

/// Maps a die-level corner through the full characterization + extraction
/// flow: the virtual-TCAD I-V data is re-sampled with the corner's gate
/// shift and current scaling, then `fts-extract` re-fits the level-1
/// parameters — exactly what re-measuring a skewed wafer would produce.
///
/// # Errors
///
/// Propagates extraction failures.
pub fn refit_switch_model(
    kind: DeviceKind,
    dielectric: Dielectric,
    corner: &ParamSample,
) -> Result<SwitchCircuitModel, McError> {
    use fts_device::{Terminal, TerminalPair};

    let device = Device::new(kind, dielectric);
    let g = device.geometry();
    let edge = TerminalPair::new(Terminal::T1, Terminal::T2);
    let diag = TerminalPair::new(Terminal::T1, Terminal::T3);
    let ids_scale = corner.kp_factor / corner.tox_factor;

    let fit = |pair| -> Result<fts_extract::Level1, McError> {
        let mut data = channel_iv_data(&device, pair, 41);
        for k in 0..data.len() {
            // A +dvth wafer shift means the same gate bias turns the
            // channel on later: emulate by re-measuring at vgs - dvth.
            let (vgs, vds) = (data.vgs[k], data.vds[k]);
            let ids = device.channel_current(
                pair,
                vds,
                0.0,
                vgs - corner.dvth - vgs * (corner.tox_factor - 1.0),
            );
            data.ids[k] = ids * ids_scale;
        }
        let aspect = g.channel(pair).aspect() * corner.geom_factor;
        Ok(fit_level1(&data, aspect)?.model)
    };

    let type_a = fit(edge)?;
    let type_b = fit(diag)?;
    Ok(SwitchCircuitModel {
        type_a: MosParams {
            kp: type_a.kp,
            vth: type_a.vth,
            lambda: type_a.lambda,
            w_over_l: type_a.w_over_l,
        },
        type_b: MosParams {
            kp: type_b.kp,
            vth: type_b.vth,
            lambda: type_b.lambda,
            w_over_l: type_b.w_over_l,
        },
        terminal_cap: device.terminal_capacitance() * corner.cap_factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::trial_rng;
    use fts_logic::Literal;

    fn nominal() -> SwitchCircuitModel {
        SwitchCircuitModel::square_hfo2().unwrap()
    }

    #[test]
    fn zero_sigmas_are_identity() {
        let m = nominal();
        let v = VariationModel::none();
        let mut rng = trial_rng(1, 0);
        let base = v.sample_base_model(&m, &mut rng).unwrap();
        assert_eq!(base, m);
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        for site in v.sample_site_models(&base, &lat, &mut rng) {
            assert_eq!(site, m);
        }
        assert!(v.sample_defects(&lat, &mut rng).is_empty());
        assert!(v.is_nominal());
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let m = nominal();
        let v = VariationModel::standard().with_defect_prob(0.2);
        let lat = Lattice::from_literals(2, 2, vec![Literal::pos(0); 4]).unwrap();
        let run = |trial| {
            let mut rng = trial_rng(7, trial);
            let base = v.sample_base_model(&m, &mut rng).unwrap();
            let sites = v.sample_site_models(&base, &lat, &mut rng);
            let defects = v.sample_defects(&lat, &mut rng);
            (base, sites, defects)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "different trials, different corners");
    }

    #[test]
    fn variation_moves_parameters_both_ways() {
        let m = nominal();
        let v = VariationModel::standard();
        let mut above = 0;
        let mut below = 0;
        for trial in 0..64 {
            let mut rng = trial_rng(13, trial);
            let s = v.sample_base_model(&m, &mut rng).unwrap();
            if s.type_a.vth > m.type_a.vth {
                above += 1;
            } else {
                below += 1;
            }
            assert!(s.type_a.kp > 0.0 && s.type_a.w_over_l > 0.0);
        }
        assert!(
            above > 8 && below > 8,
            "two-sided spread: {above} up, {below} down"
        );
    }

    #[test]
    fn defect_rate_matches_probability() {
        let v = VariationModel::none().with_defect_prob(0.25);
        let lat = Lattice::from_literals(3, 3, vec![Literal::pos(0); 9]).unwrap();
        let mut total = 0usize;
        for trial in 0..400 {
            let mut rng = trial_rng(5, trial);
            total += v.sample_defects(&lat, &mut rng).len();
        }
        let rate = total as f64 / (400.0 * 9.0);
        assert!((rate - 0.25).abs() < 0.03, "empirical defect rate {rate}");
    }

    #[test]
    fn stuck_on_fraction_controls_polarity() {
        let mut v = VariationModel::none().with_defect_prob(1.0);
        v.stuck_on_fraction = 1.0;
        let lat = Lattice::from_literals(2, 1, vec![Literal::pos(0); 2]).unwrap();
        let mut rng = trial_rng(2, 0);
        let faults = v.sample_defects(&lat, &mut rng);
        assert_eq!(faults.len(), 2);
        assert!(faults.iter().all(|f| f.kind == FaultKind::StuckOn));
    }

    #[test]
    fn refit_mapping_recovers_nominal_at_identity_corner() {
        let direct = nominal();
        let refit = refit_switch_model(
            DeviceKind::Square,
            Dielectric::HfO2,
            &ParamSample::nominal(),
        )
        .unwrap();
        assert!((refit.type_a.vth - direct.type_a.vth).abs() < 0.02, "vth");
        assert!(
            (refit.type_a.kp / direct.type_a.kp - 1.0).abs() < 0.05,
            "kp"
        );
    }

    #[test]
    fn refit_mapping_responds_to_corners() {
        let mut corner = ParamSample::nominal();
        corner.kp_factor = 1.2;
        let skewed = refit_switch_model(DeviceKind::Square, Dielectric::HfO2, &corner).unwrap();
        let base = nominal();
        assert!(
            skewed.type_a.kp > 1.1 * base.type_a.kp,
            "fast corner raises fitted Kp"
        );
    }
}
