//! Error type for the Monte Carlo engine.

use std::error::Error;
use std::fmt;

use fts_circuit::CircuitError;
use fts_extract::ExtractError;
use fts_lattice::LatticeError;

/// Errors from ensemble configuration or nominal-path evaluation.
///
/// Per-trial simulator failures do *not* surface here — they are counted in
/// [`YieldReport::sim_failures`](crate::YieldReport::sim_failures) so a
/// single degenerate sample cannot abort a million-trial ensemble.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum McError {
    /// Lattice construction or evaluation failed.
    Lattice(LatticeError),
    /// Circuit construction or simulation failed on the nominal path.
    Circuit(CircuitError),
    /// Model re-extraction failed.
    Extract(ExtractError),
    /// The ensemble configuration is unusable.
    InvalidConfig {
        /// What is wrong.
        reason: &'static str,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Lattice(e) => write!(f, "lattice: {e}"),
            McError::Circuit(e) => write!(f, "circuit: {e}"),
            McError::Extract(e) => write!(f, "extraction: {e}"),
            McError::InvalidConfig { reason } => write!(f, "invalid Monte Carlo config: {reason}"),
        }
    }
}

impl Error for McError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            McError::Lattice(e) => Some(e),
            McError::Circuit(e) => Some(e),
            McError::Extract(e) => Some(e),
            McError::InvalidConfig { .. } => None,
        }
    }
}

impl From<LatticeError> for McError {
    fn from(e: LatticeError) -> Self {
        McError::Lattice(e)
    }
}

impl From<CircuitError> for McError {
    fn from(e: CircuitError) -> Self {
        McError::Circuit(e)
    }
}

impl From<ExtractError> for McError {
    fn from(e: ExtractError) -> Self {
        McError::Extract(e)
    }
}
