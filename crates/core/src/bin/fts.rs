//! `fts` — command-line front end for the four-terminal-lattice toolkit.
//!
//! ```text
//! fts count <m> <n>                  product count of the m x n lattice function
//! fts synth <function>               synthesize a lattice (and verify it)
//! fts lattice <file|-> --vars <n>    evaluate a lattice from its text form
//! fts faults <file|-> --vars <n>     single-fault analysis of a lattice
//! fts characterize <device> <gate>   virtual-TCAD summary (square|cross|junctionless, sio2|hfo2)
//! fts xor3                           run the Fig. 11 transient and print the summary
//! fts explore <function>             design-space sweep with Pareto front
//! fts run <deck.cir|->               simulate a SPICE deck (fts-netlist frontend)
//! fts batch <manifest.json>          batch simulation on the fts-engine scheduler
//! fts serve                          HTTP simulation service over the same engine
//! fts client <ip:port> <command>     wire client for a running server/coordinator
//! fts help                           print the full usage text (also --help/-h)
//! ```
//!
//! The per-subcommand flags are listed by `fts help`; [`usage`] is the
//! single authoritative flag reference (the CLI golden test holds it to
//! the flags each subcommand actually parses).
//!
//! `<function>` is one of: and2..and4, or2..or4, xor2..xor4, xnor2, xnor3,
//! maj3, maj5, th24 (2-of-4 threshold).

use std::io::Read;

use four_terminal_lattice::batch;
use four_terminal_lattice::circuit::experiments::Xor3Experiment;
use four_terminal_lattice::circuit::model::SwitchCircuitModel;
use four_terminal_lattice::device::characterize::characterize;
use four_terminal_lattice::device::{Device, DeviceKind, Dielectric};
use four_terminal_lattice::explorer::{explore, ExploreOptions};
use four_terminal_lattice::lattice::{count, defects, text, Lattice};
use four_terminal_lattice::named_function;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            2
        }
    };
    std::process::exit(code);
}

/// The one authoritative usage text. Every flag a subcommand parses must
/// appear on its line here — the CLI golden test (`tests/cli.rs`) fails
/// otherwise, so help and reality cannot drift again.
fn usage() -> &'static str {
    "usage:\n  \
     fts count <m> <n>\n  \
     fts synth <function>\n  \
     fts lattice <file|-> --vars <n>\n  \
     fts faults <file|-> --vars <n>\n  \
     fts characterize <square|cross|junctionless> <sio2|hfo2>\n  \
     fts xor3\n  \
     fts explore <function>\n  \
     fts run <deck.cir|-> [--out <report.json>] [--threads <n>] [--waveform] [--trace]\n  \
     fts batch <manifest.json> [--out <report.json>] [--trace]\n  \
     fts serve [--addr <ip:port>] [--workers <n>] [--queue-depth <n>] [--cache-entries <n>] [--cache-bytes <n>] [--retain-done <n> (deprecated alias of --cache-entries)] [--trace-events <n>] [--worker] [--coordinator --workers-addrs <a,b,..> [--probe-ms <n>] [--route-attempts <n>] [--no-cascade]]\n  \
     fts client <ip:port> health|metrics|shutdown|submit <manifest.json|->|status <id>|wait <id>|trace <id> [--chrome]|cancel <id>|cache|cache-flush|list [--state <s>] [--cursor <n>] [--limit <n>]\n  \
     fts help"
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "count" => cmd_count(&args[1..]),
        "synth" => cmd_synth(&args[1..]),
        "lattice" => cmd_lattice(&args[1..], false),
        "faults" => cmd_lattice(&args[1..], true),
        "characterize" => cmd_characterize(&args[1..]),
        "xor3" => cmd_xor3(),
        "explore" => cmd_explore(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let m: usize = args
        .first()
        .ok_or("missing <m>")?
        .parse()
        .map_err(|_| "bad <m>")?;
    let n: usize = args
        .get(1)
        .ok_or("missing <n>")?
        .parse()
        .map_err(|_| "bad <n>")?;
    if m == 0 || n == 0 {
        return Err("dimensions must be at least 1".into());
    }
    if m * n > 100 {
        return Err("grid too large (counting is exponential; stay within ~10x10)".into());
    }
    println!("{}", count::product_count(m, n));
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let f = named_function(args.first().ok_or("missing <function>")?)?;
    let s = four_terminal_lattice::synth::synthesize(&f).map_err(|e| e.to_string())?;
    println!(
        "{:?} realization, {}x{} ({} switches):",
        s.method,
        s.lattice.rows(),
        s.lattice.cols(),
        s.area()
    );
    println!("{}", s.lattice);
    let ok = s.lattice.truth_table(f.vars()).map_err(|e| e.to_string())? == f;
    println!("verified: {ok}");
    Ok(())
}

fn read_lattice(path: &str) -> Result<Lattice, String> {
    let content = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    text::parse(&content).map_err(|e| e.to_string())
}

fn vars_flag(args: &[String]) -> Result<usize, String> {
    let pos = args
        .iter()
        .position(|a| a == "--vars")
        .ok_or("missing --vars <n>")?;
    args.get(pos + 1)
        .ok_or("missing value after --vars")?
        .parse::<usize>()
        .map_err(|_| "bad --vars value".into())
}

fn cmd_lattice(args: &[String], fault_mode: bool) -> Result<(), String> {
    let path = args.first().ok_or("missing <file|->")?;
    let lat = read_lattice(path)?;
    let vars = vars_flag(args)?;
    println!("{}x{} lattice:", lat.rows(), lat.cols());
    println!("{lat}");
    if fault_mode {
        let report = defects::analyze(&lat, vars).map_err(|e| e.to_string())?;
        println!(
            "\nfaults: {} total, {} undetectable, worst impact {} rows, detectability {:.1}%",
            report.total,
            report.undetectable,
            report.worst_impact,
            report.detectability() * 100.0
        );
        for (site, impact) in defects::critical_sites(&lat, vars, 5).map_err(|e| e.to_string())? {
            println!("  critical site {site:?}: impact {impact}");
        }
    } else {
        let tt = lat.truth_table(vars).map_err(|e| e.to_string())?;
        print!("truth table (inputs ascending): ");
        for x in 0..(1u32 << vars) {
            print!("{}", if tt.eval(x) { '1' } else { '0' });
        }
        println!();
        let cover = lat.products().map_err(|e| e.to_string())?;
        println!("products: {cover}");
    }
    Ok(())
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let kind = match args.first().map(String::as_str) {
        Some("square") => DeviceKind::Square,
        Some("cross") => DeviceKind::Cross,
        Some("junctionless") => DeviceKind::Junctionless,
        _ => return Err("expected device: square|cross|junctionless".into()),
    };
    let diel = match args.get(1).map(String::as_str) {
        Some("sio2") => Dielectric::SiO2,
        Some("hfo2") => Dielectric::HfO2,
        _ => return Err("expected dielectric: sio2|hfo2".into()),
    };
    let dev = Device::new(kind, diel);
    let r = characterize(&dev);
    println!("device        : {} / {}", kind.name(), diel.name());
    println!("Vth           : {:.4} V", r.vth);
    println!("Ion (5V/5V)   : {:.4e} A", r.ion);
    println!("Ioff          : {:.4e} A", r.ioff);
    println!("on/off ratio  : {:.3e}", r.on_off_ratio);
    println!("subthr. swing : {:.1} mV/dec", r.swing_mv_per_dec);
    Ok(())
}

fn cmd_xor3() -> Result<(), String> {
    let model = SwitchCircuitModel::square_hfo2().map_err(|e| e.to_string())?;
    let report = Xor3Experiment::quick()
        .run(&model)
        .map_err(|e| e.to_string())?;
    println!("functional: {}", report.functional);
    println!("V_OL = {:.3} V, V_OH = {:.3} V", report.v_ol, report.v_oh);
    if let (Some(r), Some(f)) = (report.rise_s, report.fall_s) {
        println!("rise = {:.2} ns, fall = {:.2} ns", r * 1e9, f * 1e9);
    }
    Ok(())
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    let f = named_function(args.first().ok_or("missing <function>")?)?;
    if f.vars() > 3 {
        return Err("explore is limited to 3-input functions (transient measurement cost)".into());
    }
    let model = SwitchCircuitModel::square_hfo2().map_err(|e| e.to_string())?;
    let opts = ExploreOptions {
        phase: 40e-9,
        dt: 2e-9,
        ..Default::default()
    };
    let ex = explore(&f, &model, &opts).map_err(|e| e.to_string())?;
    println!(
        "{:<13} {:>7} {:>12} {:>14} {:>14}",
        "source", "area", "delay [ns]", "static [W]", "energy [J]"
    );
    for (i, c) in ex.candidates.iter().enumerate() {
        let star = if ex.pareto.contains(&i) { "*" } else { " " };
        println!(
            "{star}{:<12} {:>7} {:>12.2} {:>14.3e} {:>14.3e}",
            c.source,
            c.lattice.site_count(),
            c.metrics.worst_delay.map(|d| d * 1e9).unwrap_or(f64::NAN),
            c.metrics.static_power_worst,
            c.metrics.transient_energy
        );
    }
    println!("(* = Pareto-optimal in area / delay / static power)");
    Ok(())
}

/// Writes (or prints) a batch report and turns any non-successful job
/// into a non-zero exit — shared by `fts run` and `fts batch`.
fn emit_report(report: &str, out_path: Option<&str>) -> Result<(), String> {
    match out_path {
        Some(p) => {
            std::fs::write(p, report).map_err(|e| format!("{p}: {e}"))?;
            println!("wrote {p}");
        }
        None => println!("{report}"),
    }
    let doc = batch::Json::parse(report).expect("report is well-formed");
    let jobs = doc.get("jobs").and_then(batch::Json::as_f64).unwrap_or(0.0);
    let ok = doc
        .get("succeeded")
        .and_then(batch::Json::as_f64)
        .unwrap_or(0.0);
    if ok < jobs {
        return Err(format!("{} of {jobs} jobs did not succeed", jobs - ok));
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    use four_terminal_lattice::engine::Engine;
    use four_terminal_lattice::netlist::{self, ElabOptions, FsIncludes};

    let path = args.first().ok_or("missing <deck.cir|->")?;
    let mut out_path: Option<&str> = None;
    let mut threads = 0usize;
    let mut waveform = false;
    let mut trace = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--out" => out_path = Some(rest.next().ok_or("--out needs a path")?),
            "--threads" => {
                threads = rest
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "bad --threads value")?;
            }
            "--waveform" => waveform = true,
            "--trace" => trace = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    // Local decks may `.include` siblings (relative to the deck's own
    // directory); stdin decks have no directory, so includes resolve
    // against the working directory.
    let (text, base) = if path.as_str() == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        (buf, std::path::PathBuf::from("."))
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let base = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map_or_else(
                || std::path::PathBuf::from("."),
                std::path::Path::to_path_buf,
            );
        (text, base)
    };

    let deck = netlist::parse_with_includes(&text, &mut FsIncludes::new(base))
        .map_err(|e| format!("{path}: {e}"))?;
    let elab =
        netlist::elaborate(&deck, &ElabOptions::default()).map_err(|e| format!("{path}: {e}"))?;
    let out = elab.out;

    let mut engine = Engine::new();
    if threads > 0 {
        engine = engine.threads(threads);
    }
    let threads_used = engine.thread_count();
    // `--trace` attaches a flight recorder per job; the handle clones
    // stay here so the report can embed each journal after the run.
    let mut jobs = elab.jobs;
    let traces: Vec<Option<fts_telemetry::trace::JobTrace>> = jobs
        .iter_mut()
        .map(|job| {
            trace.then(|| {
                let t =
                    fts_telemetry::trace::JobTrace::new(fts_telemetry::trace::DEFAULT_EVENT_CAP);
                job.trace = Some(t.clone());
                t
            })
        })
        .collect();
    let report = engine.run(jobs);
    let rows: Vec<String> = report
        .outcomes
        .iter()
        .zip(&report.stats)
        .zip(&traces)
        .map(|((outcome, stat), trace)| {
            let snap = trace.as_ref().map(fts_telemetry::trace::JobTrace::snapshot);
            batch::job_row_json_traced(&stat.label, outcome, stat, out, waveform, snap.as_ref())
        })
        .collect();
    let doc = batch::batch_report_json(&rows, report.succeeded(), threads_used, report.wall_s);
    emit_report(&doc, out_path)
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing <manifest.json>")?;
    let mut out_path: Option<&str> = None;
    let mut trace = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--out" => out_path = Some(rest.next().ok_or("--out needs a path")?),
            "--trace" => trace = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let manifest = batch::BatchManifest::parse(&text).map_err(|e| e.to_string())?;
    let trace_events = if trace {
        fts_telemetry::trace::DEFAULT_EVENT_CAP
    } else {
        0
    };
    let report = batch::run_manifest_traced(&manifest, trace_events).map_err(|e| e.to_string())?;
    emit_report(&report, out_path)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use four_terminal_lattice::batch::PipelineJobBuilder;
    use four_terminal_lattice::server::{Coordinator, CoordinatorConfig, Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let mut config = ServerConfig::default();
    let mut coord = CoordinatorConfig::default();
    let mut coordinator = false;
    let mut worker = false;
    let mut retain_done_warned = false;
    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        let value = |rest: &mut std::slice::Iter<String>| -> Result<String, String> {
            rest.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => {
                config.addr = value(&mut rest)?;
                coord.addr.clone_from(&config.addr);
            }
            "--workers" => {
                config.workers = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --workers value")?;
            }
            "--queue-depth" => {
                config.queue_depth = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --queue-depth value")?;
            }
            "--cache-entries" => {
                config.cache_entries = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --cache-entries value")?;
                coord.cache_entries = config.cache_entries;
            }
            "--cache-bytes" => {
                config.cache_bytes = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --cache-bytes value")?;
                coord.cache_bytes = config.cache_bytes;
            }
            // Deprecated alias: the retained-done bound and the result
            // cache's entry bound are one knob since PR 10.
            "--retain-done" => {
                if !retain_done_warned {
                    retain_done_warned = true;
                    eprintln!(
                        "warning: --retain-done is deprecated; use --cache-entries \
                         (and --cache-bytes) instead"
                    );
                }
                config.cache_entries = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --retain-done value")?;
                coord.cache_entries = config.cache_entries;
            }
            "--trace-events" => {
                config.trace_events = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --trace-events value")?;
            }
            // Role markers. `--worker` only documents intent (a worker
            // is a plain server someone points a coordinator at);
            // `--coordinator` switches to the routing front end.
            "--worker" => worker = true,
            "--coordinator" => coordinator = true,
            "--workers-addrs" => {
                coord.workers = value(&mut rest)?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--probe-ms" => {
                let ms: u64 = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --probe-ms value")?;
                if ms == 0 {
                    return Err("--probe-ms must be at least 1".into());
                }
                coord.probe_interval = Duration::from_millis(ms);
            }
            "--route-attempts" => {
                coord.route_attempts = value(&mut rest)?
                    .parse()
                    .map_err(|_| "bad --route-attempts value")?;
            }
            "--no-cascade" => coord.cascade = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if coordinator && worker {
        return Err("--coordinator and --worker are mutually exclusive".into());
    }

    if coordinator {
        let coordinator = Coordinator::bind(coord, Arc::new(PipelineJobBuilder::new()))
            .map_err(|e| e.to_string())?;
        let addr = coordinator.local_addr().map_err(|e| e.to_string())?;
        // Machine-greppable startup line: tests and CI scrape the port.
        println!("fts-coordinator listening on {addr}");
        let report = coordinator.run().map_err(|e| e.to_string())?;
        eprintln!(
            "fts-coordinator drained: {} jobs completed, {} submissions rejected, {} connections rejected, uptime {:.1}s",
            report.jobs_completed,
            report.submissions_rejected,
            report.connections_rejected,
            report.uptime_s
        );
        eprintln!("{}", report.telemetry);
        return Ok(());
    }

    let server =
        Server::bind(config, Arc::new(PipelineJobBuilder::new())).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Machine-greppable startup line: tests and CI scrape the port.
    println!("fts-server listening on {addr}");
    let report = server.run().map_err(|e| e.to_string())?;
    eprintln!(
        "fts-server drained: {} jobs completed, {} submissions rejected, {} connections rejected, uptime {:.1}s",
        report.jobs_completed,
        report.submissions_rejected,
        report.connections_rejected,
        report.uptime_s
    );
    eprintln!("{}", report.telemetry);
    Ok(())
}

/// `fts client` — the [`WireClient`] behind a shell-scriptable face.
/// Prints the raw response body to stdout; a non-2xx answer still
/// prints the error envelope (to stderr) but exits 1, so CI can pipe
/// bodies straight into `jq` and trust the exit code.
fn cmd_client(args: &[String]) -> Result<(), String> {
    use four_terminal_lattice::server::{ClientError, WireClient};

    let addr = args.first().ok_or("missing <ip:port>")?;
    let verb = args.get(1).ok_or("missing client command")?;
    let rest = &args[2..];
    let client = WireClient::new(addr.clone());

    let id_arg = || -> Result<u64, String> {
        rest.first()
            .ok_or("missing <id>")?
            .parse::<u64>()
            .map_err(|_| "bad <id>".into())
    };
    let no_flags = |from: usize| -> Result<(), String> {
        match rest.get(from) {
            Some(extra) => Err(format!("unexpected argument {extra:?}")),
            None => Ok(()),
        }
    };

    let (method, path, body): (&str, String, Option<String>) = match verb.as_str() {
        "health" => {
            no_flags(0)?;
            ("GET", "/healthz".into(), None)
        }
        "metrics" => {
            no_flags(0)?;
            ("GET", "/metrics".into(), None)
        }
        "shutdown" => {
            no_flags(0)?;
            ("POST", "/v1/shutdown".into(), None)
        }
        "submit" => {
            let mpath = rest.first().ok_or("missing <manifest.json|->")?;
            no_flags(1)?;
            let text = if mpath == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| e.to_string())?;
                buf
            } else {
                std::fs::read_to_string(mpath).map_err(|e| format!("{mpath}: {e}"))?
            };
            ("POST", "/v1/jobs".into(), Some(text))
        }
        "status" | "wait" => {
            let id = id_arg()?;
            no_flags(1)?;
            ("GET", format!("/v1/jobs/{id}"), None)
        }
        "cancel" => {
            let id = id_arg()?;
            no_flags(1)?;
            ("DELETE", format!("/v1/jobs/{id}"), None)
        }
        "cache" => {
            no_flags(0)?;
            ("GET", "/v1/cache".into(), None)
        }
        "cache-flush" => {
            no_flags(0)?;
            ("DELETE", "/v1/cache".into(), None)
        }
        "trace" => {
            let id = id_arg()?;
            let chrome = match rest.get(1).map(String::as_str) {
                None => false,
                Some("--chrome") => {
                    no_flags(2)?;
                    true
                }
                Some(other) => return Err(format!("unknown flag {other:?}")),
            };
            let query = if chrome { "?format=chrome" } else { "" };
            ("GET", format!("/v1/jobs/{id}/trace{query}"), None)
        }
        "list" => {
            let mut query = Vec::new();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{flag} needs a value"))?
                    .clone();
                match flag.as_str() {
                    "--state" => query.push(format!("state={value}")),
                    "--cursor" => query.push(format!("cursor={value}")),
                    "--limit" => query.push(format!("limit={value}")),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let query = if query.is_empty() {
                String::new()
            } else {
                format!("?{}", query.join("&"))
            };
            ("GET", format!("/v1/jobs{query}"), None)
        }
        other => return Err(format!("unknown client command {other:?}")),
    };

    loop {
        let response = client.call(method, &path, body.as_deref()).map_err(|e| {
            // Transport errors have no body to print; surface them
            // through the usual error path.
            match e {
                ClientError::Io(io) => format!("{addr}: {io}"),
                other => other.to_string(),
            }
        })?;
        if response.status >= 300 {
            eprintln!("{}", response.body);
            std::process::exit(1);
        }
        if verb == "wait" && !response.body.contains("\"status\":\"done\"") {
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        }
        println!("{}", response.body);
        return Ok(());
    }
}
