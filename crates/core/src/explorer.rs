//! The automated design tool of the paper's §VI-A: "with given area,
//! power, delay, and energy specifications, the tool would come up with
//! optimized solutions."
//!
//! [`explore`] generates candidate lattice realizations of a function
//! (dual construction, column construction, annealed sizes), measures each
//! candidate's circuit (area, worst static power, worst delay, transient
//! energy), computes the Pareto front, and [`Exploration::recommend`]s the
//! smallest candidate meeting a [`DesignSpec`].

use fts_circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use fts_circuit::metrics::{measure_lattice_circuit, CircuitMetrics};
use fts_circuit::model::SwitchCircuitModel;
use fts_lattice::Lattice;
use fts_logic::TruthTable;
use fts_synth::search::{anneal, AnnealOptions};
use fts_synth::{column, dual};

use crate::pipeline::PipelineError;

/// Constraints for [`Exploration::recommend`]. `None` disables a bound.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DesignSpec {
    /// Maximum switch count.
    pub max_area: Option<usize>,
    /// Maximum worst-case propagation delay \[s\].
    pub max_delay_s: Option<f64>,
    /// Maximum worst-case static power \[W\].
    pub max_static_power_w: Option<f64>,
    /// Maximum stimulus-walk energy \[J\].
    pub max_energy_j: Option<f64>,
}

/// Effort and measurement controls for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Per-input-phase dwell time for the measurement transient \[s\].
    pub phase: f64,
    /// Transient step \[s\].
    pub dt: f64,
    /// Electrical bench.
    pub bench: BenchConfig,
    /// Annealing budget per candidate size (`None` disables the search
    /// engine and keeps only the constructive candidates).
    pub anneal: Option<AnnealOptions>,
    /// Smallest annealed area to try, as a fraction of the best
    /// constructive area (e.g. 0.5 tries down to half the size).
    pub anneal_shrink: f64,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            phase: 60.0e-9,
            dt: 0.5e-9,
            bench: BenchConfig::default(),
            anneal: Some(AnnealOptions {
                restarts: 10,
                iterations: 15_000,
                ..Default::default()
            }),
            anneal_shrink: 0.5,
        }
    }
}

/// One evaluated realization.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// How the lattice was obtained.
    pub source: &'static str,
    /// The verified lattice.
    pub lattice: Lattice,
    /// Measured circuit figures of merit.
    pub metrics: CircuitMetrics,
}

impl Candidate {
    /// True when this candidate meets every bound of `spec`.
    pub fn meets(&self, spec: &DesignSpec) -> bool {
        if let Some(a) = spec.max_area {
            if self.lattice.site_count() > a {
                return false;
            }
        }
        if let Some(d) = spec.max_delay_s {
            match self.metrics.worst_delay {
                Some(delay) if delay <= d => {}
                _ => return false,
            }
        }
        if let Some(p) = spec.max_static_power_w {
            if self.metrics.static_power_worst > p {
                return false;
            }
        }
        if let Some(e) = spec.max_energy_j {
            if self.metrics.transient_energy > e {
                return false;
            }
        }
        true
    }
}

/// The result of a design-space sweep.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// All evaluated candidates.
    pub candidates: Vec<Candidate>,
    /// Indices (into `candidates`) of the area/delay/static-power Pareto
    /// front.
    pub pareto: Vec<usize>,
}

impl Exploration {
    /// The smallest-area candidate satisfying `spec`, breaking ties by
    /// delay. `None` when nothing qualifies.
    pub fn recommend(&self, spec: &DesignSpec) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.meets(spec))
            .min_by(|a, b| {
                a.lattice
                    .site_count()
                    .cmp(&b.lattice.site_count())
                    .then_with(|| {
                        let da = a.metrics.worst_delay.unwrap_or(f64::INFINITY);
                        let db = b.metrics.worst_delay.unwrap_or(f64::INFINITY);
                        da.total_cmp(&db)
                    })
            })
    }
}

/// Sweeps realizations of `f` and measures each one.
///
/// # Errors
///
/// Propagates synthesis and simulation failures from the candidates that
/// should always succeed (the dual construction); candidates from
/// optional engines are skipped on failure.
pub fn explore(
    f: &TruthTable,
    model: &SwitchCircuitModel,
    opts: &ExploreOptions,
) -> Result<Exploration, PipelineError> {
    let mut lattices: Vec<(&'static str, Lattice)> = Vec::new();

    let ar = dual::altun_riedel(f)?;
    let best_constructive = ar.site_count();
    lattices.push(("altun-riedel", ar));
    if let Ok(Some(col)) = column::column_construction(f) {
        lattices.push(("column", col));
    }

    if let Some(anneal_opts) = &opts.anneal {
        // Try annealed candidates at shrinking areas below the best
        // constructive size.
        let floor = ((best_constructive as f64) * opts.anneal_shrink).ceil() as usize;
        let mut dims: Vec<(usize, usize)> = Vec::new();
        for rows in 1..=best_constructive {
            for cols in rows..=best_constructive {
                let area = rows * cols;
                if area < best_constructive && area >= floor.max(1) {
                    dims.push((rows, cols));
                }
            }
        }
        dims.sort_by_key(|&(r, c)| r * c);
        for (rows, cols) in dims.into_iter().take(6) {
            if let Some(lat) = anneal(f, rows, cols, anneal_opts) {
                lattices.push(("annealed", lat));
                break; // smallest annealed hit is enough
            }
        }
    }

    // Deduplicate by dimensions + literals.
    lattices.dedup_by(|a, b| a.1 == b.1);

    let mut candidates = Vec::with_capacity(lattices.len());
    for (source, lattice) in lattices {
        let circuit = LatticeCircuit::build(&lattice, f.vars(), model, opts.bench)?;
        let metrics = measure_lattice_circuit(&circuit, f.vars(), opts.phase, opts.dt)?;
        candidates.push(Candidate {
            source,
            lattice,
            metrics,
        });
    }

    let pareto = pareto_front(&candidates);
    Ok(Exploration { candidates, pareto })
}

/// Indices of the non-dominated candidates in (area, delay, static power).
fn pareto_front(candidates: &[Candidate]) -> Vec<usize> {
    let key = |c: &Candidate| -> (f64, f64, f64) {
        (
            c.lattice.site_count() as f64,
            c.metrics.worst_delay.unwrap_or(f64::INFINITY),
            c.metrics.static_power_worst,
        )
    };
    let dominates = |a: (f64, f64, f64), b: (f64, f64, f64)| -> bool {
        a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
    };
    (0..candidates.len())
        .filter(|&i| {
            let ki = key(&candidates[i]);
            !(0..candidates.len()).any(|j| j != i && dominates(key(&candidates[j]), ki))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    fn fast_opts() -> ExploreOptions {
        ExploreOptions {
            phase: 40.0e-9,
            dt: 2.0e-9,
            anneal: Some(AnnealOptions {
                restarts: 4,
                iterations: 8_000,
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    #[test]
    fn explore_xor2_produces_verified_candidates() {
        let f = generators::xor(2);
        let model = SwitchCircuitModel::square_hfo2().unwrap();
        let ex = explore(&f, &model, &fast_opts()).unwrap();
        assert!(!ex.candidates.is_empty());
        for c in &ex.candidates {
            assert_eq!(c.lattice.truth_table(2).unwrap(), f, "{}", c.source);
            assert!(c.metrics.static_power_worst > 0.0);
        }
        assert!(!ex.pareto.is_empty());
    }

    #[test]
    fn pareto_front_is_non_dominated() {
        let f = generators::xor(2);
        let model = SwitchCircuitModel::square_hfo2().unwrap();
        let ex = explore(&f, &model, &fast_opts()).unwrap();
        for &i in &ex.pareto {
            for (j, other) in ex.candidates.iter().enumerate() {
                if j == i {
                    continue;
                }
                let a = &ex.candidates[i];
                let strictly_worse = other.lattice.site_count() <= a.lattice.site_count()
                    && other.metrics.static_power_worst <= a.metrics.static_power_worst
                    && other.metrics.worst_delay.unwrap_or(f64::INFINITY)
                        <= a.metrics.worst_delay.unwrap_or(f64::INFINITY)
                    && (other.lattice.site_count() < a.lattice.site_count()
                        || other.metrics.static_power_worst < a.metrics.static_power_worst
                        || other.metrics.worst_delay.unwrap_or(f64::INFINITY)
                            < a.metrics.worst_delay.unwrap_or(f64::INFINITY));
                assert!(!strictly_worse, "pareto member {i} dominated by {j}");
            }
        }
    }

    #[test]
    fn recommend_respects_area_bound() {
        let f = generators::and(2);
        let model = SwitchCircuitModel::square_hfo2().unwrap();
        let mut opts = fast_opts();
        opts.anneal = None;
        let ex = explore(&f, &model, &opts).unwrap();
        let spec = DesignSpec {
            max_area: Some(2),
            ..Default::default()
        };
        let rec = ex.recommend(&spec).expect("AND2 fits in two switches");
        assert!(rec.lattice.site_count() <= 2);
        // Impossible spec yields nothing.
        let none = ex.recommend(&DesignSpec {
            max_area: Some(1),
            ..Default::default()
        });
        assert!(none.is_none());
    }
}
