//! The paper's end-to-end flow as one composable object: technology
//! characterization → model extraction → lattice synthesis → circuit
//! verification.

use std::error::Error;
use std::fmt;

use fts_circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_circuit::CircuitError;
use fts_device::{DeviceKind, Dielectric};
use fts_lattice::Lattice;
use fts_logic::TruthTable;
use fts_montecarlo::{McError, MonteCarlo, YieldReport};
use fts_synth::SynthError;

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Synthesis failed.
    Synth(SynthError),
    /// Circuit construction or simulation failed.
    Circuit(CircuitError),
    /// Monte Carlo yield analysis failed.
    MonteCarlo(McError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Synth(e) => write!(f, "synthesis: {e}"),
            PipelineError::Circuit(e) => write!(f, "circuit: {e}"),
            PipelineError::MonteCarlo(e) => write!(f, "monte carlo: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Synth(e) => Some(e),
            PipelineError::Circuit(e) => Some(e),
            PipelineError::MonteCarlo(e) => Some(e),
        }
    }
}

impl From<SynthError> for PipelineError {
    fn from(e: SynthError) -> Self {
        PipelineError::Synth(e)
    }
}

impl From<CircuitError> for PipelineError {
    fn from(e: CircuitError) -> Self {
        PipelineError::Circuit(e)
    }
}

impl From<McError> for PipelineError {
    fn from(e: McError) -> Self {
        PipelineError::MonteCarlo(e)
    }
}

/// The configured flow: which device technology backs the switches and
/// how the test bench is wired.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Device structure used for the switches.
    pub kind: DeviceKind,
    /// Gate dielectric.
    pub dielectric: Dielectric,
    /// Electrical bench configuration.
    pub bench: BenchConfig,
    /// Skip DC verification of the built circuit (for large functions).
    pub skip_verification: bool,
}

impl Pipeline {
    /// The paper's standard flow: square-gate HfO2 device, 1.2 V bench.
    pub fn standard() -> Pipeline {
        Pipeline {
            kind: DeviceKind::Square,
            dielectric: Dielectric::HfO2,
            bench: BenchConfig::default(),
            skip_verification: false,
        }
    }

    /// Realizes a Boolean function as a verified lattice circuit:
    /// synthesizes a lattice, characterizes the device, extracts the
    /// six-MOSFET model, builds the §V bench, and (unless disabled)
    /// verifies by DC analysis that the circuit computes `NOT f` on every
    /// input assignment.
    ///
    /// # Errors
    ///
    /// Propagates synthesis, extraction, and simulation failures.
    pub fn realize(&self, f: &TruthTable) -> Result<PipelineRun, PipelineError> {
        let _span = fts_telemetry::span("pipeline.realize");
        let synthesis = {
            let _stage = fts_telemetry::span("pipeline.synthesize");
            fts_synth::synthesize(f)?
        };
        self.realize_lattice(f, synthesis.lattice)
    }

    /// Like [`Pipeline::realize`] but with a caller-provided lattice
    /// (e.g. a minimal one found by annealing).
    ///
    /// # Errors
    ///
    /// Propagates extraction and simulation failures.
    pub fn realize_lattice(
        &self,
        f: &TruthTable,
        lattice: Lattice,
    ) -> Result<PipelineRun, PipelineError> {
        let model = {
            let _stage = fts_telemetry::span("pipeline.extract_model");
            SwitchCircuitModel::from_device(self.kind, self.dielectric)?
        };
        let circuit = {
            let _stage = fts_telemetry::span("pipeline.build_circuit");
            LatticeCircuit::build(&lattice, f.vars(), &model, self.bench)?
        };
        let verified = if self.skip_verification {
            false
        } else {
            let _stage = fts_telemetry::span("pipeline.verify");
            let tt = circuit.dc_truth_table()?;
            (0..f.len() as u32).all(|x| tt[x as usize] != f.eval(x))
        };
        Ok(PipelineRun {
            lattice,
            model,
            circuit,
            verified,
        })
    }
}

/// Everything the flow produced for one function.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The synthesized (or provided) lattice.
    pub lattice: Lattice,
    /// The extracted six-MOSFET switch model.
    pub model: SwitchCircuitModel,
    /// The built test-bench circuit.
    pub circuit: LatticeCircuit,
    /// True when DC verification confirmed the circuit computes `NOT f`.
    pub verified: bool,
}

impl PipelineRun {
    /// Switch count of the realization.
    pub fn area(&self) -> usize {
        self.lattice.site_count()
    }

    /// Runs a Monte Carlo yield analysis of this realization: the
    /// configured ensemble perturbs the extracted switch model and injects
    /// crosspoint defects around this run's lattice.
    ///
    /// # Errors
    ///
    /// Propagates ensemble configuration and nominal-path failures.
    ///
    /// # Example
    ///
    /// ```
    /// use four_terminal_lattice::logic::generators;
    /// use four_terminal_lattice::montecarlo::{EvalMode, MonteCarlo, VariationModel};
    /// use four_terminal_lattice::pipeline::Pipeline;
    ///
    /// let f = generators::and(2);
    /// let run = Pipeline::standard().realize(&f)?;
    /// let mc = MonteCarlo::new(32, 7)
    ///     .variation(VariationModel::standard().with_defect_prob(0.02))
    ///     .eval(EvalMode::Logical);
    /// let report = run.yield_analysis(f.vars(), &mc)?;
    /// assert_eq!(report.evaluated + report.sim_failures, 32);
    /// # Ok::<(), four_terminal_lattice::pipeline::PipelineError>(())
    /// ```
    pub fn yield_analysis(
        &self,
        vars: usize,
        mc: &MonteCarlo,
    ) -> Result<YieldReport, PipelineError> {
        let _span = fts_telemetry::span("pipeline.yield_analysis");
        Ok(mc.run(&self.lattice, vars, &self.model)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    #[test]
    fn standard_pipeline_realizes_and2() {
        let run = Pipeline::standard().realize(&generators::and(2)).unwrap();
        assert!(run.verified);
        assert_eq!(run.area(), 2);
    }

    #[test]
    fn pipeline_with_custom_lattice() {
        let f = generators::xor(3);
        let lat = fts_circuit::experiments::xor3_lattice();
        let run = Pipeline::standard().realize_lattice(&f, lat).unwrap();
        assert!(run.verified);
        assert_eq!(run.area(), 9);
    }

    #[test]
    fn pipeline_run_feeds_yield_analysis() {
        use fts_montecarlo::{EvalMode, VariationModel};

        let f = generators::and(2);
        let run = Pipeline::standard().realize(&f).unwrap();
        let mc = MonteCarlo::new(16, 3)
            .variation(VariationModel::none())
            .eval(EvalMode::Dc);
        let report = run.yield_analysis(f.vars(), &mc).unwrap();
        assert_eq!(
            report.functional_yield(),
            1.0,
            "nominal ensemble all passes"
        );
        assert!(report.v_ol.mean > 0.0 && report.v_ol.mean < 0.45);
    }

    #[test]
    fn verification_can_be_skipped() {
        let mut p = Pipeline::standard();
        p.skip_verification = true;
        let run = p.realize(&generators::or(2)).unwrap();
        assert!(!run.verified);
    }
}
