//! `fts batch` — manifest-driven batch simulation on the `fts-engine`
//! scheduler.
//!
//! A manifest is a small JSON document naming the jobs to run:
//!
//! ```json
//! {
//!   "threads": 2,
//!   "jobs": [
//!     { "function": "xor3", "analysis": "op", "input": 5 },
//!     { "function": "maj3", "analysis": "transient",
//!       "phase_ns": 4.0, "dt_ns": 0.1,
//!       "deadline_ms": 60000, "retry": "ladder", "label": "maj3-walk" }
//!   ]
//! }
//! ```
//!
//! Each job synthesizes the named function, builds the §V bench circuit,
//! and submits one [`SimJob`]: `"op"` solves the DC operating point for a
//! packed `input` assignment; `"transient"` drives the full
//! 2ⁿ-combination input walk (one `phase_ns` phase per combination) and
//! records the output waveform. The whole batch runs through
//! [`Engine::run`], so deadlines, the retry ladder, and deterministic
//! submission-ordered results all apply. The report is written as JSON.
//!
//! The parser below is deliberately minimal — the toolkit takes no
//! third-party dependencies, and manifests plus reports are the only JSON
//! this workspace reads.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

use fts_circuit::lattice_netlist::pwl_from_bits;
use fts_engine::{Engine, RetryPolicy, SimJob, SimOutcome};
use fts_spice::analysis::TranConfig;
use fts_spice::{NodeId, Waveform};

use crate::pipeline::Pipeline;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` (manifest quantities are small
/// counts and physical values, well inside exact-integer range).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing content is an error).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for manifests.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; find the
                    // char boundary from the source string.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One job description from the manifest.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Named Boolean function (`xor3`, `maj3`, … — same set as `fts synth`).
    pub function: String,
    /// Analysis to run.
    pub analysis: AnalysisSpec,
    /// Per-job wall-clock budget in milliseconds.
    pub deadline_ms: Option<f64>,
    /// `"full"` (single homotopy-assisted attempt, default) or `"ladder"`
    /// (cheap-to-expensive retry ladder).
    pub ladder: bool,
    /// Report label; defaults to `<function>-<index>`.
    pub label: Option<String>,
}

/// The analysis half of a [`JobSpec`].
#[derive(Debug, Clone)]
pub enum AnalysisSpec {
    /// DC operating point for a packed input assignment.
    Op {
        /// Packed input bits (bit `v` drives variable `v`).
        input: u32,
    },
    /// Transient over the full 2ⁿ input walk.
    Transient {
        /// Seconds per input combination, in nanoseconds.
        phase_ns: f64,
        /// Fixed timestep, in nanoseconds.
        dt_ns: f64,
    },
}

/// A parsed batch manifest.
#[derive(Debug, Clone)]
pub struct BatchManifest {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

impl BatchManifest {
    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Malformed JSON, unknown `analysis` kinds, or missing `function` /
    /// `jobs` members.
    pub fn parse(text: &str) -> Result<BatchManifest, String> {
        let doc = Json::parse(text)?;
        let threads = doc.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let jobs_json = doc
            .get("jobs")
            .and_then(Json::as_array)
            .ok_or("manifest needs a \"jobs\" array")?;
        let mut jobs = Vec::with_capacity(jobs_json.len());
        for (k, j) in jobs_json.iter().enumerate() {
            let function = j
                .get("function")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("job {k}: missing \"function\""))?
                .to_owned();
            let analysis = match j.get("analysis").and_then(Json::as_str).unwrap_or("op") {
                "op" => AnalysisSpec::Op {
                    input: j.get("input").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                },
                "transient" => AnalysisSpec::Transient {
                    phase_ns: j.get("phase_ns").and_then(Json::as_f64).unwrap_or(6.0),
                    dt_ns: j.get("dt_ns").and_then(Json::as_f64).unwrap_or(0.1),
                },
                other => return Err(format!("job {k}: unknown analysis {other:?}")),
            };
            let ladder = match j.get("retry").and_then(Json::as_str).unwrap_or("full") {
                "full" => false,
                "ladder" => true,
                other => return Err(format!("job {k}: unknown retry policy {other:?}")),
            };
            jobs.push(JobSpec {
                function,
                analysis,
                deadline_ms: j.get("deadline_ms").and_then(Json::as_f64),
                ladder,
                label: j.get("label").and_then(Json::as_str).map(str::to_owned),
            });
        }
        Ok(BatchManifest { threads, jobs })
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// What the runner remembers about a submitted job in order to interpret
/// its outcome.
struct Submitted {
    label: String,
    out: NodeId,
}

/// Runs a parsed manifest and renders the JSON report.
///
/// # Errors
///
/// Unknown function names and circuit-construction failures abort the
/// whole batch; *simulation* failures do not — they are reported per job.
pub fn run_manifest(manifest: &BatchManifest) -> Result<String, String> {
    let pipeline = Pipeline {
        skip_verification: true,
        ..Pipeline::standard()
    };
    // One realization per distinct function; manifests often repeat one
    // function across analyses and deadline settings.
    let mut realized: HashMap<String, (crate::pipeline::PipelineRun, usize)> = HashMap::new();
    let mut jobs = Vec::with_capacity(manifest.jobs.len());
    let mut submitted = Vec::with_capacity(manifest.jobs.len());
    for (k, spec) in manifest.jobs.iter().enumerate() {
        let (run, vars) = match realized.entry(spec.function.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let f = crate::named_function(&spec.function)?;
                let vars = f.vars();
                e.insert((pipeline.realize(&f).map_err(|e| e.to_string())?, vars))
            }
        };
        let (run, vars) = (&*run, *vars);
        let label = spec
            .label
            .clone()
            .unwrap_or_else(|| format!("{}-{k}", spec.function));
        let vdd = run.circuit.config().vdd;
        let mut ckt = run.circuit.clone();
        let job = match spec.analysis {
            AnalysisSpec::Op { input } => {
                for v in 0..vars {
                    let bit = (input >> v) & 1 == 1;
                    ckt.set_stimulus(
                        v,
                        Waveform::Dc(if bit { vdd } else { 0.0 }),
                        Waveform::Dc(if bit { 0.0 } else { vdd }),
                    )
                    .map_err(|e| format!("job {k}: {e}"))?;
                }
                SimJob::op(ckt.netlist().clone())
            }
            AnalysisSpec::Transient { phase_ns, dt_ns } => {
                let phase = phase_ns * 1e-9;
                let combos = 1u32 << vars;
                for v in 0..vars {
                    let bits: Vec<bool> = (0..combos).map(|x| (x >> v) & 1 == 1).collect();
                    let (p, n) = pwl_from_bits(&bits, phase, 1e-9, vdd);
                    ckt.set_stimulus(v, p, n)
                        .map_err(|e| format!("job {k}: {e}"))?;
                }
                SimJob::transient(
                    ckt.netlist().clone(),
                    TranConfig::fixed(dt_ns * 1e-9, phase * combos as f64),
                )
                .probes(&[ckt.out()])
            }
        };
        let mut job = job.label(&label);
        if spec.ladder {
            job = job.retry(RetryPolicy::ladder());
        }
        if let Some(ms) = spec.deadline_ms {
            job = job.deadline(Duration::from_secs_f64(ms / 1000.0));
        }
        submitted.push(Submitted {
            label,
            out: ckt.out(),
        });
        jobs.push(job);
    }

    let mut engine = Engine::new();
    if manifest.threads > 0 {
        engine = engine.threads(manifest.threads);
    }
    let threads = engine.thread_count();
    let report = engine.run(jobs);

    let mut rows = String::new();
    for ((meta, outcome), stat) in submitted.iter().zip(&report.outcomes).zip(&report.stats) {
        if !rows.is_empty() {
            rows.push(',');
        }
        let detail = match outcome {
            SimOutcome::Op(op) => format!(",\"out_v\":{}", op.voltage(meta.out)),
            SimOutcome::Transient(w) => {
                let v = w.voltage(meta.out).unwrap_or_default();
                let peak = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                format!(
                    ",\"samples\":{},\"stride\":{},\"out_peak_v\":{peak}",
                    w.len(),
                    w.stride()
                )
            }
            SimOutcome::Failed { error, .. } => {
                format!(",\"error\":\"{}\"", json_escape(&error.to_string()))
            }
            _ => String::new(),
        };
        let _ = write!(
            rows,
            "{{\"label\":\"{}\",\"kind\":\"{}\",\"wall_s\":{},\"attempts\":{}{detail}}}",
            json_escape(&meta.label),
            outcome.kind(),
            stat.wall_s,
            stat.attempts,
        );
    }
    let succeeded = report.succeeded();
    Ok(format!(
        concat!(
            "{{\"schema\":\"fts-batch-report/1\",\"jobs\":{},\"succeeded\":{},",
            "\"threads\":{},\"wall_s\":{},\"outcomes\":[{}]}}"
        ),
        report.outcomes.len(),
        succeeded,
        threads,
        report.wall_s,
        rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let doc =
            Json::parse(r#"{"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.5));
        let b = doc.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\n\"y\""));
        let d = doc.get("c").and_then(|c| c.get("d")).unwrap();
        assert_eq!(d.as_f64(), Some(-2000.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn manifest_defaults_and_options() {
        let m = BatchManifest::parse(
            r#"{"threads": 3, "jobs": [
                {"function": "and2"},
                {"function": "xor3", "analysis": "transient", "phase_ns": 2.0,
                 "deadline_ms": 250, "retry": "ladder", "label": "walk"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(m.threads, 3);
        assert_eq!(m.jobs.len(), 2);
        assert!(matches!(m.jobs[0].analysis, AnalysisSpec::Op { input: 0 }));
        assert!(!m.jobs[0].ladder);
        match m.jobs[1].analysis {
            AnalysisSpec::Transient { phase_ns, dt_ns } => {
                assert_eq!(phase_ns, 2.0);
                assert_eq!(dt_ns, 0.1);
            }
            ref other => panic!("expected transient, got {other:?}"),
        }
        assert!(m.jobs[1].ladder);
        assert_eq!(m.jobs[1].deadline_ms, Some(250.0));
        assert_eq!(m.jobs[1].label.as_deref(), Some("walk"));
    }

    #[test]
    fn manifest_rejects_unknown_kinds() {
        assert!(
            BatchManifest::parse(r#"{"jobs": [{"function": "x", "analysis": "noise"}]}"#).is_err()
        );
        assert!(
            BatchManifest::parse(r#"{"jobs": [{"function": "x", "retry": "forever"}]}"#).is_err()
        );
        assert!(BatchManifest::parse(r#"{"jobs": [{}]}"#).is_err());
    }

    #[test]
    fn op_manifest_runs_and_reports() {
        let m = BatchManifest::parse(
            r#"{"threads": 1, "jobs": [
                {"function": "and2", "analysis": "op", "input": 3, "label": "and2-on"},
                {"function": "and2", "analysis": "op", "input": 0, "label": "and2-off"}
            ]}"#,
        )
        .unwrap();
        let report = run_manifest(&m).unwrap();
        let doc = Json::parse(&report).unwrap();
        assert_eq!(doc.get("jobs").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("succeeded").and_then(Json::as_f64), Some(2.0));
        let outcomes = doc.get("outcomes").and_then(Json::as_array).unwrap();
        // The bench inverts the lattice: both inputs high pulls the output
        // low, all-off floats it to VDD through the pull-up.
        let v_on = outcomes[0].get("out_v").and_then(Json::as_f64).unwrap();
        let v_off = outcomes[1].get("out_v").and_then(Json::as_f64).unwrap();
        assert!(v_on < 0.6, "AND(1,1) output should be low, got {v_on}");
        assert!(v_off > 0.6, "AND(0,0) output should be high, got {v_off}");
    }
}
