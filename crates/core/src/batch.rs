//! `fts batch` — manifest-driven batch simulation on the `fts-engine`
//! scheduler.
//!
//! The manifest and report formats live in the shared versioned wire
//! schema ([`fts_server::wire`], re-exported here): the CLI and the HTTP
//! server parse manifests and render results through the *same* code, so
//! the two transports cannot drift. This module contributes the part only
//! the synthesis side knows — [`PipelineJobBuilder`], which lowers a
//! manifest [`JobSpec`] with a [`JobSource::Function`] source (named
//! function + analysis) to a runnable [`SimJob`] by synthesizing the
//! lattice and building the §V bench circuit. Manifest jobs with a
//! `"deck"` source never reach the builder — `build_job` lowers them
//! through `fts-netlist` first. `fts batch` runs the whole manifest
//! through [`Engine::run`]; `fts serve` hands the identical builder to
//! the server's job queue.
//!
//! `"op"` solves the DC operating point for a packed `input` assignment;
//! `"transient"` drives the full 2ⁿ-combination input walk (one
//! `phase_ns` phase per combination) and records the output waveform
//! through the engine's decimating sink (`max_samples` caps retained
//! samples; `"waveform": true` embeds the decimated arrays in the
//! result).

use std::collections::HashMap;
use std::sync::Mutex;

use fts_circuit::lattice_netlist::pwl_from_bits;
use fts_engine::{cache_key, CacheMode, Engine, SimJob};
use fts_server::service::{build_job, BuiltJob, JobBuilder};
use fts_spice::analysis::TranConfig;
use fts_spice::Waveform;

use crate::pipeline::{Pipeline, PipelineRun};

pub use fts_server::wire::{
    batch_report_json, job_row_json, job_row_json_traced, json_escape, outcome_json,
    trace_object_json, AnalysisSpec, BatchManifest, JobSource, JobSpec, Json, WireError,
    MAX_SAMPLES_LIMIT, SCHEMA_VERSION,
};

/// Lowers manifest jobs through the synthesis pipeline, caching one
/// realization per distinct function name (manifests often repeat a
/// function across analyses and deadline settings, and the HTTP server
/// sees the same functions across many submissions).
pub struct PipelineJobBuilder {
    pipeline: Pipeline,
    realized: Mutex<HashMap<String, (PipelineRun, usize)>>,
}

impl PipelineJobBuilder {
    /// A builder over the standard pipeline (verification skipped — the
    /// simulation itself is the check batch users care about).
    pub fn new() -> PipelineJobBuilder {
        PipelineJobBuilder {
            pipeline: Pipeline {
                skip_verification: true,
                ..Pipeline::standard()
            },
            realized: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for PipelineJobBuilder {
    fn default() -> PipelineJobBuilder {
        PipelineJobBuilder::new()
    }
}

impl JobBuilder for PipelineJobBuilder {
    fn build(&self, spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError> {
        // Deck sources are lowered by `build_job` inside fts-server before
        // the builder is consulted; reaching here with one is a wiring
        // bug, not bad user input.
        let JobSource::Function { name, analysis } = &spec.source else {
            return Err(WireError::job(
                "internal_error",
                index,
                "deck jobs must be lowered by build_job",
            ));
        };

        // Realize (or reuse) the function's lattice and bench circuit.
        let (mut ckt, vars) = {
            let mut realized = self.realized.lock().expect("realization cache poisoned");
            let (run, vars) = match realized.entry(name.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let f = crate::named_function(name)
                        .map_err(|msg| WireError::job("unknown_function", index, msg))?;
                    let vars = f.vars();
                    let run = self
                        .pipeline
                        .realize(&f)
                        .map_err(|e| WireError::job("synthesis_failed", index, e.to_string()))?;
                    e.insert((run, vars))
                }
            };
            (run.circuit.clone(), *vars)
        };

        let vdd = ckt.config().vdd;
        let out = ckt.out();
        let job = match *analysis {
            AnalysisSpec::Op { input } => {
                for v in 0..vars {
                    let bit = (input >> v) & 1 == 1;
                    ckt.set_stimulus(
                        v,
                        Waveform::Dc(if bit { vdd } else { 0.0 }),
                        Waveform::Dc(if bit { 0.0 } else { vdd }),
                    )
                    .map_err(|e| WireError::job("stimulus_failed", index, e.to_string()))?;
                }
                SimJob::op(ckt.netlist().clone())
            }
            AnalysisSpec::Transient {
                phase_ns,
                dt_ns,
                max_samples,
            } => {
                let phase = phase_ns * 1e-9;
                let combos = 1u32 << vars;
                for v in 0..vars {
                    let bits: Vec<bool> = (0..combos).map(|x| (x >> v) & 1 == 1).collect();
                    let (p, n) = pwl_from_bits(&bits, phase, 1e-9, vdd);
                    ckt.set_stimulus(v, p, n)
                        .map_err(|e| WireError::job("stimulus_failed", index, e.to_string()))?;
                }
                SimJob::transient(
                    ckt.netlist().clone(),
                    TranConfig::fixed(dt_ns * 1e-9, phase * combos as f64),
                )
                .probes(&[out])
                .max_samples(max_samples)
            }
        };
        Ok(BuiltJob { job, out })
    }
}

/// Runs a parsed manifest and renders the JSON report (schema
/// `fts-batch-report/1`).
///
/// # Errors
///
/// Unknown function names and circuit-construction failures abort the
/// whole batch with a structured [`WireError`]; *simulation* failures do
/// not — they are reported per job.
pub fn run_manifest(manifest: &BatchManifest) -> Result<String, WireError> {
    run_manifest_traced(manifest, 0)
}

/// [`run_manifest`] with per-job flight recorders: when `trace_events`
/// is nonzero every job carries a bounded
/// [`JobTrace`](fts_telemetry::trace::JobTrace) ring of that capacity,
/// and each report row embeds its journal as a `"trace"` object
/// (`fts batch --trace` / `fts run --trace`).
///
/// # Errors
///
/// Same as [`run_manifest`].
pub fn run_manifest_traced(
    manifest: &BatchManifest,
    trace_events: usize,
) -> Result<String, WireError> {
    let builder = PipelineJobBuilder::new();
    let mut jobs = Vec::with_capacity(manifest.jobs.len());
    let mut meta = Vec::with_capacity(manifest.jobs.len());
    let mut traces = Vec::with_capacity(manifest.jobs.len());
    // In-manifest dedup by canonical content hash (PR 10): identical
    // default-mode jobs collapse onto one engine run, and duplicate rows
    // quote the shared outcome. Tracing disables dedup — every journal
    // must come from a run that actually happened; `"cache":"bypass"` or
    // `"refresh"` opt a job out per the wire schema's semantics.
    let mut run_of = Vec::with_capacity(manifest.jobs.len());
    let mut seen: HashMap<u128, usize> = HashMap::new();
    for (k, spec) in manifest.jobs.iter().enumerate() {
        let mut built = build_job(&builder, spec, k)?;
        let key = cache_key(&built.job, built.out, spec.waveform);
        let dedup = trace_events == 0 && spec.cache == CacheMode::Default;
        let slot = match (dedup, seen.get(&key.0)) {
            (true, Some(&slot)) => slot,
            _ => {
                let trace =
                    (trace_events > 0).then(|| fts_telemetry::trace::JobTrace::new(trace_events));
                if let Some(t) = &trace {
                    built.job.trace = Some(t.clone());
                }
                traces.push(trace);
                let slot = jobs.len();
                jobs.push(built.job);
                if dedup {
                    seen.insert(key.0, slot);
                }
                slot
            }
        };
        run_of.push(slot);
        meta.push((spec.label_or_default(k), built.out, spec.waveform));
    }

    let mut engine = Engine::new();
    if manifest.threads > 0 {
        engine = engine.threads(manifest.threads);
    }
    let threads = engine.thread_count();
    let report = engine.run(jobs);

    // Success is counted per manifest row (a deduped duplicate of a
    // successful job succeeded too), not per engine run.
    let succeeded = run_of
        .iter()
        .filter(|&&slot| report.outcomes[slot].is_success())
        .count();
    let rows: Vec<String> = meta
        .iter()
        .enumerate()
        .map(|(k, (label, out, waveform))| {
            let slot = run_of[k];
            let snap = traces[slot].as_ref().map(|t| t.snapshot());
            job_row_json_traced(
                label,
                &report.outcomes[slot],
                &report.stats[slot],
                *out,
                *waveform,
                snap.as_ref(),
            )
        })
        .collect();
    Ok(batch_report_json(&rows, succeeded, threads, report.wall_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_manifest_runs_and_reports() {
        let m = BatchManifest::parse(
            r#"{"threads": 1, "jobs": [
                {"function": "and2", "analysis": "op", "input": 3, "label": "and2-on"},
                {"function": "and2", "analysis": "op", "input": 0, "label": "and2-off"}
            ]}"#,
        )
        .unwrap();
        let report = run_manifest(&m).unwrap();
        let doc = Json::parse(&report).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("fts-batch-report/1")
        );
        assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("jobs").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("succeeded").and_then(Json::as_f64), Some(2.0));
        let outcomes = doc.get("outcomes").and_then(Json::as_array).unwrap();
        let out_v = |k: usize| {
            outcomes[k]
                .get("result")
                .and_then(|r| r.get("out_v"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        // The bench inverts the lattice: both inputs high pulls the output
        // low, all-off floats it to VDD through the pull-up.
        assert!(
            out_v(0) < 0.6,
            "AND(1,1) output should be low, got {}",
            out_v(0)
        );
        assert!(
            out_v(1) > 0.6,
            "AND(0,0) output should be high, got {}",
            out_v(1)
        );
    }

    #[test]
    fn unknown_function_is_a_structured_error() {
        let m = BatchManifest::parse(r#"{"jobs": [{"function": "frobnicate"}]}"#).unwrap();
        let e = run_manifest(&m).unwrap_err();
        assert_eq!(e.code, "unknown_function");
        assert_eq!(e.job, Some(0));
    }

    #[test]
    fn transient_manifest_honors_decimation_and_waveform_fields() {
        let m = BatchManifest::parse(
            r#"{"threads": 1, "jobs": [
                {"function": "and2", "analysis": "transient",
                 "phase_ns": 4.0, "dt_ns": 0.05, "max_samples": 32, "waveform": true}
            ]}"#,
        )
        .unwrap();
        let report = run_manifest(&m).unwrap();
        let doc = Json::parse(&report).unwrap();
        let result = doc.get("outcomes").and_then(Json::as_array).unwrap()[0]
            .get("result")
            .unwrap()
            .clone();
        assert_eq!(result.get("kind").and_then(Json::as_str), Some("transient"));
        let samples = result.get("samples").and_then(Json::as_f64).unwrap();
        assert!(samples <= 32.0, "decimated to the cap, got {samples}");
        assert!(result.get("stride").and_then(Json::as_f64).unwrap() > 1.0);
        // waveform=true embeds the decimated arrays, same length as samples.
        let time = result.get("time").and_then(Json::as_array).unwrap();
        let out_v = result.get("out_v").and_then(Json::as_array).unwrap();
        assert_eq!(time.len(), samples as usize);
        assert_eq!(out_v.len(), samples as usize);
    }

    #[test]
    fn traced_manifest_embeds_a_journal_per_row() {
        let m = BatchManifest::parse(
            r#"{"threads": 1, "jobs": [
                {"function": "and2", "analysis": "op", "input": 1, "label": "traced"}
            ]}"#,
        )
        .unwrap();
        let report = run_manifest_traced(&m, 512).unwrap();
        let doc = Json::parse(&report).unwrap();
        let row = &doc.get("outcomes").and_then(Json::as_array).unwrap()[0];
        let trace = row.get("trace").expect("row embeds a trace object");
        assert_eq!(trace.get("capacity").and_then(Json::as_f64), Some(512.0));
        let events = trace.get("events").and_then(Json::as_array).unwrap();
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("kind").and_then(Json::as_str))
            .collect();
        assert!(kinds.contains(&"newton_converged"), "{kinds:?}");
        assert_eq!(kinds.last(), Some(&"job_done"), "{kinds:?}");
        // The untraced path stays byte-compatible: no trace field at all.
        assert!(!run_manifest(&m).unwrap().contains("\"trace\""));
    }

    #[test]
    fn deck_jobs_run_through_the_same_report_path() {
        let m = BatchManifest::parse(
            r#"{"threads": 1, "jobs": [
                {"deck": "v1 a 0 dc 2\nr1 a out 1k\nr2 out 0 1k\n.op\n.probe v(out)\n",
                 "label": "divider"}
            ]}"#,
        )
        .unwrap();
        let report = run_manifest(&m).unwrap();
        let doc = Json::parse(&report).unwrap();
        assert_eq!(doc.get("succeeded").and_then(Json::as_f64), Some(1.0));
        let row = &doc.get("outcomes").and_then(Json::as_array).unwrap()[0];
        assert_eq!(row.get("label").and_then(Json::as_str), Some("divider"));
        let out_v = row
            .get("result")
            .and_then(|r| r.get("out_v"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((out_v - 1.0).abs() < 1e-6, "deck divider out_v = {out_v}");
    }

    #[test]
    fn bad_deck_aborts_the_batch_with_position() {
        let m =
            BatchManifest::parse(r#"{"jobs": [{"deck": "v1 a 0 dc 1\nr1 a b\n.op\n"}]}"#).unwrap();
        let e = run_manifest(&m).unwrap_err();
        assert_eq!(e.job, Some(0));
        assert_eq!(e.line, Some(2));
        assert!(e.to_string().contains("line 2:"), "{e}");
    }

    #[test]
    fn builder_caches_realizations_across_jobs() {
        let builder = PipelineJobBuilder::new();
        let spec = JobSpec {
            source: JobSource::Function {
                name: "and2".into(),
                analysis: AnalysisSpec::Op { input: 0 },
            },
            deadline_ms: None,
            ladder: false,
            label: None,
            waveform: false,
            cache: CacheMode::Default,
        };
        builder.build(&spec, 0).unwrap();
        builder.build(&spec, 1).unwrap();
        assert_eq!(
            builder.realized.lock().unwrap().len(),
            1,
            "one realization per distinct function"
        );
    }
}
