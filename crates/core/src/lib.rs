//! End-to-end reproduction of *"Realization of Four-Terminal Switching
//! Lattices: Technology Development and Circuit Modeling"* (Safaltin et
//! al., DATE 2019).
//!
//! This umbrella crate re-exports every subsystem and provides the
//! [`pipeline`] module, which chains them the way the paper does:
//!
//! 1. **Logic** ([`logic`], [`lattice`], [`synth`]) — switching-lattice
//!    semantics, Table I product counts, and lattice synthesis (Figs. 2–3);
//! 2. **Technology** ([`device`], [`field`]) — virtual-TCAD
//!    characterization of the square / cross / junctionless devices
//!    (Table II, Figs. 4–8);
//! 3. **Modeling** ([`extract`]) — level-1 parameter extraction for the
//!    six-MOSFET switch model (Figs. 9–10);
//! 4. **Circuits** ([`spice`], [`circuit`]) — Spice-class simulation of
//!    lattice circuits (Figs. 11–12);
//! 5. **Design automation** ([`explorer`]) — the §VI-A automated design
//!    tool: candidate generation, measurement, Pareto selection under
//!    area/power/delay/energy specifications;
//! 6. **Manufacturing statistics** ([`montecarlo`]) — parallel Monte
//!    Carlo over process variation and crosspoint defects: functional /
//!    parametric yield and V_OL / V_OH / delay distributions;
//! 7. **Serving** ([`server`], [`batch`]) — the `fts-engine` batch
//!    scheduler exposed as a manifest-driven CLI (`fts batch`) and a
//!    zero-dependency HTTP service (`fts serve`) over a shared versioned
//!    wire schema.
//!
//! # Quickstart
//!
//! Synthesize a function, run it through the full technology flow, and
//! verify the simulated circuit computes its complement:
//!
//! ```
//! use four_terminal_lattice::pipeline::Pipeline;
//! use four_terminal_lattice::logic::generators;
//!
//! let f = generators::majority(3);
//! let run = Pipeline::standard().realize(&f)?;
//! assert!(run.verified, "circuit must invert the lattice function");
//! assert_eq!(run.lattice.rows() * run.lattice.cols(), run.area());
//! # Ok::<(), four_terminal_lattice::pipeline::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fts_circuit as circuit;
pub use fts_device as device;
pub use fts_engine as engine;
pub use fts_extract as extract;
pub use fts_field as field;
pub use fts_lattice as lattice;
pub use fts_logic as logic;
pub use fts_montecarlo as montecarlo;
pub use fts_netlist as netlist;
pub use fts_server as server;
pub use fts_spice as spice;
pub use fts_synth as synth;

pub mod batch;
pub mod explorer;
pub mod pipeline;

/// Looks up one of the named benchmark functions shared by the `fts synth`,
/// `fts explore`, and `fts batch` subcommands: `and2..and4`, `or2..or4`,
/// `xor2..xor4`, `xnor2`, `xnor3`, `maj3`, `maj5`, and `th24` (the 2-of-4
/// threshold).
///
/// # Errors
///
/// A usage-style message for unknown names.
pub fn named_function(name: &str) -> Result<logic::TruthTable, String> {
    use logic::generators;
    let f = match name {
        "and2" => generators::and(2),
        "and3" => generators::and(3),
        "and4" => generators::and(4),
        "or2" => generators::or(2),
        "or3" => generators::or(3),
        "or4" => generators::or(4),
        "xor2" => generators::xor(2),
        "xor3" => generators::xor(3),
        "xor4" => generators::xor(4),
        "xnor2" => generators::xnor(2),
        "xnor3" => generators::xnor(3),
        "maj3" => generators::majority(3),
        "maj5" => generators::majority(5),
        "th24" => generators::threshold(4, 2),
        other => return Err(format!("unknown function {other:?}")),
    };
    Ok(f)
}
