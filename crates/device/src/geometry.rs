//! Device structures of Table II and the derived channel geometry.
//!
//! The four terminal electrodes sit at the four edges of a square substrate
//! (Fig. 4 of the paper); C(4,2) = 6 terminal pairs give six conduction
//! channels under a single common gate. Adjacent-terminal channels are
//! shorter ("Type A" in the paper's Fig. 9 model, effective L = 0.35 µm for
//! the square device) than the two opposite-terminal channels ("Type B",
//! effective L = 0.5 µm).

use crate::materials::nm_to_cm;

/// The three device structures explored in §III-A (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Enhancement type, square-shaped gate.
    Square,
    /// Enhancement type, cross-shaped gate (better terminal symmetry).
    Cross,
    /// Depletion type, junctionless nanowire with gate-all-around-like
    /// control.
    Junctionless,
}

impl DeviceKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Square => "square",
            DeviceKind::Cross => "cross",
            DeviceKind::Junctionless => "junctionless",
        }
    }

    /// All kinds, in the paper's order.
    pub fn all() -> [DeviceKind; 3] {
        [
            DeviceKind::Square,
            DeviceKind::Cross,
            DeviceKind::Junctionless,
        ]
    }

    /// True for the enhancement-mode structures.
    pub fn is_enhancement(self) -> bool {
        !matches!(self, DeviceKind::Junctionless)
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The four fixed terminal electrodes, named as in §III-B.
///
/// T1 and T3 are opposite, as are T2 and T4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Terminal {
    /// Terminal 1 (north electrode).
    T1,
    /// Terminal 2 (east electrode).
    T2,
    /// Terminal 3 (south electrode).
    T3,
    /// Terminal 4 (west electrode).
    T4,
}

impl Terminal {
    /// All terminals in index order.
    pub fn all() -> [Terminal; 4] {
        [Terminal::T1, Terminal::T2, Terminal::T3, Terminal::T4]
    }

    /// Zero-based index (T1 → 0).
    pub fn index(self) -> usize {
        match self {
            Terminal::T1 => 0,
            Terminal::T2 => 1,
            Terminal::T3 => 2,
            Terminal::T4 => 3,
        }
    }

    /// The geometrically opposite terminal.
    pub fn opposite(self) -> Terminal {
        match self {
            Terminal::T1 => Terminal::T3,
            Terminal::T2 => Terminal::T4,
            Terminal::T3 => Terminal::T1,
            Terminal::T4 => Terminal::T2,
        }
    }
}

impl std::fmt::Display for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.index() + 1)
    }
}

/// One of the six unordered terminal pairs (conduction channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TerminalPair {
    a: Terminal,
    b: Terminal,
}

impl TerminalPair {
    /// Creates a pair; the order of arguments is irrelevant.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: Terminal, b: Terminal) -> TerminalPair {
        assert_ne!(a, b, "a channel needs two distinct terminals");
        if a.index() <= b.index() {
            TerminalPair { a, b }
        } else {
            TerminalPair { a: b, b: a }
        }
    }

    /// The six channels of a four-terminal device.
    pub fn all() -> [TerminalPair; 6] {
        use Terminal::*;
        [
            TerminalPair::new(T1, T2),
            TerminalPair::new(T1, T3),
            TerminalPair::new(T1, T4),
            TerminalPair::new(T2, T3),
            TerminalPair::new(T2, T4),
            TerminalPair::new(T3, T4),
        ]
    }

    /// First terminal (lower index).
    pub fn first(self) -> Terminal {
        self.a
    }

    /// Second terminal (higher index).
    pub fn second(self) -> Terminal {
        self.b
    }

    /// True when the two terminals face each other across the device
    /// (T1–T3 or T2–T4): the paper's "Type B" long channel.
    pub fn is_opposite(self) -> bool {
        self.a.opposite() == self.b
    }
}

impl std::fmt::Display for TerminalPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.a, self.b)
    }
}

/// Effective planar geometry of one terminal-pair channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelGeometry {
    /// Effective channel width \[cm\].
    pub width_cm: f64,
    /// Effective channel length \[cm\].
    pub length_cm: f64,
}

impl ChannelGeometry {
    /// Width-to-length ratio.
    pub fn aspect(self) -> f64 {
        self.width_cm / self.length_cm
    }
}

/// The structural features of Table II plus derived channel geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceGeometry {
    /// Device structure.
    pub kind: DeviceKind,
    /// Device (substrate) size, nm: (x, y, z).
    pub device_nm: (f64, f64, f64),
    /// Electrode size, nm: (x, y, z).
    pub electrode_nm: (f64, f64, f64),
    /// Gate footprint, nm: (x, y) — the cross uses 200 nm-wide arms.
    pub gate_nm: (f64, f64),
    /// Gate dielectric thickness, nm.
    pub gate_thickness_nm: f64,
    /// Substrate doping \[cm⁻³\] (boron for enhancement devices; the
    /// junctionless device sits on insulating SiO2 and this records its
    /// wire doping instead).
    pub substrate_doping_cm3: f64,
    /// Electrode doping \[cm⁻³\] (phosphorus).
    pub electrode_doping_cm3: f64,
}

impl DeviceGeometry {
    /// Table II geometry for the given structure.
    pub fn table2(kind: DeviceKind) -> DeviceGeometry {
        match kind {
            DeviceKind::Square => DeviceGeometry {
                kind,
                device_nm: (2400.0, 2400.0, 730.0),
                electrode_nm: (700.0, 200.0, 200.0),
                gate_nm: (1000.0, 1000.0),
                gate_thickness_nm: 30.0,
                substrate_doping_cm3: 1.0e17,
                electrode_doping_cm3: 1.0e20,
            },
            DeviceKind::Cross => DeviceGeometry {
                kind,
                device_nm: (2400.0, 2400.0, 730.0),
                electrode_nm: (700.0, 200.0, 200.0),
                gate_nm: (200.0, 200.0), // arm width W:200, height 30
                gate_thickness_nm: 30.0,
                substrate_doping_cm3: 1.0e17,
                electrode_doping_cm3: 1.0e20,
            },
            DeviceKind::Junctionless => DeviceGeometry {
                kind,
                device_nm: (24.0, 24.0, 8.0),
                electrode_nm: (24.0, 2.0, 2.0),
                gate_nm: (4.0, 4.0),
                gate_thickness_nm: 1.0, // all-around shell between 4×4 gate and 2×2 wire
                substrate_doping_cm3: 1.0e20, // junctionless wire doping (n-type)
                electrode_doping_cm3: 1.0e20,
            },
        }
    }

    /// Effective width/length of the channel between a terminal pair.
    ///
    /// Enhancement devices: the electrode length sets the width for the
    /// square gate; the 200 nm cross arm confines the cross-gate channel.
    /// Adjacent pairs ("Type A") have effective L = 0.35 µm and opposite
    /// pairs ("Type B") L = 0.5 µm — the values the paper extracts into its
    /// Fig. 9 model. The junctionless wire has a gate-all-around channel.
    pub fn channel(&self, pair: TerminalPair) -> ChannelGeometry {
        let (w_nm, l_edge_nm, l_diag_nm) = match self.kind {
            DeviceKind::Square => (self.electrode_nm.0, 350.0, 500.0),
            DeviceKind::Cross => (self.gate_nm.0, 350.0, 500.0),
            // Perimeter of the 2×2 nm wire cross-section as GAA width; the
            // gate-covered wire segment as length.
            DeviceKind::Junctionless => (8.0, 20.0, 20.0),
        };
        let l_nm = if pair.is_opposite() {
            l_diag_nm
        } else {
            l_edge_nm
        };
        ChannelGeometry {
            width_cm: nm_to_cm(w_nm),
            length_cm: nm_to_cm(l_nm),
        }
    }

    /// Gate dielectric thickness in cm.
    pub fn gate_thickness_cm(&self) -> f64 {
        nm_to_cm(self.gate_thickness_nm)
    }

    /// Footprint area of the device in cm² (plan view), used for leakage
    /// scaling.
    pub fn footprint_cm2(&self) -> f64 {
        nm_to_cm(self.device_nm.0) * nm_to_cm(self.device_nm.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_pairs() {
        let pairs = TerminalPair::all();
        for (i, a) in pairs.iter().enumerate() {
            for b in &pairs[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(pairs.iter().filter(|p| p.is_opposite()).count(), 2);
    }

    #[test]
    fn pair_normalizes_order() {
        let p = TerminalPair::new(Terminal::T3, Terminal::T1);
        assert_eq!(p.first(), Terminal::T1);
        assert_eq!(p.second(), Terminal::T3);
        assert!(p.is_opposite());
    }

    #[test]
    #[should_panic(expected = "two distinct terminals")]
    fn pair_rejects_same_terminal() {
        let _ = TerminalPair::new(Terminal::T2, Terminal::T2);
    }

    #[test]
    fn table2_matches_paper() {
        let sq = DeviceGeometry::table2(DeviceKind::Square);
        assert_eq!(sq.device_nm, (2400.0, 2400.0, 730.0));
        assert_eq!(sq.gate_nm, (1000.0, 1000.0));
        assert_eq!(sq.substrate_doping_cm3, 1.0e17);
        let jl = DeviceGeometry::table2(DeviceKind::Junctionless);
        assert_eq!(jl.device_nm, (24.0, 24.0, 8.0));
        assert!(!jl.kind.is_enhancement());
    }

    #[test]
    fn adjacent_channels_are_shorter_than_opposite() {
        let g = DeviceGeometry::table2(DeviceKind::Square);
        let adj = g.channel(TerminalPair::new(Terminal::T1, Terminal::T2));
        let opp = g.channel(TerminalPair::new(Terminal::T1, Terminal::T3));
        assert!(adj.length_cm < opp.length_cm);
        assert!((adj.length_cm - 0.35e-4).abs() < 1e-12);
        assert!((opp.length_cm - 0.5e-4).abs() < 1e-12);
    }

    #[test]
    fn cross_is_narrower_than_square() {
        let sq = DeviceGeometry::table2(DeviceKind::Square);
        let cr = DeviceGeometry::table2(DeviceKind::Cross);
        let p = TerminalPair::new(Terminal::T1, Terminal::T2);
        assert!(cr.channel(p).width_cm < sq.channel(p).width_cm);
    }

    #[test]
    fn aspect_ratio_square_edge_is_two() {
        let g = DeviceGeometry::table2(DeviceKind::Square);
        let adj = g.channel(TerminalPair::new(Terminal::T1, Terminal::T2));
        assert!((adj.aspect() - 2.0).abs() < 1e-9);
    }
}
