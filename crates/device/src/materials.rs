//! Physical constants and material properties.
//!
//! All quantities use the centimetre–gram–second-derived semiconductor
//! convention: lengths in cm, capacitances in F/cm², charges in C/cm²,
//! doping in cm⁻³, currents in A. Voltages are volts.

/// Elementary charge \[C\].
pub const Q: f64 = 1.602_176_634e-19;

/// Vacuum permittivity \[F/cm\].
pub const EPS0: f64 = 8.854_187_8e-14;

/// Thermal voltage kT/q at 300 K \[V\].
pub const VT: f64 = 0.025_852;

/// Intrinsic carrier concentration of silicon at 300 K \[cm⁻³\].
pub const NI_SI: f64 = 1.0e10;

/// Relative permittivity of silicon.
pub const EPS_R_SI: f64 = 11.7;

/// Silicon band gap at 300 K \[eV\].
pub const EG_SI: f64 = 1.12;

/// Gate dielectric options explored in the paper (§III-A): conventional
/// SiO2 against high-k HfO2, "to observe the effect of dielectric
/// constant".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dielectric {
    /// Silicon dioxide, εr = 3.9.
    SiO2,
    /// Hafnium dioxide, εr = 22 (high-k).
    HfO2,
}

impl Dielectric {
    /// Relative permittivity.
    pub fn rel_permittivity(self) -> f64 {
        match self {
            Dielectric::SiO2 => 3.9,
            Dielectric::HfO2 => 22.0,
        }
    }

    /// Absolute permittivity \[F/cm\].
    pub fn permittivity(self) -> f64 {
        self.rel_permittivity() * EPS0
    }

    /// Areal gate capacitance for a film of `thickness_cm` \[F/cm²\].
    ///
    /// # Panics
    ///
    /// Panics if `thickness_cm` is not positive.
    pub fn areal_capacitance(self, thickness_cm: f64) -> f64 {
        assert!(thickness_cm > 0.0, "dielectric thickness must be positive");
        self.permittivity() / thickness_cm
    }

    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            Dielectric::SiO2 => "SiO2",
            Dielectric::HfO2 => "HfO2",
        }
    }

    /// Both dielectrics, in the order the paper reports them.
    pub fn all() -> [Dielectric; 2] {
        [Dielectric::SiO2, Dielectric::HfO2]
    }
}

impl std::fmt::Display for Dielectric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fermi potential of a doped silicon region \[V\]: `kT/q · ln(N / ni)`.
///
/// # Panics
///
/// Panics if `doping_cm3` is not positive.
pub fn fermi_potential(doping_cm3: f64) -> f64 {
    assert!(doping_cm3 > 0.0, "doping must be positive");
    VT * (doping_cm3 / NI_SI).ln()
}

/// Converts nanometres to centimetres.
pub fn nm_to_cm(nm: f64) -> f64 {
    nm * 1.0e-7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hfo2_capacitance_exceeds_sio2() {
        let t = nm_to_cm(30.0);
        let c_h = Dielectric::HfO2.areal_capacitance(t);
        let c_s = Dielectric::SiO2.areal_capacitance(t);
        assert!(c_h > 5.0 * c_s);
        // 22/3.9 ≈ 5.64
        assert!((c_h / c_s - 22.0 / 3.9).abs() < 1e-12);
    }

    #[test]
    fn fermi_potential_of_1e17_is_about_0_42v() {
        let phi = fermi_potential(1.0e17);
        assert!((phi - 0.417).abs() < 0.01, "got {phi}");
    }

    #[test]
    #[should_panic(expected = "doping must be positive")]
    fn fermi_potential_rejects_zero() {
        let _ = fermi_potential(0.0);
    }

    #[test]
    fn unit_conversion() {
        assert!((nm_to_cm(30.0) - 3.0e-6).abs() < 1e-18);
    }
}
