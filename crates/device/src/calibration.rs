//! Calibration constants and the paper's reported targets.
//!
//! The virtual TCAD is a physical surrogate: classical MOS electrostatics
//! with the Table II doping/geometry reproduces the paper's square-device
//! thresholds from first principles, while three effects that a 3-D TCAD
//! resolves numerically are folded into documented constants calibrated
//! against the paper's reported values:
//!
//! 1. **Mobility degradation** (`MU0_CM2_PER_VS`, `THETA_PER_V`) — the
//!    vertical-field mobility reduction that sets the absolute on-current
//!    scale of Figs. 5–6.
//! 2. **Narrow-gate threshold shift** (`NARROW_GATE_COEFF`) — the fringing
//!    depletion under the 200 nm cross arms that raises the cross-gate
//!    device's Vth above the square's.
//! 3. **Junctionless effective channel charge and flat band**
//!    (`JL_SHEET_CHARGE_C_PER_CM2`, `JL_FLATBAND_V`) — at a 2 × 2 nm wire
//!    cross-section the classical slab model underestimates the gate charge
//!    needed to pinch the wire off; the two constants are solved in closed
//!    form from the paper's two reported junctionless thresholds, after
//!    which every curve, ratio, and circuit result follows from the model.
//!
//! Every paper target used for calibration or validation is recorded in
//! [`PaperTargets`] so EXPERIMENTS.md can diff paper vs. measured.

use crate::{DeviceKind, Dielectric};

/// Low-field surface mobility \[cm²/Vs\] for the enhancement channels.
pub const MU0_CM2_PER_VS: f64 = 200.0;

/// Mobility degradation coefficient \[1/V\]: µ_eff = µ0 / (1 + θ·Vov).
pub const THETA_PER_V: f64 = 1.25;

/// Junctionless channel mobility \[cm²/Vs\]: impurity and surface-roughness
/// scattering in the heavily doped 2 nm wire crush the mobility; the value
/// is calibrated to the ≈55 µA on-current of the paper's Fig. 7b.
pub const JL_MU_CM2_PER_VS: f64 = 3.8;

/// Threshold correction \[V\] for the enhancement devices: lumps the
/// poly-depletion and quantum-confinement shifts a 3-D TCAD resolves but
/// the charge-sheet expression omits. Calibrated so the square-gate HfO2
/// threshold lands on the paper's 0.16 V (the uncorrected classical value
/// is 0.12 V; the max-gm extraction the paper uses reads ~40 mV above the
/// model parameter, so both are matched jointly).
pub const VTH_ADJUST_ENHANCEMENT_V: f64 = 0.08;

/// Narrow-gate threshold-shift coefficient: ΔVth = k · (W_dep/W_gate) ·
/// Q_dep/Cox, with k ≈ π/4 from the cylindrical fringing-field
/// approximation.
pub const NARROW_GATE_COEFF: f64 = std::f64::consts::FRAC_PI_4;

/// Junctionless effective gate-controlled sheet charge \[C/cm²\], solved
/// from the paper's two junctionless thresholds (see module docs).
pub const JL_SHEET_CHARGE_C_PER_CM2: f64 = 1.773e-5;

/// Junctionless effective flat-band voltage \[V\], solved jointly with
/// [`JL_SHEET_CHARGE_C_PER_CM2`].
pub const JL_FLATBAND_V: f64 = 0.418;

/// Channel-length modulation \[1/V\] for the short ("Type A") channels.
pub const LAMBDA_EDGE_PER_V: f64 = 0.08;

/// Channel-length modulation \[1/V\] for the long ("Type B") channels.
pub const LAMBDA_DIAG_PER_V: f64 = 0.056;

/// Junction/substrate leakage conductance per device \[S\] for enhancement
/// devices: sets the off-current floor that bounds the on/off ratio.
pub const LEAKAGE_S_ENHANCEMENT: f64 = 2.0e-10;

/// Leakage conductance for the junctionless device \[S\] — the insulating
/// SiO2 substrate keeps it far lower.
pub const LEAKAGE_S_JUNCTIONLESS: f64 = 4.0e-13;

/// The subthreshold ideality `n` is derived from electrostatics for the
/// enhancement devices; the junctionless wire uses this near-ideal value.
pub const JL_IDEALITY: f64 = 1.05;

/// A paper-reported (Vth, on/off ratio) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Threshold voltage \[V\] as reported in §III-B.
    pub vth_v: f64,
    /// On/off current ratio (Ion at Vgs = Vds = 5 V over Ioff at
    /// Vgs = 0 V, Vds = 5 V).
    pub on_off_ratio: f64,
}

/// Paper-reported characterization values for each device/dielectric
/// combination (Figs. 5–7 commentary).
pub fn paper_targets(kind: DeviceKind, dielectric: Dielectric) -> PaperTargets {
    use DeviceKind::*;
    use Dielectric::*;
    match (kind, dielectric) {
        (Square, HfO2) => PaperTargets {
            vth_v: 0.16,
            on_off_ratio: 1.0e6,
        },
        (Square, SiO2) => PaperTargets {
            vth_v: 1.36,
            on_off_ratio: 1.0e5,
        },
        (Cross, HfO2) => PaperTargets {
            vth_v: 0.27,
            on_off_ratio: 1.0e6,
        },
        (Cross, SiO2) => PaperTargets {
            vth_v: 1.76,
            on_off_ratio: 1.0e4,
        },
        (Junctionless, HfO2) => PaperTargets {
            vth_v: -0.57,
            on_off_ratio: 1.0e8,
        },
        (Junctionless, SiO2) => PaperTargets {
            vth_v: -4.8,
            on_off_ratio: 1.0e7,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_combination_has_targets() {
        for kind in DeviceKind::all() {
            for d in Dielectric::all() {
                let t = paper_targets(kind, d);
                assert!(t.on_off_ratio >= 1.0e4);
                if kind == DeviceKind::Junctionless {
                    assert!(t.vth_v < 0.0, "depletion device has negative Vth");
                } else {
                    assert!(t.vth_v > 0.0);
                }
            }
        }
    }

    #[test]
    fn hfo2_always_lowers_threshold_magnitude() {
        for kind in DeviceKind::all() {
            let h = paper_targets(kind, Dielectric::HfO2).vth_v.abs();
            let s = paper_targets(kind, Dielectric::SiO2).vth_v.abs();
            assert!(h < s, "{kind}: HfO2 |Vth| {h} should be below SiO2 {s}");
        }
    }

    #[test]
    fn jl_calibration_reproduces_paper_thresholds() {
        // Vth = Vfb − q·Nd·t²/(8εs) − Q·tox/εox with the calibrated (Q, Vfb)
        // must land on the two paper values.
        use crate::materials::{nm_to_cm, EPS0, EPS_R_SI, Q};
        let body = Q * 1.0e20 * nm_to_cm(2.0).powi(2) / (8.0 * EPS_R_SI * EPS0);
        for (diel, target) in [(Dielectric::HfO2, -0.57), (Dielectric::SiO2, -4.8)] {
            let tox = nm_to_cm(1.0);
            let vth = JL_FLATBAND_V - body - JL_SHEET_CHARGE_C_PER_CM2 * tox / diel.permittivity();
            assert!(
                (vth - target).abs() < 0.1,
                "{diel}: calibrated Vth {vth:.3} vs paper {target}"
            );
        }
    }
}
