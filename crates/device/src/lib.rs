//! Virtual TCAD for four-terminal switch devices (§III of the DATE 2019
//! paper).
//!
//! The paper characterizes three candidate devices — enhancement-type
//! **square-gate** and **cross-gate** structures and a depletion-type
//! **junctionless** nanowire — in a commercial 3-D TCAD tool. That tool is a
//! proprietary gate, so this crate implements the closest synthetic
//! equivalent that exercises the same downstream code paths:
//!
//! * [`geometry`] — the Table II device structures and the effective
//!   width/length of each of the six terminal-pair channels;
//! * [`electrostatics`] — classical MOS electrostatics: flat-band and
//!   threshold voltages, depletion charge, surface-potential solver,
//!   subthreshold slope factor;
//! * [`iv`] — an EKV-style all-region drain-current model (with mobility
//!   degradation, channel-length modulation, and a junction-leakage floor)
//!   evaluated per terminal-pair channel;
//! * [`bias`] — the paper's sixteen drain/source/float bias cases
//!   (DSFF … DSDD) and the nonlinear network solve that produces
//!   per-terminal currents;
//! * [`characterize`] — the three simulation set-ups of §III-B (Id–Vg at
//!   Vds = 10 mV and 5 V, Id–Vd at Vgs = 5 V), threshold extraction and
//!   on/off ratios (Figs. 5–7);
//! * [`calibration`] — every constant that was calibrated against the
//!   paper's reported values, with the paper targets recorded alongside.
//!
//! # Example
//!
//! ```
//! use fts_device::{characterize, Device, DeviceKind, Dielectric};
//!
//! let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
//! let report = characterize::characterize(&dev);
//! // Paper, Fig. 5: Vth ≈ 0.16 V, on/off ≈ 1e6 for the HfO2 square device.
//! assert!((report.vth - 0.16).abs() < 0.15);
//! assert!(report.on_off_ratio > 1e5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod calibration;
pub mod capacitance;
pub mod characterize;
pub mod electrostatics;
pub mod geometry;
pub mod iv;
pub mod materials;

pub use bias::{BiasCase, TerminalRole};
pub use geometry::{DeviceGeometry, DeviceKind, Terminal, TerminalPair};
pub use iv::Device;
pub use materials::Dielectric;
