//! Classical MOS electrostatics for the four-terminal devices.
//!
//! The enhancement devices are n⁺-electrode / p-substrate MOS structures
//! under a common gate; their threshold follows the textbook expression
//! `Vth = Vfb + 2φF + Qdep/Cox` (plus a narrow-gate correction for the
//! cross arms). The depletion-mode junctionless wire pinches off at
//! `Vth = Vfb − Vbody − Qch/Cox`. A numerical surface-potential solver is
//! provided for the inversion-charge and slope-factor calculations that the
//! I-V model consumes.

use crate::calibration;
use crate::geometry::{DeviceGeometry, DeviceKind};
use crate::materials::{fermi_potential, Dielectric, EPS0, EPS_R_SI, NI_SI, Q, VT};

/// Electrostatic summary of a device/dielectric combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Electrostatics {
    /// Threshold voltage \[V\] (negative for the depletion device).
    pub vth: f64,
    /// Flat-band voltage \[V\].
    pub vfb: f64,
    /// Areal gate capacitance \[F/cm²\].
    pub cox: f64,
    /// Subthreshold slope factor `n = 1 + Cdep/Cox`.
    pub n: f64,
    /// Bulk Fermi potential \[V\] (enhancement devices).
    pub phi_f: f64,
}

impl Electrostatics {
    /// Subthreshold swing \[mV/decade\].
    pub fn subthreshold_swing_mv_per_dec(&self) -> f64 {
        self.n * VT * std::f64::consts::LN_10 * 1.0e3
    }
}

/// Computes the electrostatic summary for a Table II device with the given
/// gate dielectric.
///
/// # Example
///
/// ```
/// use fts_device::electrostatics::solve;
/// use fts_device::{DeviceGeometry, DeviceKind, Dielectric};
///
/// let g = DeviceGeometry::table2(DeviceKind::Square);
/// let e = solve(&g, Dielectric::HfO2);
/// assert!(e.vth > 0.0 && e.vth < 0.5); // paper: ≈ 0.16 V
/// let s = solve(&g, Dielectric::SiO2);
/// assert!(s.vth > 1.0 && s.vth < 1.6); // paper: ≈ 1.36 V
/// ```
pub fn solve(geometry: &DeviceGeometry, dielectric: Dielectric) -> Electrostatics {
    let cox = dielectric.areal_capacitance(geometry.gate_thickness_cm());
    match geometry.kind {
        DeviceKind::Square | DeviceKind::Cross => enhancement(geometry, cox),
        DeviceKind::Junctionless => junctionless(geometry, cox),
    }
}

fn enhancement(geometry: &DeviceGeometry, cox: f64) -> Electrostatics {
    let na = geometry.substrate_doping_cm3;
    let phi_f = fermi_potential(na);
    let eps_si = EPS_R_SI * EPS0;
    // n+ poly-like gate over p-substrate.
    let vfb = -(crate::materials::EG_SI / 2.0 + phi_f);
    let q_dep = (2.0 * Q * eps_si * na * 2.0 * phi_f).sqrt();
    let mut vth = vfb + 2.0 * phi_f + q_dep / cox + calibration::VTH_ADJUST_ENHANCEMENT_V;

    // Narrow-gate correction: fringing depletion under the 200 nm cross
    // arms increases the charge the gate must support.
    if geometry.kind == DeviceKind::Cross {
        let xd = (2.0 * eps_si * 2.0 * phi_f / (Q * na)).sqrt();
        let w_gate = crate::materials::nm_to_cm(geometry.gate_nm.0);
        vth += calibration::NARROW_GATE_COEFF * (xd / w_gate) * (q_dep / cox);
    }

    let xd = (2.0 * eps_si * 2.0 * phi_f / (Q * na)).sqrt();
    let c_dep = eps_si / xd;
    Electrostatics {
        vth,
        vfb,
        cox,
        n: 1.0 + c_dep / cox,
        phi_f,
    }
}

fn junctionless(geometry: &DeviceGeometry, cox: f64) -> Electrostatics {
    let nd = geometry.substrate_doping_cm3;
    let eps_si = EPS_R_SI * EPS0;
    let t_wire = crate::materials::nm_to_cm(geometry.electrode_nm.1); // 2 nm
    let body = Q * nd * t_wire.powi(2) / (8.0 * eps_si);
    let vfb = calibration::JL_FLATBAND_V;
    let vth = vfb - body - calibration::JL_SHEET_CHARGE_C_PER_CM2 / cox;
    Electrostatics {
        vth,
        vfb,
        cox,
        n: calibration::JL_IDEALITY,
        phi_f: fermi_potential(nd),
    }
}

/// Solves the implicit surface-potential equation
/// `Vg = Vfb + ψs + γ·sqrt(vT)·F(ψs/vT)` for an enhancement device, with
/// `F(u) = sqrt(e^{−u} + u − 1 + (ni/Na)²(e^{u} − u − 1))`.
///
/// Returns the surface potential ψs \[V\]. Used for validation of the
/// charge-sheet quantities consumed by the I-V model; bisection makes it
/// unconditionally convergent.
///
/// # Panics
///
/// Panics if `na_cm3` is not positive.
pub fn surface_potential(vg: f64, vfb: f64, cox: f64, na_cm3: f64) -> f64 {
    assert!(na_cm3 > 0.0, "substrate doping must be positive");
    let eps_si = EPS_R_SI * EPS0;
    let gamma = (2.0 * Q * eps_si * na_cm3).sqrt() / cox;
    let ratio2 = (NI_SI / na_cm3).powi(2);
    let f = |psi: f64| -> f64 {
        if psi == 0.0 {
            return vfb - vg;
        }
        let u = psi / VT;
        let inner = (-u).exp() + u - 1.0 + ratio2 * (u.exp() - u - 1.0);
        vfb + psi + psi.signum() * gamma * VT.sqrt() * inner.max(0.0).sqrt() - vg
    };
    // Bracket: ψs lies between −1 V and 2φF + 1 V for any realistic bias.
    let (mut lo, mut hi) = (-1.5, 2.0 * fermi_potential(na_cm3) + 1.5);
    if f(lo) > 0.0 {
        return lo;
    }
    if f(hi) < 0.0 {
        return hi;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(d: Dielectric) -> Electrostatics {
        solve(&DeviceGeometry::table2(DeviceKind::Square), d)
    }

    #[test]
    fn square_thresholds_near_paper() {
        let h = square(Dielectric::HfO2);
        let s = square(Dielectric::SiO2);
        assert!(
            (h.vth - 0.16).abs() < 0.1,
            "HfO2 Vth {} vs paper 0.16",
            h.vth
        );
        assert!(
            (s.vth - 1.36).abs() < 0.15,
            "SiO2 Vth {} vs paper 1.36",
            s.vth
        );
    }

    #[test]
    fn cross_threshold_exceeds_square() {
        for d in Dielectric::all() {
            let sq = square(d);
            let cr = solve(&DeviceGeometry::table2(DeviceKind::Cross), d);
            assert!(cr.vth > sq.vth, "{d}");
            // Paper: +0.11 V (HfO2), +0.40 V (SiO2); correction should be
            // tens-to-hundreds of mV.
            let delta = cr.vth - sq.vth;
            assert!(delta > 0.02 && delta < 0.8, "{d}: delta {delta}");
        }
    }

    #[test]
    fn junctionless_thresholds_near_paper() {
        let g = DeviceGeometry::table2(DeviceKind::Junctionless);
        let h = solve(&g, Dielectric::HfO2);
        let s = solve(&g, Dielectric::SiO2);
        assert!((h.vth - -0.57).abs() < 0.1, "HfO2 {}", h.vth);
        assert!((s.vth - -4.8).abs() < 0.2, "SiO2 {}", s.vth);
    }

    #[test]
    fn slope_factor_is_physical() {
        for kind in DeviceKind::all() {
            for d in Dielectric::all() {
                let e = solve(&DeviceGeometry::table2(kind), d);
                assert!(e.n >= 1.0 && e.n < 3.0, "{kind}/{d}: n = {}", e.n);
                let ss = e.subthreshold_swing_mv_per_dec();
                assert!((59.0..200.0).contains(&ss), "{kind}/{d}: SS = {ss}");
            }
        }
    }

    #[test]
    fn hfo2_gives_sharper_swing() {
        let h = square(Dielectric::HfO2);
        let s = square(Dielectric::SiO2);
        assert!(h.n < s.n);
    }

    #[test]
    fn surface_potential_monotone_and_pinned() {
        let e = square(Dielectric::HfO2);
        let na = 1.0e17;
        let mut last = f64::NEG_INFINITY;
        for i in 0..=50 {
            let vg = -1.0 + i as f64 * 0.12;
            let psi = surface_potential(vg, e.vfb, e.cox, na);
            assert!(psi >= last - 1e-9, "ψs must be nondecreasing in Vg");
            last = psi;
        }
        // Strong inversion: ψs pins near 2φF (within a few vT·ln terms).
        let psi_on = surface_potential(5.0, e.vfb, e.cox, na);
        let two_phi = 2.0 * fermi_potential(na);
        assert!(
            psi_on > two_phi && psi_on < two_phi + 0.5,
            "ψs(5V) = {psi_on}"
        );
    }

    #[test]
    fn surface_potential_zero_at_flatband() {
        let e = square(Dielectric::SiO2);
        let psi = surface_potential(e.vfb, e.vfb, e.cox, 1.0e17);
        assert!(psi.abs() < 1e-3, "ψs at flat band should vanish, got {psi}");
    }
}
