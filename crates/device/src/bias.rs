//! The sixteen drain/source/float bias cases of §III-B.
//!
//! Each terminal is a drain (current into the device), a source, or left
//! floating. The paper explores symmetric and non-symmetric operating
//! conditions grouped as 1 drain–1 source, 1 drain–3 sources, 2 drains–2
//! sources, and 3 drains–1 source.

use std::fmt;
use std::str::FromStr;

/// The role of one terminal in a bias case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerminalRole {
    /// Driven to the drain voltage.
    Drain,
    /// Grounded.
    Source,
    /// Connected to nothing.
    Float,
}

impl TerminalRole {
    /// One-letter code used in case names (D/S/F).
    pub fn code(self) -> char {
        match self {
            TerminalRole::Drain => 'D',
            TerminalRole::Source => 'S',
            TerminalRole::Float => 'F',
        }
    }
}

/// A bias case: the roles of T1..T4, e.g. `DSSS` (T1 drain, rest sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BiasCase {
    roles: [TerminalRole; 4],
}

/// Error returned when parsing a bias-case name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBiasCaseError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseBiasCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bias case {:?}: expected four of D/S/F",
            self.input
        )
    }
}

impl std::error::Error for ParseBiasCaseError {}

impl BiasCase {
    /// The paper's headline case: T1 drain, T2–T4 sources.
    pub const DSSS: BiasCase = BiasCase {
        roles: [
            TerminalRole::Drain,
            TerminalRole::Source,
            TerminalRole::Source,
            TerminalRole::Source,
        ],
    };

    /// 1 drain – 1 source with adjacent terminals, rest floating.
    pub const DSFF: BiasCase = BiasCase {
        roles: [
            TerminalRole::Drain,
            TerminalRole::Source,
            TerminalRole::Float,
            TerminalRole::Float,
        ],
    };

    /// Creates a case from explicit roles.
    pub fn new(roles: [TerminalRole; 4]) -> BiasCase {
        BiasCase { roles }
    }

    /// The roles of T1..T4.
    pub fn roles(&self) -> &[TerminalRole; 4] {
        &self.roles
    }

    /// The 16 cases explored in the paper: DSFF, SFDF, the four 1-drain–3-
    /// source rotations, the six 2-drain–2-source assignments, and the four
    /// 3-drain–1-source rotations.
    pub fn paper_cases() -> Vec<BiasCase> {
        [
            "DSFF", "SFDF", // 1 drain - 1 source
            "DSSS", "SDSS", "SSDS", "SSSD", // 1 drain - 3 sources
            "DDSS", "SDDS", "DSDS", "DSSD", "SDSD", "SSDD", // 2 - 2
            "DDDS", "SDDD", "DDSD", "DSDD", // 3 drains - 1 source
        ]
        .iter()
        .map(|s| s.parse().expect("hardcoded case names are valid"))
        .collect()
    }

    /// Number of drain terminals.
    pub fn drain_count(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| **r == TerminalRole::Drain)
            .count()
    }

    /// Number of source terminals.
    pub fn source_count(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| **r == TerminalRole::Source)
            .count()
    }
}

impl fmt::Display for BiasCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.roles {
            write!(f, "{}", r.code())?;
        }
        Ok(())
    }
}

impl FromStr for BiasCase {
    type Err = ParseBiasCaseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseBiasCaseError {
            input: s.to_owned(),
        };
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 4 {
            return Err(err());
        }
        let mut roles = [TerminalRole::Float; 4];
        for (i, c) in chars.iter().enumerate() {
            roles[i] = match c.to_ascii_uppercase() {
                'D' => TerminalRole::Drain,
                'S' => TerminalRole::Source,
                'F' => TerminalRole::Float,
                _ => return Err(err()),
            };
        }
        Ok(BiasCase { roles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lists_sixteen_cases() {
        let cases = BiasCase::paper_cases();
        assert_eq!(cases.len(), 16);
        // All distinct.
        for (i, a) in cases.iter().enumerate() {
            for b in &cases[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Group sizes as in the paper.
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.drain_count() == 1 && c.source_count() == 1)
                .count(),
            2
        );
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.drain_count() == 1 && c.source_count() == 3)
                .count(),
            4
        );
        assert_eq!(cases.iter().filter(|c| c.drain_count() == 2).count(), 6);
        assert_eq!(cases.iter().filter(|c| c.drain_count() == 3).count(), 4);
    }

    #[test]
    fn roundtrip_parse_display() {
        for c in BiasCase::paper_cases() {
            let s = c.to_string();
            let parsed: BiasCase = s.parse().unwrap();
            assert_eq!(parsed, c);
        }
    }

    #[test]
    fn dsss_means_t1_drain() {
        let c: BiasCase = "dsss".parse().unwrap();
        assert_eq!(c, BiasCase::DSSS);
        assert_eq!(c.roles()[0], TerminalRole::Drain);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("DSX S".parse::<BiasCase>().is_err());
        assert!("DS".parse::<BiasCase>().is_err());
        assert!("DSSSS".parse::<BiasCase>().is_err());
        let e = "QSSS".parse::<BiasCase>().unwrap_err();
        assert!(e.to_string().contains("QSSS"));
    }
}
