//! All-region channel current model.
//!
//! Each of the six terminal-pair channels is modelled with an EKV-style
//! charge-based expression that is continuous from subthreshold through
//! saturation and symmetric in its two terminals:
//!
//! ```text
//! I(a→b) = Is · [ F((vp − v_b)/vT) − F((vp − v_a)/vT) ] · (1 + λ·|v_a − v_b|)
//!          + G_leak · (v_a − v_b)
//! Is = 2 n µ_eff Cox (W/L) vT²,  vp = (Vg − Vth)/n,  F(u) = ln²(1 + e^{u/2})
//! ```
//!
//! with vertical-field mobility degradation `µ_eff = µ0/(1 + θ·Vov)` and a
//! junction-leakage floor. The same expression serves the depletion-mode
//! junctionless device through its negative threshold.

use crate::bias::{BiasCase, TerminalRole};
use crate::calibration;
use crate::electrostatics::{self, Electrostatics};
use crate::geometry::{DeviceGeometry, DeviceKind, Terminal, TerminalPair};
use crate::materials::{Dielectric, VT};

/// A characterized four-terminal device: Table II geometry, solved
/// electrostatics, and the calibrated transport parameters.
///
/// # Example
///
/// ```
/// use fts_device::{Device, DeviceKind, Dielectric, Terminal};
///
/// let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
/// // Channel conducts when the gate is on…
/// let pair = fts_device::TerminalPair::new(Terminal::T1, Terminal::T2);
/// let on = dev.channel_current(pair, 1.0, 0.0, 5.0);
/// let off = dev.channel_current(pair, 1.0, 0.0, 0.0);
/// assert!(on > 1e3 * off.abs());
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    kind: DeviceKind,
    dielectric: Dielectric,
    geometry: DeviceGeometry,
    es: Electrostatics,
}

impl Device {
    /// Builds the Table II device of the given structure and dielectric and
    /// solves its electrostatics.
    pub fn new(kind: DeviceKind, dielectric: Dielectric) -> Device {
        let geometry = DeviceGeometry::table2(kind);
        let es = electrostatics::solve(&geometry, dielectric);
        Device {
            kind,
            dielectric,
            geometry,
            es,
        }
    }

    /// Device structure.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Gate dielectric.
    pub fn dielectric(&self) -> Dielectric {
        self.dielectric
    }

    /// Geometry (Table II).
    pub fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    /// Solved electrostatics.
    pub fn electrostatics(&self) -> &Electrostatics {
        &self.es
    }

    /// Threshold voltage \[V\].
    pub fn vth(&self) -> f64 {
        self.es.vth
    }

    /// Terminal capacitance to ground \[F\] — the paper uses 1 fF per
    /// terminal, "estimated using the TCAD simulations" (§V). The
    /// geometry-derived estimate in [`crate::capacitance::estimate`]
    /// independently lands at the same order; the paper's round value is
    /// kept here so the circuit experiments match §V exactly.
    pub fn terminal_capacitance(&self) -> f64 {
        1.0e-15
    }

    /// Mobility at gate overdrive `vov` \[cm²/Vs\].
    fn mobility(&self, vov: f64) -> f64 {
        let mu0 = match self.kind {
            DeviceKind::Junctionless => calibration::JL_MU_CM2_PER_VS,
            _ => calibration::MU0_CM2_PER_VS,
        };
        mu0 / (1.0 + calibration::THETA_PER_V * vov.max(0.0))
    }

    /// Specific current `Is` of a channel \[A\].
    fn specific_current(&self, pair: TerminalPair, vg: f64) -> f64 {
        let ch = self.geometry.channel(pair);
        let vov = vg - self.es.vth;
        2.0 * self.es.n * self.mobility(vov) * self.es.cox * ch.aspect() * VT * VT
    }

    /// Per-channel leakage conductance \[S\].
    fn leakage(&self) -> f64 {
        let per_device = match self.kind {
            DeviceKind::Junctionless => calibration::LEAKAGE_S_JUNCTIONLESS,
            _ => calibration::LEAKAGE_S_ENHANCEMENT,
        };
        per_device / 3.0
    }

    /// Current flowing from terminal `a` into the channel toward `b` \[A\],
    /// for node voltages `va`, `vb` and common gate voltage `vg` (source
    /// reference is ground; the bulk is grounded as in §V).
    ///
    /// Positive when `va > vb` (conventional current a → b). The expression
    /// is antisymmetric: swapping the terminals flips the sign.
    pub fn channel_current(&self, pair: TerminalPair, va: f64, vb: f64, vg: f64) -> f64 {
        let is = self.specific_current(pair, vg);
        let vp = (vg - self.es.vth) / self.es.n;
        let nvt = self.es.n * VT;
        let i_f = ekv_f((vp - vb) / nvt);
        let i_r = ekv_f((vp - va) / nvt);
        let lambda = if pair.is_opposite() {
            calibration::LAMBDA_DIAG_PER_V
        } else {
            calibration::LAMBDA_EDGE_PER_V
        };
        let clm = 1.0 + lambda * (va - vb).abs();
        is * (i_f - i_r) * clm + self.leakage() * (va - vb)
    }

    /// Net current injected into terminal `t` of the device when the four
    /// terminal voltages are `v` and the gate is at `vg` \[A\]. Positive
    /// current flows *into* the device at that terminal.
    pub fn terminal_current(&self, t: Terminal, v: &[f64; 4], vg: f64) -> f64 {
        let mut sum = 0.0;
        for pair in TerminalPair::all() {
            if pair.first() == t {
                sum += self.channel_current(
                    pair,
                    v[pair.first().index()],
                    v[pair.second().index()],
                    vg,
                );
            } else if pair.second() == t {
                sum += self.channel_current(
                    pair,
                    v[pair.second().index()],
                    v[pair.first().index()],
                    vg,
                );
            }
        }
        sum
    }

    /// Solves a bias case: drains at `vd`, sources at ground, floating
    /// terminals at their equilibrium potential, gate at `vg`. Returns the
    /// four terminal voltages and the current *into* each terminal.
    pub fn solve_bias(&self, case: BiasCase, vd: f64, vg: f64) -> BiasSolution {
        let mut v = [0.0f64; 4];
        let floats: Vec<usize> = (0..4)
            .filter(|&i| case.roles()[i] == TerminalRole::Float)
            .collect();
        for (i, role) in case.roles().iter().enumerate() {
            v[i] = match role {
                TerminalRole::Drain => vd,
                TerminalRole::Source => 0.0,
                TerminalRole::Float => vd / 2.0, // initial guess
            };
        }
        // Newton with numerical Jacobian on the floating nodes.
        for _ in 0..60 {
            let res: Vec<f64> = floats
                .iter()
                .map(|&i| self.terminal_current(Terminal::all()[i], &v, vg))
                .collect();
            if res.iter().all(|r| r.abs() < 1e-16) {
                break;
            }
            let nf = floats.len();
            if nf == 0 {
                break;
            }
            // Numerical Jacobian dres_i / dv_j.
            let h = 1e-6;
            let mut jac = vec![vec![0.0f64; nf]; nf];
            for (j, &fj) in floats.iter().enumerate() {
                let mut vpert = v;
                vpert[fj] += h;
                for (i, &fi) in floats.iter().enumerate() {
                    let rp = self.terminal_current(Terminal::all()[fi], &vpert, vg);
                    jac[i][j] = (rp - res[i]) / h;
                }
            }
            let Some(delta) = solve_dense(&mut jac, &res) else {
                break;
            };
            for (j, &fj) in floats.iter().enumerate() {
                // Damped update, clamped to the supply range.
                v[fj] = (v[fj] - delta[j].clamp(-1.0, 1.0)).clamp(-10.0, 10.0);
            }
        }
        let currents = std::array::from_fn(|i| self.terminal_current(Terminal::all()[i], &v, vg));
        BiasSolution {
            voltages: v,
            currents,
        }
    }
}

/// Result of [`Device::solve_bias`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasSolution {
    /// Voltage at each terminal T1..T4 \[V\].
    pub voltages: [f64; 4],
    /// Current *into* each terminal T1..T4 \[A\].
    pub currents: [f64; 4],
}

impl BiasSolution {
    /// Sum of all terminal currents — Kirchhoff demands ≈ 0.
    pub fn kcl_residual(&self) -> f64 {
        self.currents.iter().sum()
    }
}

/// EKV interpolation function `F(u) = ln²(1 + e^{u/2})`.
fn ekv_f(u: f64) -> f64 {
    // ln(1+e^{u/2}) computed stably for large |u|.
    let half = 0.5 * u;
    let ln1p = if half > 30.0 {
        half
    } else {
        half.exp().ln_1p()
    };
    ln1p * ln1p
}

/// Tiny dense Gaussian elimination with partial pivoting (n ≤ 2 here, but
/// written generally). Returns `None` on a singular system.
#[allow(clippy::needless_range_loop)] // in-place elimination indexes two rows at once
fn solve_dense(a: &mut [Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        let piv = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, piv);
        x.swap(col, piv);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        x[col] /= a[col][col];
        for row in 0..col {
            x[row] -= a[row][col] * x[col];
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::BiasCase;

    fn square_hfo2() -> Device {
        Device::new(DeviceKind::Square, Dielectric::HfO2)
    }

    #[test]
    fn channel_current_is_antisymmetric() {
        let dev = square_hfo2();
        let p = TerminalPair::new(Terminal::T1, Terminal::T2);
        for vg in [0.0, 1.0, 3.0, 5.0] {
            let ab = dev.channel_current(p, 2.0, 0.5, vg);
            let ba = dev.channel_current(p, 0.5, 2.0, vg);
            assert!((ab + ba).abs() < 1e-18 * ab.abs().max(1.0), "vg={vg}");
        }
    }

    #[test]
    fn current_increases_with_gate_voltage() {
        let dev = square_hfo2();
        let p = TerminalPair::new(Terminal::T1, Terminal::T2);
        let mut last = 0.0;
        for i in 0..=50 {
            let vg = i as f64 * 0.1;
            let i_ds = dev.channel_current(p, 1.0, 0.0, vg);
            assert!(i_ds >= last, "monotone in vg");
            last = i_ds;
        }
    }

    #[test]
    fn saturation_current_magnitude_matches_fig5() {
        // Paper Fig. 5b: T1 (drain) current ≈ 1.2 mA at Vgs = Vds = 5 V in
        // the DSSS case — three parallel edge/diag channels.
        let dev = square_hfo2();
        let sol = dev.solve_bias(BiasCase::DSSS, 5.0, 5.0);
        let i_t1 = sol.currents[0];
        assert!(
            i_t1 > 3.0e-4 && i_t1 < 4.0e-3,
            "T1 on-current {i_t1:.3e} should be ~1e-3"
        );
    }

    #[test]
    fn off_current_has_leakage_floor() {
        let dev = Device::new(DeviceKind::Square, Dielectric::SiO2);
        let sol = dev.solve_bias(BiasCase::DSSS, 5.0, 0.0);
        let ioff = sol.currents[0];
        assert!(
            ioff > 1e-11,
            "leakage floor should dominate, got {ioff:.3e}"
        );
        assert!(ioff < 1e-7, "off current should be tiny, got {ioff:.3e}");
    }

    #[test]
    fn dsss_splits_current_across_sources() {
        let dev = square_hfo2();
        let sol = dev.solve_bias(BiasCase::DSSS, 5.0, 5.0);
        // T1 sources all current; T2..T4 sink shares of it.
        assert!(sol.currents[0] > 0.0);
        for i in 1..4 {
            assert!(sol.currents[i] < 0.0, "terminal {} should sink", i + 1);
        }
        assert!(sol.kcl_residual().abs() < 1e-9 * sol.currents[0].abs().max(1e-12));
        // Opposite terminal (T3, long channel) carries less than the
        // adjacent ones.
        assert!(sol.currents[2].abs() < sol.currents[1].abs());
        assert!(
            (sol.currents[1] - sol.currents[3]).abs() < 1e-12,
            "T2/T4 symmetric"
        );
    }

    #[test]
    fn floating_terminals_carry_no_current() {
        let dev = square_hfo2();
        let sol = dev.solve_bias(BiasCase::DSFF, 5.0, 5.0);
        assert!(
            sol.currents[2].abs() < 1e-9,
            "T3 floats: {:.3e}",
            sol.currents[2]
        );
        assert!(
            sol.currents[3].abs() < 1e-9,
            "T4 floats: {:.3e}",
            sol.currents[3]
        );
        assert!(sol.currents[0] > 0.0);
        assert!((sol.currents[0] + sol.currents[1]).abs() < 1e-9);
        // The float voltage settles between source and drain.
        assert!(sol.voltages[2] > 0.0 && sol.voltages[2] < 5.0);
    }

    #[test]
    fn junctionless_conducts_at_zero_gate() {
        // Depletion device: ON at Vgs = 0, OFF below Vth (negative).
        let dev = Device::new(DeviceKind::Junctionless, Dielectric::HfO2);
        let p = TerminalPair::new(Terminal::T1, Terminal::T2);
        let on = dev.channel_current(p, 1.0, 0.0, 0.0);
        let off = dev.channel_current(p, 1.0, 0.0, -3.0);
        assert!(on > 100.0 * off.abs(), "on {on:.3e} off {off:.3e}");
    }

    #[test]
    fn ekv_limits() {
        // Deep subthreshold: F(u) → e^u; strong inversion: F(u) → (u/2)².
        assert!((ekv_f(-20.0) / (-20.0f64).exp() - 1.0).abs() < 0.01);
        assert!((ekv_f(60.0) / 900.0 - 1.0).abs() < 0.15);
    }

    #[test]
    fn dense_solver_inverts_2x2() {
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_dense(&mut a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        let mut s = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(solve_dense(&mut s, &[1.0, 2.0]).is_none());
    }
}
