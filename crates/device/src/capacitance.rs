//! Terminal-capacitance estimation.
//!
//! §V of the paper states: "We choose to place 1 fF grounded capacitor on
//! every terminal that is estimated using the TCAD simulations." This
//! module derives that estimate from the Table II geometry instead of
//! taking it on faith: junction depletion capacitance of the n⁺ electrode
//! against the p-substrate, plus the fringe coupling of the electrode to
//! the grounded substrate bulk, plus a wiring allowance.

use crate::geometry::DeviceGeometry;
use crate::materials::{fermi_potential, nm_to_cm, Dielectric, EPS0, EPS_R_SI, Q};

/// Itemized capacitance estimate for one terminal \[F\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerminalCapacitance {
    /// Bottom-plate junction depletion capacitance.
    pub junction_bottom: f64,
    /// Side-wall junction capacitance (three exposed faces).
    pub junction_sidewall: f64,
    /// Fixed wiring/fringe allowance.
    pub wiring: f64,
}

impl TerminalCapacitance {
    /// Total capacitance \[F\].
    pub fn total(&self) -> f64 {
        self.junction_bottom + self.junction_sidewall + self.wiring
    }
}

/// Wiring/fringe allowance used when itemizing (contact + metal stub).
pub const WIRING_ALLOWANCE_F: f64 = 0.4e-15;

/// Estimates the grounded capacitance of one electrode terminal from the
/// device geometry (zero-bias junction capacitance).
///
/// The junctionless device sits on insulating SiO2, so only the wiring
/// allowance and the (tiny) wire-to-gate coupling remain.
///
/// # Example
///
/// ```
/// use fts_device::capacitance::estimate;
/// use fts_device::{DeviceGeometry, DeviceKind};
///
/// let g = DeviceGeometry::table2(DeviceKind::Square);
/// let c = estimate(&g);
/// // §V uses 1 fF; the physical estimate must be the same order.
/// assert!(c.total() > 0.3e-15 && c.total() < 3.0e-15);
/// ```
pub fn estimate(geometry: &DeviceGeometry) -> TerminalCapacitance {
    if !geometry.kind.is_enhancement() {
        return TerminalCapacitance {
            junction_bottom: 0.0,
            junction_sidewall: 0.0,
            wiring: WIRING_ALLOWANCE_F,
        };
    }
    let na = geometry.substrate_doping_cm3;
    let eps_si = EPS_R_SI * EPS0;
    // Built-in potential of the n⁺/p junction and zero-bias depletion
    // width (one-sided, into the lightly doped substrate).
    let vbi = fermi_potential(na) + fermi_potential(geometry.electrode_doping_cm3);
    let xd = (2.0 * eps_si * vbi / (Q * na)).sqrt();
    let cj_per_area = eps_si / xd;

    let (ex, ey, ez) = geometry.electrode_nm;
    let bottom_area = nm_to_cm(ex) * nm_to_cm(ey);
    // Three side walls face the substrate (the fourth faces the channel).
    let sidewall_area = nm_to_cm(ez) * (2.0 * nm_to_cm(ey) + nm_to_cm(ex));

    TerminalCapacitance {
        junction_bottom: cj_per_area * bottom_area,
        junction_sidewall: cj_per_area * sidewall_area,
        wiring: WIRING_ALLOWANCE_F,
    }
}

/// Gate capacitance of the whole device \[F\]: gate footprint × areal
/// oxide capacitance — the load each input driver sees.
pub fn gate_capacitance(geometry: &DeviceGeometry, dielectric: Dielectric) -> f64 {
    let cox = dielectric.areal_capacitance(geometry.gate_thickness_cm());
    let area = nm_to_cm(geometry.gate_nm.0) * nm_to_cm(geometry.gate_nm.1);
    // The cross gate has two crossing arms: approximate with 2·arm − overlap.
    match geometry.kind {
        crate::DeviceKind::Cross => {
            let arm = nm_to_cm(geometry.gate_nm.0) * nm_to_cm(2400.0);
            cox * (2.0 * arm - area)
        }
        _ => cox * area,
    }
}

/// Subthreshold slope sanity bound used by tests (Boltzmann limit).
pub const BOLTZMANN_SWING_MV_PER_DEC: f64 = 59.5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceGeometry, DeviceKind};

    #[test]
    fn square_terminal_capacitance_near_1ff() {
        // The paper's "1 fF estimated using the TCAD simulations".
        let g = DeviceGeometry::table2(DeviceKind::Square);
        let c = estimate(&g);
        let total = c.total();
        assert!(total > 0.3e-15 && total < 3.0e-15, "estimate {total:.3e}");
        // The junction term is a real contribution, not just the allowance.
        assert!(c.junction_bottom + c.junction_sidewall > 0.05e-15);
    }

    #[test]
    fn junctionless_terminal_capacitance_is_wiring_only() {
        let g = DeviceGeometry::table2(DeviceKind::Junctionless);
        let c = estimate(&g);
        assert_eq!(c.junction_bottom, 0.0);
        assert_eq!(c.junction_sidewall, 0.0);
        assert!((c.total() - WIRING_ALLOWANCE_F).abs() < 1e-20);
    }

    #[test]
    fn gate_capacitance_ordering() {
        // Square gate (1000×1000) carries more capacitance than the cross
        // arms at the same dielectric; HfO2 always exceeds SiO2.
        let sq = DeviceGeometry::table2(DeviceKind::Square);
        let cr = DeviceGeometry::table2(DeviceKind::Cross);
        for d in Dielectric::all() {
            assert!(gate_capacitance(&sq, d) > 0.0);
            assert!(gate_capacitance(&cr, d) > 0.0);
        }
        assert!(gate_capacitance(&sq, Dielectric::HfO2) > gate_capacitance(&sq, Dielectric::SiO2));
    }

    #[test]
    fn estimate_scales_with_electrode_area() {
        let mut g = DeviceGeometry::table2(DeviceKind::Square);
        let base = estimate(&g).total();
        g.electrode_nm = (1400.0, 400.0, 200.0);
        let bigger = estimate(&g).total();
        assert!(bigger > 1.5 * base, "{bigger:.3e} vs {base:.3e}");
    }
}
