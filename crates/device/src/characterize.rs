//! The three simulation set-ups of §III-B and the summary figures of
//! merit reported for Figs. 5–7.
//!
//! 1. Id–Vg at Vds = 10 mV (linear-region threshold extraction);
//! 2. Id–Vg at Vds = 5 V (on/off ratio);
//! 3. Id–Vd at Vgs = 5 V (output characteristic / drive current).
//!
//! Each sweep records the current at *all four* terminals, matching the
//! per-terminal traces the paper plots.

use crate::bias::BiasCase;
use crate::iv::Device;
use crate::DeviceKind;

/// A family of per-terminal current curves over a swept voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The bias case used.
    pub case: BiasCase,
    /// Swept voltage values \[V\].
    pub sweep: Vec<f64>,
    /// Current into each terminal \[A\]: `currents[t][k]` is terminal
    /// `t+1` at sweep point `k`.
    pub currents: [Vec<f64>; 4],
}

impl SweepResult {
    /// The drain-terminal trace (T1 for the paper's DSSS plots).
    pub fn terminal(&self, index: usize) -> &[f64] {
        &self.currents[index]
    }
}

/// Sweeps the gate voltage at fixed drain voltage (set-ups 1 and 2).
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn id_vg(
    device: &Device,
    case: BiasCase,
    vds: f64,
    vg_from: f64,
    vg_to: f64,
    points: usize,
) -> SweepResult {
    assert!(points >= 2, "a sweep needs at least two points");
    let mut sweep = Vec::with_capacity(points);
    let mut currents: [Vec<f64>; 4] = Default::default();
    for k in 0..points {
        let vg = vg_from + (vg_to - vg_from) * k as f64 / (points - 1) as f64;
        let sol = device.solve_bias(case, vds, vg);
        sweep.push(vg);
        for (trace, current) in currents.iter_mut().zip(sol.currents) {
            trace.push(current);
        }
    }
    SweepResult {
        case,
        sweep,
        currents,
    }
}

/// Sweeps the drain voltage at fixed gate voltage (set-up 3).
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn id_vd(
    device: &Device,
    case: BiasCase,
    vgs: f64,
    vd_from: f64,
    vd_to: f64,
    points: usize,
) -> SweepResult {
    assert!(points >= 2, "a sweep needs at least two points");
    let mut sweep = Vec::with_capacity(points);
    let mut currents: [Vec<f64>; 4] = Default::default();
    for k in 0..points {
        let vd = vd_from + (vd_to - vd_from) * k as f64 / (points - 1) as f64;
        let sol = device.solve_bias(case, vd, vgs);
        sweep.push(vd);
        for (trace, current) in currents.iter_mut().zip(sol.currents) {
            trace.push(current);
        }
    }
    SweepResult {
        case,
        sweep,
        currents,
    }
}

/// Threshold voltage by the maximum-transconductance linear-extrapolation
/// method on an Id–Vg curve taken at small Vds:
/// `Vth = Vg* − Id*/gm_max − Vds/2`.
///
/// # Panics
///
/// Panics if the curve has fewer than three points.
pub fn extract_vth(vg: &[f64], id: &[f64], vds: f64) -> f64 {
    assert!(
        vg.len() >= 3 && vg.len() == id.len(),
        "need at least three curve points"
    );
    let mut best = (0usize, f64::NEG_INFINITY);
    for k in 1..vg.len() - 1 {
        let gm = (id[k + 1] - id[k - 1]) / (vg[k + 1] - vg[k - 1]);
        if gm > best.1 {
            best = (k, gm);
        }
    }
    let (k, gm) = best;
    vg[k] - id[k] / gm - vds / 2.0
}

/// Summary of one device/dielectric characterization (the quantities the
/// paper reports alongside Figs. 5–7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// Extracted threshold voltage \[V\].
    pub vth: f64,
    /// Drain current at Vgs = Vds = 5 V \[A\].
    pub ion: f64,
    /// Drain current at Vgs = 0 V, Vds = 5 V \[A\].
    pub ioff: f64,
    /// `ion / ioff`.
    pub on_off_ratio: f64,
    /// Subthreshold swing \[mV/dec\] from electrostatics.
    pub swing_mv_per_dec: f64,
}

/// Runs the paper's standard characterization (DSSS case) on a device.
///
/// For the depletion-mode junctionless device the gate sweep extends to
/// −6 V so the threshold is visible, mirroring the paper's "after a
/// negative electric potential is applied" procedure; Ion/Ioff keep the
/// paper's definition (Vgs = 5 V vs Vgs = 0 V at Vds = 5 V) — which is why
/// the junctionless device is reported *on* at zero gate bias.
pub fn characterize(device: &Device) -> DeviceReport {
    let vg_min = if device.kind() == DeviceKind::Junctionless {
        -6.0
    } else {
        0.0
    };
    let lin = id_vg(device, BiasCase::DSSS, 0.01, vg_min, 5.0, 201);
    let vth = extract_vth(&lin.sweep, lin.terminal(0), 0.01);

    let ion = device.solve_bias(BiasCase::DSSS, 5.0, 5.0).currents[0];
    // The paper defines Ioff at Vgs = 0 for the enhancement devices; the
    // junctionless Ioff is taken at its deep-off gate bias.
    let ioff_raw = device.solve_bias(BiasCase::DSSS, 5.0, 0.0).currents[0];
    let ioff = if device.kind() == DeviceKind::Junctionless {
        device.solve_bias(BiasCase::DSSS, 5.0, -6.0).currents[0]
    } else {
        ioff_raw
    };
    DeviceReport {
        vth,
        ion,
        ioff,
        on_off_ratio: ion / ioff,
        swing_mv_per_dec: device.electrostatics().subthreshold_swing_mv_per_dec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceKind, Dielectric};

    #[test]
    fn square_hfo2_report_matches_paper_shape() {
        let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
        let r = characterize(&dev);
        assert!((r.vth - 0.16).abs() < 0.2, "Vth {} vs paper 0.16", r.vth);
        assert!(
            r.on_off_ratio > 1.0e5 && r.on_off_ratio < 1.0e8,
            "ratio {:.2e}",
            r.on_off_ratio
        );
        assert!(r.ion > 1.0e-4 && r.ion < 1.0e-2, "Ion {:.2e}", r.ion);
    }

    #[test]
    fn square_sio2_threshold_near_paper() {
        let dev = Device::new(DeviceKind::Square, Dielectric::SiO2);
        let r = characterize(&dev);
        assert!((r.vth - 1.36).abs() < 0.3, "Vth {} vs paper 1.36", r.vth);
        assert!(r.on_off_ratio > 1.0e4, "ratio {:.2e}", r.on_off_ratio);
    }

    #[test]
    fn cross_thresholds_exceed_square() {
        for d in Dielectric::all() {
            let sq = characterize(&Device::new(DeviceKind::Square, d));
            let cr = characterize(&Device::new(DeviceKind::Cross, d));
            assert!(cr.vth > sq.vth, "{d}");
            assert!(
                cr.ion < sq.ion,
                "{d}: narrower gate must carry less current"
            );
        }
    }

    #[test]
    fn junctionless_negative_threshold_and_high_ratio() {
        let h = characterize(&Device::new(DeviceKind::Junctionless, Dielectric::HfO2));
        assert!(h.vth < 0.0, "depletion Vth {}", h.vth);
        assert!((h.vth - -0.57).abs() < 0.4, "Vth {} vs paper -0.57", h.vth);
        assert!(h.on_off_ratio > 1.0e6, "ratio {:.2e}", h.on_off_ratio);
        let s = characterize(&Device::new(DeviceKind::Junctionless, Dielectric::SiO2));
        assert!(
            s.vth < h.vth,
            "SiO2 threshold deeper: {} vs {}",
            s.vth,
            h.vth
        );
    }

    #[test]
    fn idvg_is_monotone_for_enhancement() {
        let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
        let sweep = id_vg(&dev, BiasCase::DSSS, 5.0, 0.0, 5.0, 51);
        let t1 = sweep.terminal(0);
        for w in t1.windows(2) {
            assert!(w[1] >= w[0] - 1e-15);
        }
    }

    #[test]
    fn idvd_saturates() {
        let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
        let sweep = id_vd(&dev, BiasCase::DSSS, 5.0, 0.0, 5.0, 51);
        let t1 = sweep.terminal(0);
        // Early slope much steeper than late slope (saturation).
        let early = t1[5] - t1[0];
        let late = t1[50] - t1[45];
        assert!(early > 3.0 * late, "early {early:.3e} late {late:.3e}");
    }

    #[test]
    fn vth_extraction_recovers_synthetic_device() {
        // Synthetic square-law curve with known Vth.
        let vth_true = 0.8;
        let vg: Vec<f64> = (0..=100).map(|k| k as f64 * 0.05).collect();
        let id: Vec<f64> = vg
            .iter()
            .map(|&v| {
                if v > vth_true {
                    1e-4 * (v - vth_true) * 0.01
                } else {
                    0.0
                }
            })
            .collect();
        let vth = extract_vth(&vg, &id, 0.01);
        assert!((vth - vth_true).abs() < 0.06, "got {vth}");
    }

    #[test]
    fn per_terminal_traces_have_sweep_length() {
        let dev = Device::new(DeviceKind::Cross, Dielectric::HfO2);
        let s = id_vg(&dev, BiasCase::DSSS, 5.0, 0.0, 5.0, 11);
        for t in 0..4 {
            assert_eq!(s.terminal(t).len(), 11);
        }
    }
}
