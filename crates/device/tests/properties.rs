//! Property tests for the virtual TCAD: conservation laws and
//! monotonicity that must hold for any bias, device, or dielectric.

use proptest::prelude::*;

use fts_device::{BiasCase, Device, DeviceKind, Dielectric, Terminal, TerminalPair};

fn arb_kind() -> impl Strategy<Value = DeviceKind> {
    prop_oneof![
        Just(DeviceKind::Square),
        Just(DeviceKind::Cross),
        Just(DeviceKind::Junctionless),
    ]
}

fn arb_dielectric() -> impl Strategy<Value = Dielectric> {
    prop_oneof![Just(Dielectric::SiO2), Just(Dielectric::HfO2)]
}

fn arb_case() -> impl Strategy<Value = BiasCase> {
    (0..16usize).prop_map(|i| BiasCase::paper_cases()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kcl_holds_for_every_bias_case(
        kind in arb_kind(),
        diel in arb_dielectric(),
        case in arb_case(),
        vd in 0.0f64..5.0,
        vg in -2.0f64..5.0,
    ) {
        let dev = Device::new(kind, diel);
        let sol = dev.solve_bias(case, vd, vg);
        let scale = sol.currents.iter().fold(0.0f64, |m, c| m.max(c.abs())).max(1e-12);
        prop_assert!(
            sol.kcl_residual().abs() < 1e-6 * scale,
            "KCL residual {:.3e} vs scale {:.3e}",
            sol.kcl_residual(),
            scale
        );
    }

    #[test]
    fn channel_current_antisymmetric_everywhere(
        kind in arb_kind(),
        diel in arb_dielectric(),
        va in -1.0f64..5.0,
        vb in -1.0f64..5.0,
        vg in -2.0f64..5.0,
    ) {
        let dev = Device::new(kind, diel);
        let p = TerminalPair::new(Terminal::T1, Terminal::T3);
        let ab = dev.channel_current(p, va, vb, vg);
        let ba = dev.channel_current(p, vb, va, vg);
        prop_assert!((ab + ba).abs() <= 1e-12 * ab.abs().max(1e-15),
            "ab {ab:.3e} ba {ba:.3e}");
    }

    #[test]
    fn current_flows_downhill(
        kind in arb_kind(),
        diel in arb_dielectric(),
        lo in 0.0f64..2.0,
        delta in 0.001f64..3.0,
        vg in -2.0f64..5.0,
    ) {
        let dev = Device::new(kind, diel);
        let p = TerminalPair::new(Terminal::T1, Terminal::T2);
        let i = dev.channel_current(p, lo + delta, lo, vg);
        prop_assert!(i >= 0.0, "current must flow from high to low: {i:.3e}");
    }

    #[test]
    fn gate_monotonicity(
        kind in arb_kind(),
        diel in arb_dielectric(),
        vg in -2.0f64..4.8,
        step in 0.01f64..0.2,
    ) {
        let dev = Device::new(kind, diel);
        let p = TerminalPair::new(Terminal::T1, Terminal::T2);
        let lo = dev.channel_current(p, 1.0, 0.0, vg);
        let hi = dev.channel_current(p, 1.0, 0.0, vg + step);
        prop_assert!(hi >= lo - 1e-18, "Ids must be nondecreasing in Vg");
    }

    #[test]
    fn floating_terminals_never_carry_current(
        kind in arb_kind(),
        vd in 0.1f64..5.0,
        vg in 0.0f64..5.0,
    ) {
        let dev = Device::new(kind, Dielectric::HfO2);
        let sol = dev.solve_bias(BiasCase::DSFF, vd, vg);
        let scale = sol.currents[0].abs().max(1e-12);
        prop_assert!(sol.currents[2].abs() < 1e-5 * scale + 1e-12);
        prop_assert!(sol.currents[3].abs() < 1e-5 * scale + 1e-12);
    }
}
