//! Minimal complex arithmetic and dense complex LU for AC analysis.
//!
//! The AC extension implements the paper's §VI-A plan ("this analysis
//! should include … phase margin"): small-signal analysis needs complex
//! MNA matrices, provided here without external dependencies.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use crate::SpiceError;

/// A complex number (rectangular form).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// A purely imaginary value.
    pub fn imag(im: f64) -> Complex {
        Complex { re: 0.0, im }
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Phase in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude in decibels (`20·log10|z|`).
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

/// A dense complex matrix with LU solve, mirroring [`crate::linalg::Matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> CMatrix {
        CMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Adds `value` to entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn add(&mut self, row: usize, col: usize, value: Complex) {
        assert!(row < self.n && col < self.n, "index out of range");
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Solves `A·x = b` by LU with partial pivoting (by magnitude). The
    /// factorization destroys the matrix contents but keeps the allocation
    /// so callers can [`clear`](CMatrix::clear) and restamp.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] on pivot collapse.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&mut self, b: &[Complex]) -> Result<Vec<Complex>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut x = b.to_vec();
        for col in 0..n {
            let mut piv = col;
            let mut best = self.data[col * n + col].abs();
            for row in col + 1..n {
                let v = self.data[row * n + col].abs();
                if v > best {
                    best = v;
                    piv = row;
                }
            }
            if best < 1e-300 {
                return Err(SpiceError::SingularMatrix);
            }
            if piv != col {
                for k in 0..n {
                    self.data.swap(col * n + k, piv * n + k);
                }
                x.swap(col, piv);
            }
            let diag = self.data[col * n + col];
            for row in col + 1..n {
                let factor = self.data[row * n + col] / diag;
                if factor.abs() == 0.0 {
                    continue;
                }
                for k in col..n {
                    let v = self.data[col * n + k];
                    self.data[row * n + k] = self.data[row * n + k] - factor * v;
                }
                x[row] = x[row] - factor * x[col];
            }
        }
        for col in (0..n).rev() {
            x[col] = x[col] / self.data[col * n + col];
            for row in 0..col {
                let v = self.data[row * n + col];
                x[row] = x[row] - v * x[col];
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!((a + b) - b, a);
        let prod = a * b;
        assert!((prod.re - -11.0).abs() < 1e-12);
        assert!((prod.im - 2.0).abs() < 1e-12);
        let q = prod / b;
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
        assert_eq!(a.conj().im, -4.0);
    }

    #[test]
    fn phase_and_db() {
        let z = Complex::imag(1.0);
        assert!((z.arg_deg() - 90.0).abs() < 1e-12);
        assert!((Complex::real(10.0).db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn complex_lu_solves_known_system() {
        // (1+j)·x = 2 → x = 1−j.
        let mut m = CMatrix::zeros(1);
        m.add(0, 0, Complex::new(1.0, 1.0));
        let x = m.solve(&[Complex::real(2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12 && (x[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_lu_2x2_roundtrip() {
        let a = [
            [Complex::new(2.0, 1.0), Complex::new(0.0, -1.0)],
            [Complex::new(1.0, 0.0), Complex::new(3.0, 2.0)],
        ];
        let x_true = [Complex::new(1.0, -1.0), Complex::new(0.5, 2.0)];
        let b: Vec<Complex> = (0..2)
            .map(|r| a[r][0] * x_true[0] + a[r][1] * x_true[1])
            .collect();
        let mut m = CMatrix::zeros(2);
        for (r, row) in a.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m.add(r, c, v);
            }
        }
        let x = m.solve(&b).unwrap();
        for i in 0..2 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_complex_matrix_detected() {
        let mut m = CMatrix::zeros(2);
        assert_eq!(
            m.solve(&[Complex::ZERO, Complex::ZERO]),
            Err(SpiceError::SingularMatrix)
        );
    }
}
