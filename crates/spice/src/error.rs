use std::error::Error;
use std::fmt;

/// Errors produced by circuit construction or simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A device referenced a node id from a different netlist or beyond
    /// the node count.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Nodes defined in the netlist.
        nodes: usize,
    },
    /// A component value was non-physical (≤ 0 resistance, negative
    /// capacitance, …).
    InvalidValue {
        /// Device name.
        device: String,
        /// Explanation.
        reason: &'static str,
    },
    /// The matrix was singular even with gmin regularization.
    SingularMatrix,
    /// Newton–Raphson failed to converge after all homotopy fallbacks.
    NoConvergence {
        /// Analysis that failed.
        analysis: &'static str,
        /// Final residual norm.
        residual: f64,
    },
    /// A named source or node was not found.
    NotFound {
        /// The name looked up.
        name: String,
    },
    /// Invalid analysis parameters (zero step, reversed interval, …).
    InvalidAnalysis {
        /// Explanation.
        reason: &'static str,
    },
    /// The analysis was cancelled through a
    /// [`CancelToken`](crate::CancelToken) before completing.
    Cancelled {
        /// Analysis that was interrupted.
        analysis: &'static str,
    },
    /// The analysis exceeded its [`CancelToken`](crate::CancelToken)
    /// deadline before completing.
    DeadlineExceeded {
        /// Analysis that was interrupted.
        analysis: &'static str,
    },
}

impl SpiceError {
    /// True when retrying the same job with a stronger convergence aid
    /// (gmin stepping, source stepping, pseudo-transient) could plausibly
    /// succeed. Convergence failures are transient properties of the
    /// Newton iteration; everything else — malformed netlists, structural
    /// singularities, cancellation — is fatal and retrying wastes work.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SpiceError::NoConvergence { .. })
    }

    /// True when the analysis stopped because of an explicit cancel or an
    /// expired deadline rather than a simulation failure.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            SpiceError::Cancelled { .. } | SpiceError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::InvalidNode { node, nodes } => {
                write!(f, "node {node} does not exist (netlist has {nodes} nodes)")
            }
            SpiceError::InvalidValue { device, reason } => {
                write!(f, "invalid value for {device}: {reason}")
            }
            SpiceError::SingularMatrix => write!(f, "singular MNA matrix"),
            SpiceError::NoConvergence { analysis, residual } => {
                write!(f, "{analysis} failed to converge (residual {residual:.3e})")
            }
            SpiceError::NotFound { name } => write!(f, "no source or node named {name:?}"),
            SpiceError::InvalidAnalysis { reason } => write!(f, "invalid analysis: {reason}"),
            SpiceError::Cancelled { analysis } => write!(f, "{analysis} cancelled"),
            SpiceError::DeadlineExceeded { analysis } => {
                write!(f, "{analysis} exceeded its deadline")
            }
        }
    }
}

impl Error for SpiceError {}
