use std::error::Error;
use std::fmt;

/// Errors produced by circuit construction or simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A device referenced a node id from a different netlist or beyond
    /// the node count.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Nodes defined in the netlist.
        nodes: usize,
    },
    /// A component value was non-physical (≤ 0 resistance, negative
    /// capacitance, …).
    InvalidValue {
        /// Device name.
        device: String,
        /// Explanation.
        reason: &'static str,
    },
    /// The matrix was singular even with gmin regularization.
    SingularMatrix,
    /// Newton–Raphson failed to converge after all homotopy fallbacks.
    NoConvergence {
        /// Analysis that failed.
        analysis: &'static str,
        /// Final residual norm.
        residual: f64,
    },
    /// A named source or node was not found.
    NotFound {
        /// The name looked up.
        name: String,
    },
    /// Invalid analysis parameters (zero step, reversed interval, …).
    InvalidAnalysis {
        /// Explanation.
        reason: &'static str,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::InvalidNode { node, nodes } => {
                write!(f, "node {node} does not exist (netlist has {nodes} nodes)")
            }
            SpiceError::InvalidValue { device, reason } => {
                write!(f, "invalid value for {device}: {reason}")
            }
            SpiceError::SingularMatrix => write!(f, "singular MNA matrix"),
            SpiceError::NoConvergence { analysis, residual } => {
                write!(f, "{analysis} failed to converge (residual {residual:.3e})")
            }
            SpiceError::NotFound { name } => write!(f, "no source or node named {name:?}"),
            SpiceError::InvalidAnalysis { reason } => write!(f, "invalid analysis: {reason}"),
        }
    }
}

impl Error for SpiceError {}
