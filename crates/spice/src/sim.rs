//! The [`Simulator`] facade: one configured entry point for every
//! analysis.
//!
//! A `Simulator` borrows (or owns) a netlist, carries the solver choice,
//! operating-point policy, and cancellation token, and caches one
//! [`SolverWorkspace`] across analyses — so an op followed by a transient
//! (or a whole DC sweep) pays for the sparse symbolic factorization once.
//!
//! # Example
//!
//! ```
//! use fts_spice::netlist::{Netlist, Waveform};
//! use fts_spice::{Simulator, SolverKind};
//!
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let out = nl.node("out");
//! nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(2.0))?;
//! nl.resistor("R1", vin, out, 1.0e3)?;
//! nl.resistor("R2", out, Netlist::GROUND, 3.0e3)?;
//! let op = Simulator::new(&nl).solver(SolverKind::Auto).op()?;
//! assert!((op.voltage(out) - 1.5).abs() < 1e-6);
//! # Ok::<(), fts_spice::SpiceError>(())
//! ```

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::Arc;

use crate::analysis::{self, AcResult, OpOptions, OpResult, SampleSink, TranConfig, Transient};
use crate::cancel::CancelToken;
use crate::linalg::Symbolic;
use crate::netlist::{Netlist, SolverKind};
use crate::stamp::SolverWorkspace;
use crate::SpiceError;

/// A configured simulation session over one netlist.
///
/// Built with [`Simulator::new`] (borrowing) or [`Simulator::from_owned`];
/// builder methods select the solver, share a symbolic factorization,
/// restrict the operating-point homotopy ladder, or attach a
/// [`CancelToken`]. Analysis methods ([`op`](Simulator::op),
/// [`dc_sweep`](Simulator::dc_sweep), [`transient`](Simulator::transient),
/// [`ac`](Simulator::ac)) produce results bit-identical to the legacy
/// free functions.
pub struct Simulator<'a> {
    netlist: Cow<'a, Netlist>,
    op_options: OpOptions,
    cancel: Option<CancelToken>,
    // Lazily built on the first analysis, then reused; invalidated when a
    // builder method changes what `SolverWorkspace::for_netlist` would
    // produce. `None` inside the RefCell = not built yet.
    ws: RefCell<Option<SolverWorkspace>>,
}

impl<'a> Simulator<'a> {
    /// A simulator borrowing `netlist`. Methods that must mutate the
    /// circuit (solver choice, [`dc_sweep`](Simulator::dc_sweep)) clone it
    /// on first write.
    pub fn new(netlist: &'a Netlist) -> Simulator<'a> {
        Simulator {
            netlist: Cow::Borrowed(netlist),
            op_options: OpOptions::full(),
            cancel: None,
            ws: RefCell::new(None),
        }
    }

    /// A simulator owning its netlist — useful when the circuit is built
    /// for this session anyway, avoiding the copy-on-write clone.
    pub fn from_owned(netlist: Netlist) -> Simulator<'static> {
        Simulator {
            netlist: Cow::Owned(netlist),
            op_options: OpOptions::full(),
            cancel: None,
            ws: RefCell::new(None),
        }
    }

    /// Selects the linear-solver engine.
    pub fn solver(mut self, kind: SolverKind) -> Simulator<'a> {
        if self.netlist.solver_kind() != kind {
            self.netlist.to_mut().set_solver(kind);
            self.ws = RefCell::new(None);
        }
        self
    }

    /// Installs a shared sparse symbolic factorization (see
    /// [`Netlist::share_symbolic`]); ensembles of same-topology circuits
    /// amortize the symbolic analysis this way.
    pub fn share_symbolic(mut self, symbolic: Arc<Symbolic>) -> Simulator<'a> {
        self.netlist.to_mut().share_symbolic(symbolic);
        self.ws = RefCell::new(None);
        self
    }

    /// Restricts or extends the DC operating-point homotopy ladder.
    pub fn op_options(mut self, opts: OpOptions) -> Simulator<'a> {
        self.op_options = opts;
        self
    }

    /// Attaches a cancellation token, checked inside every Newton
    /// iteration and at every transient timestep.
    pub fn cancel_token(mut self, token: CancelToken) -> Simulator<'a> {
        self.cancel = Some(token);
        self
    }

    /// The netlist this simulator runs (after any builder mutations).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Runs `f` with the cached workspace, building it on first use. The
    /// workspace is moved into a fresh `RefCell` for the duration of the
    /// call (the analysis internals borrow it mutably per solve) and put
    /// back afterwards — even partial progress warms later calls.
    fn with_ws<R>(&self, netlist: &Netlist, f: impl FnOnce(&RefCell<SolverWorkspace>) -> R) -> R {
        let ws = self
            .ws
            .borrow_mut()
            .take()
            .unwrap_or_else(|| SolverWorkspace::for_netlist(netlist));
        let cell = RefCell::new(ws);
        let out = f(&cell);
        *self.ws.borrow_mut() = Some(cell.into_inner());
        out
    }

    /// Solves the DC operating point at `t = 0`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] when every permitted homotopy rung
    /// fails, [`SpiceError::SingularMatrix`] for structurally broken
    /// circuits, or a cancellation error from the attached token.
    pub fn op(&self) -> Result<OpResult, SpiceError> {
        self.op_at(0.0, None)
    }

    /// Solves the operating point with sources evaluated at time `t`,
    /// warm-starting from `initial` when provided.
    ///
    /// # Errors
    ///
    /// As for [`op`](Simulator::op).
    pub fn op_at(&self, t: f64, initial: Option<&[f64]>) -> Result<OpResult, SpiceError> {
        self.with_ws(&self.netlist, |ws| {
            analysis::op_at_impl(
                &self.netlist,
                t,
                initial,
                ws,
                &self.op_options,
                self.cancel.as_ref(),
            )
        })
    }

    /// Sweeps the DC value of the named voltage source, one operating
    /// point per value (warm-started along the sweep). Mutates this
    /// simulator's copy of the netlist; the borrowed original is
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotFound`] for an unknown source, or convergence /
    /// cancellation errors from the per-point solves.
    pub fn dc_sweep(&mut self, source: &str, values: &[f64]) -> Result<Vec<OpResult>, SpiceError> {
        // Waveform edits leave the MNA pattern intact, so the cached
        // workspace stays valid across the whole sweep.
        let ws = self
            .ws
            .borrow_mut()
            .take()
            .unwrap_or_else(|| SolverWorkspace::for_netlist(&self.netlist));
        let cell = RefCell::new(ws);
        let out = analysis::dc_sweep_impl(
            self.netlist.to_mut(),
            source,
            values,
            &cell,
            &self.op_options,
            self.cancel.as_ref(),
        );
        *self.ws.borrow_mut() = Some(cell.into_inner());
        out
    }

    /// Runs a transient analysis (fixed or adaptive stepping per
    /// [`TranConfig`]) and collects the full waveform.
    ///
    /// # Errors
    ///
    /// Propagates convergence, singularity, and cancellation errors;
    /// rejects invalid configurations.
    pub fn transient(&self, cfg: &TranConfig) -> Result<Transient, SpiceError> {
        cfg.validate()?;
        self.with_ws(&self.netlist, |ws| {
            analysis::transient_collect(
                &self.netlist,
                cfg,
                ws,
                &self.op_options,
                self.cancel.as_ref(),
            )
        })
    }

    /// Runs a transient analysis, streaming every accepted sample into
    /// `sink` instead of collecting the waveform — the bounded-memory
    /// path the batch engine uses.
    ///
    /// # Errors
    ///
    /// As for [`transient`](Simulator::transient).
    pub fn transient_into(
        &self,
        cfg: &TranConfig,
        sink: &mut dyn SampleSink,
    ) -> Result<(), SpiceError> {
        cfg.validate()?;
        self.with_ws(&self.netlist, |ws| {
            analysis::transient_into_impl(
                &self.netlist,
                cfg,
                ws,
                &self.op_options,
                self.cancel.as_ref(),
                sink,
            )
        })
    }

    /// Small-signal AC analysis: linearizes around the DC operating point
    /// and sweeps the named source with a unit phasor.
    ///
    /// # Errors
    ///
    /// Propagates operating-point failures, [`SpiceError::NotFound`] for
    /// an unknown source, and singular-matrix errors.
    pub fn ac(&self, ac_source: &str, freqs: &[f64]) -> Result<AcResult, SpiceError> {
        self.with_ws(&self.netlist, |ws| {
            analysis::ac_impl(
                &self.netlist,
                ac_source,
                freqs,
                ws,
                &self.op_options,
                self.cancel.as_ref(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    fn divider() -> (Netlist, crate::NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(2.0))
            .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 3.0e3).unwrap();
        (nl, out)
    }

    #[test]
    fn facade_op_matches_divider() {
        let (nl, out) = divider();
        let r = Simulator::new(&nl).op().unwrap();
        assert!((r.voltage(out) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn workspace_is_reused_across_analyses() {
        let (nl, out) = divider();
        let sim = Simulator::new(&nl).solver(SolverKind::Sparse);
        let a = sim.op().unwrap();
        let b = sim.op().unwrap();
        assert_eq!(a.voltage(out), b.voltage(out));
        // The second solve reused the cached workspace — the facade holds
        // exactly one.
        assert!(sim.ws.borrow().is_some());
    }

    #[test]
    fn dc_sweep_leaves_borrowed_netlist_untouched() {
        let (nl, out) = divider();
        let mut sim = Simulator::new(&nl);
        let results = sim.dc_sweep("V1", &[0.0, 4.0]).unwrap();
        assert!((results[1].voltage(out) - 3.0).abs() < 1e-6);
        // The original still drives 2 V.
        let r = Simulator::new(&nl).op().unwrap();
        assert!((r.voltage(out) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn cancelled_token_aborts_op() {
        let (nl, _) = divider();
        let token = CancelToken::new();
        token.cancel();
        let err = Simulator::new(&nl).cancel_token(token).op().unwrap_err();
        assert!(err.is_cancellation(), "got {err:?}");
    }

    #[test]
    fn newton_only_policy_still_solves_linear_circuits() {
        let (nl, out) = divider();
        let r = Simulator::new(&nl)
            .op_options(OpOptions::newton_only())
            .op()
            .unwrap();
        assert!((r.voltage(out) - 1.5).abs() < 1e-6);
    }
}
