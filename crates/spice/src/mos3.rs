//! A level-3-class short-channel MOSFET model.
//!
//! §VI-A of the paper plans "a more accurate model with more specific
//! equations, such as level-3 and BSIM, which includes more precise gate
//! and terminal capacitors and short-channel effect". This module provides
//! that step: mobility degradation, velocity saturation, channel-length
//! modulation, and Meyer-style constant gate capacitances (wired in by
//! [`crate::netlist::Netlist::nmos3`]).

/// Level-3-class parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mos3Params {
    /// Low-field transconductance parameter `Kp = µ0·Cox` \[A/V²\].
    pub kp: f64,
    /// Threshold voltage \[V\].
    pub vth: f64,
    /// Channel-length modulation \[1/V\].
    pub lambda: f64,
    /// Aspect ratio W/L.
    pub w_over_l: f64,
    /// Vertical-field mobility degradation θ \[1/V\]: µeff = µ0/(1+θ·Vov).
    pub theta: f64,
    /// Velocity-saturation voltage `Esat·L` \[V\]; `f64::INFINITY`
    /// recovers the long-channel square law.
    pub esat_l: f64,
    /// Gate-source capacitance \[F\].
    pub cgs: f64,
    /// Gate-drain capacitance \[F\].
    pub cgd: f64,
}

impl Mos3Params {
    /// Long-channel parameters with capacitances, θ = 0 and no velocity
    /// saturation — behaves like level-1.
    pub fn long_channel(kp: f64, vth: f64, lambda: f64, w_over_l: f64) -> Mos3Params {
        Mos3Params {
            kp,
            vth,
            lambda,
            w_over_l,
            theta: 0.0,
            esat_l: f64::INFINITY,
            cgs: 0.0,
            cgd: 0.0,
        }
    }

    /// Drain current \[A\] with the source as reference (`vds ≥ 0`;
    /// negative `vds` is folded by device symmetry).
    ///
    /// # Example
    ///
    /// ```
    /// use fts_spice::mos3::Mos3Params;
    ///
    /// let short = Mos3Params {
    ///     kp: 2e-5, vth: 0.4, lambda: 0.05, w_over_l: 2.0,
    ///     theta: 1.0, esat_l: 2.0, cgs: 0.0, cgd: 0.0,
    /// };
    /// let long = Mos3Params::long_channel(2e-5, 0.4, 0.05, 2.0);
    /// // Short-channel effects reduce the drive current.
    /// assert!(short.ids(5.0, 5.0) < long.ids(5.0, 5.0));
    /// ```
    pub fn ids(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            return -self.ids(vgs - vds, -vds);
        }
        let vov = vgs - self.vth;
        if vov <= 0.0 {
            return 0.0;
        }
        let mu_factor = 1.0 / (1.0 + self.theta * vov);
        let beta = self.kp * self.w_over_l * mu_factor;
        // Velocity-saturation-limited saturation voltage.
        let vdsat = if self.esat_l.is_finite() {
            vov * self.esat_l / (vov + self.esat_l)
        } else {
            vov
        };
        let triode = |v: f64| beta * (vov - 0.5 * v) * v;
        if vds <= vdsat {
            triode(vds) * (1.0 + self.lambda * vds)
        } else {
            triode(vdsat) * (1.0 + self.lambda * vds)
        }
    }

    /// Numerical small-signal conductances `(ids, gm, gds)` at a bias
    /// point (central differences; used by the MNA stamps).
    pub fn linearize(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        let h = 1e-6;
        let ids = self.ids(vgs, vds);
        let gm = (self.ids(vgs + h, vds) - self.ids(vgs - h, vds)) / (2.0 * h);
        let gds = (self.ids(vgs, vds + h) - self.ids(vgs, vds - h)) / (2.0 * h);
        (ids, gm, gds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short() -> Mos3Params {
        Mos3Params {
            kp: 2e-5,
            vth: 0.4,
            lambda: 0.05,
            w_over_l: 2.0,
            theta: 0.8,
            esat_l: 1.5,
            cgs: 1e-15,
            cgd: 1e-15,
        }
    }

    #[test]
    fn long_channel_limit_matches_level1() {
        let p = Mos3Params::long_channel(2e-5, 0.4, 0.05, 2.0);
        // Triode and saturation against the closed-form level-1.
        let beta = 2e-5 * 2.0;
        let tri = beta * ((1.6) * 0.5 - 0.125) * (1.0 + 0.05 * 0.5);
        assert!((p.ids(2.0, 0.5) - tri).abs() < 1e-18);
        let sat = 0.5 * beta * 1.6 * 1.6 * (1.0 + 0.05 * 3.0);
        assert!((p.ids(2.0, 3.0) - sat).abs() < 1e-18);
    }

    #[test]
    fn cutoff_and_continuity() {
        let p = short();
        assert_eq!(p.ids(0.3, 2.0), 0.0);
        // Continuity across vdsat.
        let vov: f64 = 2.0 - 0.4;
        let vdsat = vov * 1.5 / (vov + 1.5);
        let below = p.ids(2.0, vdsat - 1e-9);
        let above = p.ids(2.0, vdsat + 1e-9);
        assert!((below - above).abs() < 1e-12);
    }

    #[test]
    fn velocity_saturation_compresses_current() {
        let p = short();
        // Current grows sub-quadratically with vov under velocity
        // saturation: I(2·vov) < 4·I(vov) in deep saturation.
        let i1 = p.ids(0.4 + 1.0, 5.0);
        let i2 = p.ids(0.4 + 2.0, 5.0);
        assert!(i2 < 4.0 * i1, "i2 {i2:.3e} vs 4·i1 {:.3e}", 4.0 * i1);
    }

    #[test]
    fn linearize_matches_analytic_in_long_channel_saturation() {
        let p = Mos3Params::long_channel(2e-5, 0.4, 0.0, 2.0);
        let (ids, gm, gds) = p.linearize(2.0, 3.0);
        let beta = 2e-5 * 2.0;
        assert!((ids - 0.5 * beta * 1.6 * 1.6).abs() < 1e-15);
        assert!((gm - beta * 1.6).abs() < 1e-9, "gm {gm}");
        assert!(gds.abs() < 1e-9, "gds {gds}");
    }

    #[test]
    fn symmetry_under_terminal_swap() {
        let p = short();
        assert!((p.ids(2.0, -1.0) + p.ids(3.0, 1.0)).abs() < 1e-18);
    }
}
