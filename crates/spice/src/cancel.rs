//! Cooperative cancellation and deadlines for long-running analyses.
//!
//! A [`CancelToken`] is checked inside every Newton iteration and at every
//! transient timestep, so a runaway solve stops within one linear solve of
//! the cancel request — the latency guarantee the batch engine's deadline
//! scheduling is built on. Tokens are cheap to clone; clones share the
//! cancellation flag, while each clone may carry its own deadline (a batch
//! token fans out into per-job tokens that add the job's deadline on top
//! of the shared kill switch).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::SpiceError;

/// A cooperative cancellation handle with an optional deadline.
///
/// # Example
///
/// ```
/// use fts_spice::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// assert!(token.check("op").is_ok());
/// token.cancel();
/// assert!(token.check("op").is_err());
///
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// assert!(expired.check("transient").is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires and is not yet cancelled.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// A token sharing this token's cancellation flag but carrying its own
    /// deadline `timeout` from now. Cancelling either token cancels both;
    /// the deadline applies only to the derived token — this is how a
    /// batch-wide kill switch composes with per-job deadlines.
    pub fn child_with_deadline(&self, timeout: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// Requests cancellation. All clones (and deadline children) observe it
    /// at their next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True when [`cancel`](CancelToken::cancel) has been called on this
    /// token or any clone sharing its flag.
    pub fn cancel_requested(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// True when this token carries a deadline that has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cancellation check analyses call at every Newton iteration and
    /// transient timestep.
    ///
    /// # Errors
    ///
    /// [`SpiceError::Cancelled`] after an explicit cancel,
    /// [`SpiceError::DeadlineExceeded`] after the deadline passes.
    #[inline]
    pub fn check(&self, analysis: &'static str) -> Result<(), SpiceError> {
        if self.cancel_requested() {
            return Err(SpiceError::Cancelled { analysis });
        }
        if self.deadline_expired() {
            return Err(SpiceError::DeadlineExceeded { analysis });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(!t.cancel_requested());
        assert!(!t.deadline_expired());
        assert!(t.check("x").is_ok());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.cancel_requested());
        assert!(matches!(
            c.check("op"),
            Err(SpiceError::Cancelled { analysis: "op" })
        ));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.deadline_expired());
        assert!(matches!(
            t.check("transient"),
            Err(SpiceError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn child_deadline_does_not_leak_to_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::ZERO);
        assert!(child.deadline_expired());
        assert!(!parent.deadline_expired());
        // Shared flag: cancelling the parent cancels the child, and the
        // explicit cancel wins over the expired deadline in the error.
        parent.cancel();
        assert!(matches!(
            child.check("op"),
            Err(SpiceError::Cancelled { .. })
        ));
    }

    #[test]
    fn far_deadline_passes() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.check("op").is_ok());
    }
}
