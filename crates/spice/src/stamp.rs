//! MNA device stamping and the shared Newton kernel.

use crate::linalg::Matrix;
use crate::netlist::{Element, MosParams, Netlist};
use crate::SpiceError;

/// How capacitors are handled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CapMode {
    /// DC: capacitors are open circuits.
    Open,
    /// Transient step of size `dt` with the chosen integrator.
    Step { dt: f64, trapezoidal: bool },
}

/// Per-capacitor dynamic state (previous voltage and branch current).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CapState {
    pub v: f64,
    pub i: f64,
}

pub(crate) struct StampContext<'a> {
    pub t: f64,
    pub cap_mode: CapMode,
    pub cap_states: &'a [CapState],
    pub gmin: f64,
    pub source_scale: f64,
}

/// Index of a node voltage inside the unknown vector (`None` = ground).
fn vidx(node: crate::netlist::NodeId) -> Option<usize> {
    if node.index() == 0 {
        None
    } else {
        Some(node.index() - 1)
    }
}

fn voltage(x: &[f64], node: crate::netlist::NodeId) -> f64 {
    match vidx(node) {
        None => 0.0,
        Some(i) => x[i],
    }
}

fn add_conductance(a: &mut Matrix, i: Option<usize>, j: Option<usize>, g: f64) {
    if let Some(i) = i {
        a.add(i, i, g);
    }
    if let Some(j) = j {
        a.add(j, j, g);
    }
    if let (Some(i), Some(j)) = (i, j) {
        a.add(i, j, -g);
        a.add(j, i, -g);
    }
}

fn add_current(b: &mut [f64], into: Option<usize>, outof: Option<usize>, i: f64) {
    if let Some(n) = into {
        b[n] += i;
    }
    if let Some(n) = outof {
        b[n] -= i;
    }
}

/// Level-1 current and small-signal conductances (forward orientation,
/// `vds ≥ 0`).
fn level1(params: &MosParams, vgs: f64, vds: f64) -> (f64, f64, f64) {
    let beta = params.kp * params.w_over_l;
    let vov = vgs - params.vth;
    if vov <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let clm = 1.0 + params.lambda * vds;
    if vds <= vov {
        let ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * params.lambda;
        (ids, gm, gds)
    } else {
        let ids = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * params.lambda;
        (ids, gm, gds)
    }
}

/// Stamps every device into `(a, b)` around the linearization point `x`.
pub(crate) fn stamp_all(
    netlist: &Netlist,
    x: &[f64],
    a: &mut Matrix,
    b: &mut [f64],
    ctx: &StampContext<'_>,
) {
    let nv = netlist.node_count() - 1;
    let mut cap_index = 0usize;
    for dev in &netlist.devices {
        match &dev.element {
            Element::Resistor { a: na, b: nb, ohms } => {
                add_conductance(a, vidx(*na), vidx(*nb), 1.0 / ohms);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                match ctx.cap_mode {
                    CapMode::Open => {}
                    CapMode::Step { dt, trapezoidal } => {
                        let st = ctx.cap_states[cap_index];
                        let (g, ieq) = if trapezoidal {
                            let g = 2.0 * farads / dt;
                            (g, -(g * st.v + st.i))
                        } else {
                            let g = farads / dt;
                            (g, -g * st.v)
                        };
                        // Companion: i = g·v + ieq flowing a → b.
                        add_conductance(a, vidx(*na), vidx(*nb), g);
                        add_current(b, vidx(*nb), vidx(*na), ieq);
                    }
                }
                cap_index += 1;
            }
            Element::VSource {
                plus,
                minus,
                wave,
                branch,
            } => {
                let row = nv + branch;
                if let Some(p) = vidx(*plus) {
                    a.add(p, row, 1.0);
                    a.add(row, p, 1.0);
                }
                if let Some(m) = vidx(*minus) {
                    a.add(m, row, -1.0);
                    a.add(row, m, -1.0);
                }
                b[row] += wave.at(ctx.t) * ctx.source_scale;
            }
            Element::ISource { from, to, wave } => {
                add_current(b, vidx(*to), vidx(*from), wave.at(ctx.t) * ctx.source_scale);
            }
            Element::Nmos { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x, *d), voltage(x, *g), voltage(x, *s));
                // Symmetric pass-switch handling: the lower of d/s acts as
                // the source.
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x, ns);
                let (ids, gm, gds) = level1(params, vgs, vds_raw);
                // Linearized drain current: i = ids + gm·Δvgs + gds·Δvds.
                let ieq = ids - gm * vgs - gds * vds_raw;
                let (id_, is_, ig_) = (vidx(nd), vidx(ns), vidx(*g));
                // gds between nd and ns.
                add_conductance(a, id_, is_, gds + ctx.gmin);
                // gm contribution: current into nd proportional to (vg−vns).
                if let Some(r) = id_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, -gm);
                    }
                }
                if let Some(r) = is_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, -gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, gm);
                    }
                }
                // Constant part flows nd → ns.
                add_current(b, is_, id_, ieq);
            }
            Element::Nmos3 { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x, *d), voltage(x, *g), voltage(x, *s));
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x, ns);
                let (ids, gm, gds) = params.linearize(vgs, vds_raw);
                let ieq = ids - gm * vgs - gds * vds_raw;
                let (id_, is_, ig_) = (vidx(nd), vidx(ns), vidx(*g));
                add_conductance(a, id_, is_, gds + ctx.gmin);
                if let Some(r) = id_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, -gm);
                    }
                }
                if let Some(r) = is_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, -gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, gm);
                    }
                }
                add_current(b, is_, id_, ieq);
            }
        }
    }
    // Global gmin from every node to ground keeps matrices regular even
    // for floating subcircuits.
    for n in 0..nv {
        a.add(n, n, 1e-12);
    }
}

/// Updates capacitor states after a successful transient step.
pub(crate) fn update_cap_states(
    netlist: &Netlist,
    x: &[f64],
    states: &mut [CapState],
    dt: f64,
    trapezoidal: bool,
) {
    let mut cap_index = 0usize;
    for dev in &netlist.devices {
        if let Element::Capacitor { a, b, farads } = &dev.element {
            let v = voltage(x, *a) - voltage(x, *b);
            let st = &mut states[cap_index];
            let i = if trapezoidal {
                (2.0 * farads / dt) * (v - st.v) - st.i
            } else {
                (farads / dt) * (v - st.v)
            };
            st.v = v;
            st.i = i;
            cap_index += 1;
        }
    }
}

/// Initializes capacitor states from an operating point.
pub(crate) fn init_cap_states(netlist: &Netlist, x: &[f64]) -> Vec<CapState> {
    let mut out = Vec::new();
    for dev in &netlist.devices {
        if let Element::Capacitor { a, b, .. } = &dev.element {
            out.push(CapState {
                v: voltage(x, *a) - voltage(x, *b),
                i: 0.0,
            });
        }
    }
    out
}

/// A converged Newton solve plus the diagnostics the caller reports.
pub(crate) struct NewtonSolve {
    /// The converged unknown vector.
    pub x: Vec<f64>,
    /// Iterations consumed (at least 1).
    pub iterations: usize,
    /// Largest absolute damped update of the final iteration — the
    /// step-norm convergence residual.
    pub max_step: f64,
}

/// Newton–Raphson around [`stamp_all`]; returns the converged unknown
/// vector together with iteration diagnostics.
pub(crate) fn newton(
    netlist: &Netlist,
    ctx: &StampContext<'_>,
    x0: &[f64],
    max_iterations: usize,
) -> Result<NewtonSolve, SpiceError> {
    let n = netlist.unknown_count();
    let mut x = x0.to_vec();
    let mut a = Matrix::zeros(n);
    for iteration in 1..=max_iterations {
        a.clear();
        let mut b = vec![0.0; n];
        stamp_all(netlist, &x, &mut a, &mut b, ctx);
        let x_new = a.clone().solve(&b)?;
        // Voltage-step damping stabilizes MOS Newton iterations.
        let nv = netlist.node_count() - 1;
        let mut max_dv = 0.0f64;
        for i in 0..nv {
            max_dv = max_dv.max((x_new[i] - x[i]).abs());
        }
        let damp = if max_dv > 2.0 { 2.0 / max_dv } else { 1.0 };
        let mut converged = true;
        let mut max_step = 0.0f64;
        for i in 0..n {
            let step = (x_new[i] - x[i]) * damp;
            if step.abs() > 1e-9 + 1e-6 * x[i].abs() {
                converged = false;
            }
            max_step = max_step.max(step.abs());
            x[i] += step;
        }
        if converged && damp == 1.0 {
            return Ok(NewtonSolve {
                x,
                iterations: iteration,
                max_step,
            });
        }
    }
    Err(SpiceError::NoConvergence {
        analysis: "newton",
        residual: f64::NAN,
    })
}

/// Stamps the small-signal (AC) system at angular frequency `omega`,
/// linearized around the operating point `x_op`. The voltage source named
/// `ac_source` receives a unit AC stimulus; all other independent sources
/// are zeroed.
pub(crate) fn stamp_ac(
    netlist: &Netlist,
    x_op: &[f64],
    omega: f64,
    ac_source: &str,
    a: &mut crate::complex::CMatrix,
    b: &mut [crate::complex::Complex],
) {
    use crate::complex::Complex;
    let nv = netlist.node_count() - 1;
    let mut addc =
        |a: &mut crate::complex::CMatrix, i: Option<usize>, j: Option<usize>, y: Complex| {
            if let Some(i) = i {
                a.add(i, i, y);
            }
            if let Some(j) = j {
                a.add(j, j, y);
            }
            if let (Some(i), Some(j)) = (i, j) {
                a.add(i, j, -y);
                a.add(j, i, -y);
            }
        };
    for dev in &netlist.devices {
        match &dev.element {
            Element::Resistor { a: na, b: nb, ohms } => {
                addc(a, vidx(*na), vidx(*nb), Complex::real(1.0 / ohms));
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                addc(a, vidx(*na), vidx(*nb), Complex::imag(omega * farads));
            }
            Element::VSource {
                plus,
                minus,
                branch,
                ..
            } => {
                let row = nv + branch;
                if let Some(p) = vidx(*plus) {
                    a.add(p, row, Complex::ONE);
                    a.add(row, p, Complex::ONE);
                }
                if let Some(m) = vidx(*minus) {
                    a.add(m, row, -Complex::ONE);
                    a.add(row, m, -Complex::ONE);
                }
                if dev.name == ac_source {
                    b[row] += Complex::ONE;
                }
            }
            Element::ISource { .. } => {}
            Element::Nmos { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x_op, *d), voltage(x_op, *g), voltage(x_op, *s));
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x_op, ns);
                let (_, gm, gds) = level1(params, vgs, vds_raw);
                stamp_ac_mos(a, vidx(nd), vidx(ns), vidx(*g), gm, gds, &mut addc);
            }
            Element::Nmos3 { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x_op, *d), voltage(x_op, *g), voltage(x_op, *s));
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x_op, ns);
                let (_, gm, gds) = params.linearize(vgs, vds_raw);
                stamp_ac_mos(a, vidx(nd), vidx(ns), vidx(*g), gm, gds, &mut addc);
            }
        }
    }
    for n in 0..nv {
        a.add(n, n, crate::complex::Complex::real(1e-12));
    }
}

fn stamp_ac_mos(
    a: &mut crate::complex::CMatrix,
    id_: Option<usize>,
    is_: Option<usize>,
    ig_: Option<usize>,
    gm: f64,
    gds: f64,
    addc: &mut impl FnMut(
        &mut crate::complex::CMatrix,
        Option<usize>,
        Option<usize>,
        crate::complex::Complex,
    ),
) {
    use crate::complex::Complex;
    addc(a, id_, is_, Complex::real(gds + 1e-12));
    if let Some(r) = id_ {
        if let Some(c) = ig_ {
            a.add(r, c, Complex::real(gm));
        }
        if let Some(c) = is_ {
            a.add(r, c, Complex::real(-gm));
        }
    }
    if let Some(r) = is_ {
        if let Some(c) = ig_ {
            a.add(r, c, Complex::real(-gm));
        }
        if let Some(c) = is_ {
            a.add(r, c, Complex::real(gm));
        }
    }
}
