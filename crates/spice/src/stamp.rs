//! MNA device stamping and the shared Newton kernel.
//!
//! Two stamping paths exist:
//!
//! * the dense reference path ([`stamp_all`] into a [`Matrix`]), kept as
//!   the oracle for small systems and for the `solver_compare` tests, and
//! * the sparse hot path ([`SparseSystem`]), where every device resolves
//!   its matrix slots once at build time and each Newton iteration rewrites
//!   values in place — no allocation, no hashing, no binary search.
//!
//! [`SolverWorkspace`] picks between them from the netlist's
//! [`SolverKind`](crate::netlist::SolverKind) and size.

use std::sync::Arc;

use crate::cancel::CancelToken;
use crate::linalg::{Matrix, SparseLu, SparseMatrix, Symbolic};
use crate::netlist::{Element, MosParams, Netlist, SolverKind};
use crate::SpiceError;

/// How capacitors are handled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CapMode {
    /// DC: capacitors are open circuits.
    Open,
    /// Transient step of size `dt` with the chosen integrator.
    Step { dt: f64, trapezoidal: bool },
}

/// Per-capacitor dynamic state (previous voltage and branch current).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CapState {
    pub v: f64,
    pub i: f64,
}

pub(crate) struct StampContext<'a> {
    pub t: f64,
    pub cap_mode: CapMode,
    pub cap_states: &'a [CapState],
    pub gmin: f64,
    pub source_scale: f64,
    /// Cooperative cancellation, checked at every Newton iteration so a
    /// cancel or deadline stops the solve within one linear solve.
    pub cancel: Option<&'a CancelToken>,
}

/// Index of a node voltage inside the unknown vector (`None` = ground).
fn vidx(node: crate::netlist::NodeId) -> Option<usize> {
    if node.index() == 0 {
        None
    } else {
        Some(node.index() - 1)
    }
}

fn voltage(x: &[f64], node: crate::netlist::NodeId) -> f64 {
    match vidx(node) {
        None => 0.0,
        Some(i) => x[i],
    }
}

fn add_conductance(a: &mut Matrix, i: Option<usize>, j: Option<usize>, g: f64) {
    if let Some(i) = i {
        a.add(i, i, g);
    }
    if let Some(j) = j {
        a.add(j, j, g);
    }
    if let (Some(i), Some(j)) = (i, j) {
        a.add(i, j, -g);
        a.add(j, i, -g);
    }
}

fn add_current(b: &mut [f64], into: Option<usize>, outof: Option<usize>, i: f64) {
    if let Some(n) = into {
        b[n] += i;
    }
    if let Some(n) = outof {
        b[n] -= i;
    }
}

/// Level-1 current and small-signal conductances (forward orientation,
/// `vds ≥ 0`).
fn level1(params: &MosParams, vgs: f64, vds: f64) -> (f64, f64, f64) {
    let beta = params.kp * params.w_over_l;
    let vov = vgs - params.vth;
    if vov <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let clm = 1.0 + params.lambda * vds;
    if vds <= vov {
        let ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * params.lambda;
        (ids, gm, gds)
    } else {
        let ids = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * params.lambda;
        (ids, gm, gds)
    }
}

/// Stamps every device into `(a, b)` around the linearization point `x`.
pub(crate) fn stamp_all(
    netlist: &Netlist,
    x: &[f64],
    a: &mut Matrix,
    b: &mut [f64],
    ctx: &StampContext<'_>,
) {
    let nv = netlist.node_count() - 1;
    let mut cap_index = 0usize;
    for dev in &netlist.devices {
        match &dev.element {
            Element::Resistor { a: na, b: nb, ohms } => {
                add_conductance(a, vidx(*na), vidx(*nb), 1.0 / ohms);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                match ctx.cap_mode {
                    CapMode::Open => {}
                    CapMode::Step { dt, trapezoidal } => {
                        let st = ctx.cap_states[cap_index];
                        let (g, ieq) = if trapezoidal {
                            let g = 2.0 * farads / dt;
                            (g, -(g * st.v + st.i))
                        } else {
                            let g = farads / dt;
                            (g, -g * st.v)
                        };
                        // Companion: i = g·v + ieq flowing a → b.
                        add_conductance(a, vidx(*na), vidx(*nb), g);
                        add_current(b, vidx(*nb), vidx(*na), ieq);
                    }
                }
                cap_index += 1;
            }
            Element::VSource {
                plus,
                minus,
                wave,
                branch,
            } => {
                let row = nv + branch;
                if let Some(p) = vidx(*plus) {
                    a.add(p, row, 1.0);
                    a.add(row, p, 1.0);
                }
                if let Some(m) = vidx(*minus) {
                    a.add(m, row, -1.0);
                    a.add(row, m, -1.0);
                }
                b[row] += wave.at(ctx.t) * ctx.source_scale;
            }
            Element::ISource { from, to, wave } => {
                add_current(b, vidx(*to), vidx(*from), wave.at(ctx.t) * ctx.source_scale);
            }
            Element::Nmos { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x, *d), voltage(x, *g), voltage(x, *s));
                // Symmetric pass-switch handling: the lower of d/s acts as
                // the source.
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x, ns);
                let (ids, gm, gds) = level1(params, vgs, vds_raw);
                // Linearized drain current: i = ids + gm·Δvgs + gds·Δvds.
                let ieq = ids - gm * vgs - gds * vds_raw;
                let (id_, is_, ig_) = (vidx(nd), vidx(ns), vidx(*g));
                // gds between nd and ns.
                add_conductance(a, id_, is_, gds + ctx.gmin);
                // gm contribution: current into nd proportional to (vg−vns).
                if let Some(r) = id_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, -gm);
                    }
                }
                if let Some(r) = is_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, -gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, gm);
                    }
                }
                // Constant part flows nd → ns.
                add_current(b, is_, id_, ieq);
            }
            Element::Nmos3 { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x, *d), voltage(x, *g), voltage(x, *s));
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x, ns);
                let (ids, gm, gds) = params.linearize(vgs, vds_raw);
                let ieq = ids - gm * vgs - gds * vds_raw;
                let (id_, is_, ig_) = (vidx(nd), vidx(ns), vidx(*g));
                add_conductance(a, id_, is_, gds + ctx.gmin);
                if let Some(r) = id_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, -gm);
                    }
                }
                if let Some(r) = is_ {
                    if let Some(c) = ig_ {
                        a.add(r, c, -gm);
                    }
                    if let Some(c) = is_ {
                        a.add(r, c, gm);
                    }
                }
                add_current(b, is_, id_, ieq);
            }
        }
    }
    // Global gmin from every node to ground keeps matrices regular even
    // for floating subcircuits.
    for n in 0..nv {
        a.add(n, n, 1e-12);
    }
}

/// Updates capacitor states after a successful transient step.
pub(crate) fn update_cap_states(
    netlist: &Netlist,
    x: &[f64],
    states: &mut [CapState],
    dt: f64,
    trapezoidal: bool,
) {
    let mut cap_index = 0usize;
    for dev in &netlist.devices {
        if let Element::Capacitor { a, b, farads } = &dev.element {
            let v = voltage(x, *a) - voltage(x, *b);
            let st = &mut states[cap_index];
            let i = if trapezoidal {
                (2.0 * farads / dt) * (v - st.v) - st.i
            } else {
                (farads / dt) * (v - st.v)
            };
            st.v = v;
            st.i = i;
            cap_index += 1;
        }
    }
}

/// Initializes capacitor states from an operating point.
pub(crate) fn init_cap_states(netlist: &Netlist, x: &[f64]) -> Vec<CapState> {
    let mut out = Vec::new();
    for dev in &netlist.devices {
        if let Element::Capacitor { a, b, .. } = &dev.element {
            out.push(CapState {
                v: voltage(x, *a) - voltage(x, *b),
                i: 0.0,
            });
        }
    }
    out
}

/// Sentinel for "this stamp touches ground and has no matrix slot / rhs
/// row". Using a plain `usize` instead of `Option<usize>` keeps the plan
/// structs `Copy` and the hot-loop branches cheap.
const NO_SLOT: usize = usize::MAX;

/// Resolved slots for a two-terminal conductance stamp between unknowns
/// `i` and `j` (the classic `+g/+g/-g/-g` quadruple).
#[derive(Debug, Clone, Copy)]
struct PairSlots {
    ii: usize,
    jj: usize,
    ij: usize,
    ji: usize,
}

impl PairSlots {
    fn resolve(mat: &SparseMatrix, i: Option<usize>, j: Option<usize>) -> PairSlots {
        PairSlots {
            ii: entry_slot(mat, i, i),
            jj: entry_slot(mat, j, j),
            ij: entry_slot(mat, i, j),
            ji: entry_slot(mat, j, i),
        }
    }

    /// Mirrors [`add_conductance`]: when `i == j` the four writes hit the
    /// same slot and net to zero, exactly like the dense stamp.
    #[inline]
    fn stamp(&self, values: &mut [f64], g: f64) {
        if self.ii != NO_SLOT {
            values[self.ii] += g;
        }
        if self.jj != NO_SLOT {
            values[self.jj] += g;
        }
        if self.ij != NO_SLOT {
            values[self.ij] -= g;
        }
        if self.ji != NO_SLOT {
            values[self.ji] -= g;
        }
    }

    /// [`stamp`](PairSlots::stamp) into lane `lane` of a lane-minor value
    /// array with `lanes` lanes per slot.
    #[inline]
    fn stamp_lane(&self, values: &mut [f64], lanes: usize, lane: usize, g: f64) {
        if self.ii != NO_SLOT {
            values[self.ii * lanes + lane] += g;
        }
        if self.jj != NO_SLOT {
            values[self.jj * lanes + lane] += g;
        }
        if self.ij != NO_SLOT {
            values[self.ij * lanes + lane] -= g;
        }
        if self.ji != NO_SLOT {
            values[self.ji * lanes + lane] -= g;
        }
    }
}

fn entry_slot(mat: &SparseMatrix, i: Option<usize>, j: Option<usize>) -> usize {
    match (i, j) {
        (Some(i), Some(j)) => mat
            .slot(i, j)
            .expect("MNA pattern covers every device stamp"),
        _ => NO_SLOT,
    }
}

fn rhs_row(i: Option<usize>) -> usize {
    i.unwrap_or(NO_SLOT)
}

/// Per-device stamping plan: matrix slots and rhs rows resolved once at
/// build time so iterations never search the pattern.
#[derive(Debug, Clone, Copy)]
enum DevicePlan {
    Resistor {
        pair: PairSlots,
    },
    Capacitor {
        pair: PairSlots,
        a_row: usize,
        b_row: usize,
        cap_index: usize,
    },
    VSource {
        /// Slots (plus,row) / (row,plus) / (minus,row) / (row,minus).
        pr: usize,
        rp: usize,
        mr: usize,
        rm: usize,
        row: usize,
    },
    ISource {
        to_row: usize,
        from_row: usize,
    },
    Mos {
        /// The drain/source conductance quadruple; `ii/jj/ij/ji` double as
        /// the `(d,d)/(s,s)/(d,s)/(s,d)` gm slots.
        pair: PairSlots,
        dg: usize,
        sg: usize,
        d_row: usize,
        s_row: usize,
    },
}

/// Collects the MNA sparsity pattern of a netlist. Capacitor stamps are
/// always included so one pattern (and one symbolic analysis) serves both
/// DC (`CapMode::Open`) and transient companion stamping.
pub(crate) fn mna_pattern(netlist: &Netlist) -> SparseMatrix {
    let n = netlist.unknown_count();
    let nv = netlist.node_count() - 1;
    let mut entries: Vec<(usize, usize)> = Vec::new();
    let pair = |entries: &mut Vec<(usize, usize)>, i: Option<usize>, j: Option<usize>| {
        if let Some(i) = i {
            entries.push((i, i));
        }
        if let Some(j) = j {
            entries.push((j, j));
        }
        if let (Some(i), Some(j)) = (i, j) {
            entries.push((i, j));
            entries.push((j, i));
        }
    };
    for dev in &netlist.devices {
        match &dev.element {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                pair(&mut entries, vidx(*a), vidx(*b));
            }
            Element::VSource {
                plus,
                minus,
                branch,
                ..
            } => {
                let row = nv + branch;
                if let Some(p) = vidx(*plus) {
                    entries.push((p, row));
                    entries.push((row, p));
                }
                if let Some(m) = vidx(*minus) {
                    entries.push((m, row));
                    entries.push((row, m));
                }
            }
            Element::ISource { .. } => {}
            Element::Nmos { d, g, s, .. } | Element::Nmos3 { d, g, s, .. } => {
                // Union of both bias orientations: the drain/source pair
                // quadruple plus gm columns at the gate for both rows.
                pair(&mut entries, vidx(*d), vidx(*s));
                if let (Some(di), Some(gi)) = (vidx(*d), vidx(*g)) {
                    entries.push((di, gi));
                }
                if let (Some(si), Some(gi)) = (vidx(*s), vidx(*g)) {
                    entries.push((si, gi));
                }
            }
        }
    }
    // Global gmin diagonal on every node row.
    for k in 0..nv {
        entries.push((k, k));
    }
    SparseMatrix::from_entries(n, entries)
}

/// The sparse MNA system for one netlist topology: fixed-pattern matrix,
/// per-device slot plans, and the linear/nonlinear stamping split.
///
/// [`begin`](SparseSystem::begin) stamps everything bias-independent (R, C
/// companion, sources, gmin diagonal) into a baseline once per Newton
/// solve; [`iterate`](SparseSystem::iterate) copies the baseline and
/// restamps only the MOSFETs around the new linearization point.
pub(crate) struct SparseSystem {
    mat: SparseMatrix,
    plans: Vec<DevicePlan>,
    diag_slots: Vec<usize>,
    lin_values: Vec<f64>,
    lin_b: Vec<f64>,
}

impl SparseSystem {
    pub fn new(netlist: &Netlist) -> SparseSystem {
        let n = netlist.unknown_count();
        let nv = netlist.node_count() - 1;
        let mat = mna_pattern(netlist);
        let mut plans = Vec::with_capacity(netlist.devices.len());
        let mut cap_index = 0usize;
        for dev in &netlist.devices {
            plans.push(match &dev.element {
                Element::Resistor { a, b, .. } => DevicePlan::Resistor {
                    pair: PairSlots::resolve(&mat, vidx(*a), vidx(*b)),
                },
                Element::Capacitor { a, b, .. } => {
                    let plan = DevicePlan::Capacitor {
                        pair: PairSlots::resolve(&mat, vidx(*a), vidx(*b)),
                        a_row: rhs_row(vidx(*a)),
                        b_row: rhs_row(vidx(*b)),
                        cap_index,
                    };
                    cap_index += 1;
                    plan
                }
                Element::VSource {
                    plus,
                    minus,
                    branch,
                    ..
                } => {
                    let row = nv + branch;
                    DevicePlan::VSource {
                        pr: entry_slot(&mat, vidx(*plus), Some(row)),
                        rp: entry_slot(&mat, Some(row), vidx(*plus)),
                        mr: entry_slot(&mat, vidx(*minus), Some(row)),
                        rm: entry_slot(&mat, Some(row), vidx(*minus)),
                        row,
                    }
                }
                Element::ISource { from, to, .. } => DevicePlan::ISource {
                    to_row: rhs_row(vidx(*to)),
                    from_row: rhs_row(vidx(*from)),
                },
                Element::Nmos { d, g, s, .. } | Element::Nmos3 { d, g, s, .. } => {
                    let (di, si, gi) = (vidx(*d), vidx(*s), vidx(*g));
                    DevicePlan::Mos {
                        pair: PairSlots::resolve(&mat, di, si),
                        dg: entry_slot(&mat, di, gi),
                        sg: entry_slot(&mat, si, gi),
                        d_row: rhs_row(di),
                        s_row: rhs_row(si),
                    }
                }
            });
        }
        let diag_slots = (0..nv)
            .map(|k| mat.slot(k, k).expect("diagonal in pattern"))
            .collect();
        let nnz = mat.nnz();
        SparseSystem {
            mat,
            plans,
            diag_slots,
            lin_values: vec![0.0; nnz],
            lin_b: vec![0.0; n],
        }
    }

    pub fn matrix(&self) -> &SparseMatrix {
        &self.mat
    }

    /// Stamps the bias-independent baseline (linear devices, sources, gmin
    /// diagonal) for one Newton solve under `ctx`.
    pub fn begin(&mut self, netlist: &Netlist, ctx: &StampContext<'_>) {
        debug_assert_eq!(netlist.devices.len(), self.plans.len(), "plan drift");
        self.lin_values.fill(0.0);
        self.lin_b.fill(0.0);
        for (dev, plan) in netlist.devices.iter().zip(&self.plans) {
            match (&dev.element, plan) {
                (Element::Resistor { ohms, .. }, DevicePlan::Resistor { pair }) => {
                    pair.stamp(&mut self.lin_values, 1.0 / ohms);
                }
                (
                    Element::Capacitor { farads, .. },
                    DevicePlan::Capacitor {
                        pair,
                        a_row,
                        b_row,
                        cap_index,
                    },
                ) => match ctx.cap_mode {
                    CapMode::Open => {}
                    CapMode::Step { dt, trapezoidal } => {
                        let st = ctx.cap_states[*cap_index];
                        let (g, ieq) = if trapezoidal {
                            let g = 2.0 * farads / dt;
                            (g, -(g * st.v + st.i))
                        } else {
                            let g = farads / dt;
                            (g, -g * st.v)
                        };
                        pair.stamp(&mut self.lin_values, g);
                        if *b_row != NO_SLOT {
                            self.lin_b[*b_row] += ieq;
                        }
                        if *a_row != NO_SLOT {
                            self.lin_b[*a_row] -= ieq;
                        }
                    }
                },
                (
                    Element::VSource { wave, .. },
                    DevicePlan::VSource {
                        pr,
                        rp,
                        mr,
                        rm,
                        row,
                    },
                ) => {
                    if *pr != NO_SLOT {
                        self.lin_values[*pr] += 1.0;
                        self.lin_values[*rp] += 1.0;
                    }
                    if *mr != NO_SLOT {
                        self.lin_values[*mr] -= 1.0;
                        self.lin_values[*rm] -= 1.0;
                    }
                    self.lin_b[*row] += wave.at(ctx.t) * ctx.source_scale;
                }
                (Element::ISource { wave, .. }, DevicePlan::ISource { to_row, from_row }) => {
                    let i = wave.at(ctx.t) * ctx.source_scale;
                    if *to_row != NO_SLOT {
                        self.lin_b[*to_row] += i;
                    }
                    if *from_row != NO_SLOT {
                        self.lin_b[*from_row] -= i;
                    }
                }
                (Element::Nmos { .. } | Element::Nmos3 { .. }, DevicePlan::Mos { .. }) => {}
                _ => unreachable!("device/plan mismatch"),
            }
        }
        for &s in &self.diag_slots {
            self.lin_values[s] += 1e-12;
        }
    }

    /// Restamps the full system around linearization point `x`: copies the
    /// linear baseline, then applies only the MOSFET stamps. Zero
    /// allocation; `b` must have length `unknown_count`.
    pub fn iterate(&mut self, netlist: &Netlist, x: &[f64], ctx: &StampContext<'_>, b: &mut [f64]) {
        self.mat.values_mut().copy_from_slice(&self.lin_values);
        b.copy_from_slice(&self.lin_b);
        let vals = self.mat.values_mut();
        for (dev, plan) in netlist.devices.iter().zip(&self.plans) {
            let DevicePlan::Mos {
                pair,
                dg,
                sg,
                d_row,
                s_row,
            } = plan
            else {
                continue;
            };
            let (ids, gm, gds, forward, vgs, vds) = match &dev.element {
                Element::Nmos { d, g, s, params } => {
                    let (vd, vg, vs) = (voltage(x, *d), voltage(x, *g), voltage(x, *s));
                    let forward = vd >= vs;
                    let (vds, vgs) = if forward {
                        (vd - vs, vg - vs)
                    } else {
                        (vs - vd, vg - vd)
                    };
                    let (ids, gm, gds) = level1(params, vgs, vds);
                    (ids, gm, gds, forward, vgs, vds)
                }
                Element::Nmos3 { d, g, s, params } => {
                    let (vd, vg, vs) = (voltage(x, *d), voltage(x, *g), voltage(x, *s));
                    let forward = vd >= vs;
                    let (vds, vgs) = if forward {
                        (vd - vs, vg - vs)
                    } else {
                        (vs - vd, vg - vd)
                    };
                    let (ids, gm, gds) = params.linearize(vgs, vds);
                    (ids, gm, gds, forward, vgs, vds)
                }
                _ => unreachable!("Mos plan on non-MOS device"),
            };
            let ieq = ids - gm * vgs - gds * vds;
            pair.stamp(vals, gds + ctx.gmin);
            if forward {
                if *dg != NO_SLOT {
                    vals[*dg] += gm;
                }
                if pair.ij != NO_SLOT {
                    vals[pair.ij] -= gm;
                }
                if *sg != NO_SLOT {
                    vals[*sg] -= gm;
                }
                if pair.jj != NO_SLOT {
                    vals[pair.jj] += gm;
                }
                if *s_row != NO_SLOT {
                    b[*s_row] += ieq;
                }
                if *d_row != NO_SLOT {
                    b[*d_row] -= ieq;
                }
            } else {
                if *sg != NO_SLOT {
                    vals[*sg] += gm;
                }
                if pair.ji != NO_SLOT {
                    vals[pair.ji] -= gm;
                }
                if *dg != NO_SLOT {
                    vals[*dg] -= gm;
                }
                if pair.ii != NO_SLOT {
                    vals[pair.ii] += gm;
                }
                if *d_row != NO_SLOT {
                    b[*d_row] += ieq;
                }
                if *s_row != NO_SLOT {
                    b[*s_row] -= ieq;
                }
            }
        }
    }
}

/// The lane-batched counterpart of [`SparseSystem`]: one set of device
/// plans (resolved from a reference netlist) applied to K same-topology
/// lane netlists stamping into a [`SparseMatrixEnsemble`].
///
/// Restricted to DC operating-point stamping (`CapMode::Open`): the
/// ensemble Monte Carlo path batches DC evaluations only, so capacitors
/// are open circuits and no per-lane companion state exists.
pub(crate) struct EnsembleSystem {
    mat: crate::linalg::SparseMatrixEnsemble,
    plans: Vec<DevicePlan>,
    diag_slots: Vec<usize>,
    /// Lane-minor linear baseline values, `nnz * lanes`.
    lin_values: Vec<f64>,
    /// Lane-minor linear baseline rhs, `unknowns * lanes`.
    lin_b: Vec<f64>,
    /// The *previous* [`begin`](EnsembleSystem::begin)'s rhs — the
    /// source-continuation anchor. Between two solves of an
    /// input-assignment sweep only source values change, and source
    /// values enter the MNA system through the rhs alone (vsource rows
    /// stamp constant ±1 matrix entries), so interpolating the rhs
    /// interpolates the whole system between the two assignments.
    lin_b_prev: Vec<f64>,
}

impl EnsembleSystem {
    /// Builds plans from `reference`'s topology with `lanes` value lanes.
    /// Every netlist later stamped must satisfy
    /// [`Netlist::same_topology`] against the reference.
    pub fn new(reference: &Netlist, lanes: usize) -> EnsembleSystem {
        let scalar = SparseSystem::new(reference);
        let n = reference.unknown_count();
        let nnz = scalar.mat.nnz();
        EnsembleSystem {
            mat: crate::linalg::SparseMatrixEnsemble::new(scalar.mat, lanes),
            plans: scalar.plans,
            diag_slots: scalar.diag_slots,
            lin_values: vec![0.0; nnz * lanes],
            lin_b: vec![0.0; n * lanes],
            lin_b_prev: vec![0.0; n * lanes],
        }
    }

    pub fn matrix(&self) -> &crate::linalg::SparseMatrixEnsemble {
        &self.mat
    }

    /// Resizes to `lanes` value lanes, zeroing lane state. A no-op when
    /// the lane count is unchanged, so the previous solve's rhs survives
    /// for [`begin`](EnsembleSystem::begin) to stash as the
    /// source-continuation anchor.
    pub fn set_lanes(&mut self, lanes: usize) {
        if lanes == self.mat.lanes()
            && self.lin_values.len() == self.mat.nnz() * lanes
            && self.lin_b.len() == self.mat.n() * lanes
        {
            return;
        }
        self.mat.set_lanes(lanes);
        self.lin_values.clear();
        self.lin_values.resize(self.mat.nnz() * lanes, 0.0);
        self.lin_b.clear();
        self.lin_b.resize(self.mat.n() * lanes, 0.0);
        self.lin_b_prev.clear();
        self.lin_b_prev.resize(self.mat.n() * lanes, 0.0);
    }

    /// Stamps every lane's bias-independent baseline (resistors, sources,
    /// gmin diagonal) under `ctx`. DC only; see the type docs.
    pub fn begin(&mut self, lanes: &[Netlist], ctx: &StampContext<'_>) {
        let l = self.mat.lanes();
        assert_eq!(lanes.len(), l, "lane netlist count mismatch");
        debug_assert!(
            matches!(ctx.cap_mode, CapMode::Open),
            "ensemble stamping is DC-only"
        );
        self.lin_b_prev.copy_from_slice(&self.lin_b);
        self.lin_values.fill(0.0);
        self.lin_b.fill(0.0);
        for (lane, nl) in lanes.iter().enumerate() {
            debug_assert_eq!(nl.devices.len(), self.plans.len(), "plan drift");
            for (dev, plan) in nl.devices.iter().zip(&self.plans) {
                match (&dev.element, plan) {
                    (Element::Resistor { ohms, .. }, DevicePlan::Resistor { pair }) => {
                        pair.stamp_lane(&mut self.lin_values, l, lane, 1.0 / ohms);
                    }
                    (Element::Capacitor { .. }, DevicePlan::Capacitor { .. }) => {}
                    (
                        Element::VSource { wave, .. },
                        DevicePlan::VSource {
                            pr,
                            rp,
                            mr,
                            rm,
                            row,
                        },
                    ) => {
                        if *pr != NO_SLOT {
                            self.lin_values[*pr * l + lane] += 1.0;
                            self.lin_values[*rp * l + lane] += 1.0;
                        }
                        if *mr != NO_SLOT {
                            self.lin_values[*mr * l + lane] -= 1.0;
                            self.lin_values[*rm * l + lane] -= 1.0;
                        }
                        self.lin_b[*row * l + lane] += wave.at(ctx.t) * ctx.source_scale;
                    }
                    (Element::ISource { wave, .. }, DevicePlan::ISource { to_row, from_row }) => {
                        let i = wave.at(ctx.t) * ctx.source_scale;
                        if *to_row != NO_SLOT {
                            self.lin_b[*to_row * l + lane] += i;
                        }
                        if *from_row != NO_SLOT {
                            self.lin_b[*from_row * l + lane] -= i;
                        }
                    }
                    (Element::Nmos { .. } | Element::Nmos3 { .. }, DevicePlan::Mos { .. }) => {}
                    _ => unreachable!("device/plan mismatch"),
                }
            }
        }
        for &s in &self.diag_slots {
            for lane in 0..l {
                self.lin_values[s * l + lane] += 1e-12;
            }
        }
    }

    /// Restamps every *active* lane around its lane of the lane-minor
    /// linearization point `x` (`unknowns * lanes` values): copies the
    /// baselines, then applies only the MOSFET stamps, mirroring
    /// [`SparseSystem::iterate`] per lane so results stay pinned to the
    /// scalar path. `gmin` is per lane: the lockstep driver walks each
    /// lane down its own adaptive homotopy schedule, exactly as the
    /// scalar ladder would. `lambda` is the per-lane source-continuation
    /// coordinate: `1.0` stamps this solve's sources exactly (a straight
    /// copy, bit-identical to the scalar stamp), anything below blends
    /// the rhs toward the previous solve's, letting a lane walk
    /// continuously from its old operating point to the new sources.
    /// Inactive lanes keep their linear baseline, which the driver
    /// ignores.
    pub fn iterate(
        &mut self,
        lanes: &[Netlist],
        active: &[bool],
        x: &[f64],
        gmin: &[f64],
        lambda: &[f64],
        b: &mut [f64],
    ) {
        let l = self.mat.lanes();
        self.mat.values_mut().copy_from_slice(&self.lin_values);
        if lambda.iter().all(|&lam| lam >= 1.0) {
            b.copy_from_slice(&self.lin_b);
        } else {
            for i in 0..self.mat.n() {
                let base = i * l;
                for lane in 0..l {
                    let lam = lambda[lane];
                    // λ = 1 must reproduce lin_b *exactly* (not via a
                    // round-tripped blend): converged lanes have to sit at
                    // the same fixed point the scalar path computes.
                    b[base + lane] = if lam >= 1.0 {
                        self.lin_b[base + lane]
                    } else {
                        let prev = self.lin_b_prev[base + lane];
                        prev + (self.lin_b[base + lane] - prev) * lam
                    };
                }
            }
        }
        let vals = self.mat.values_mut();
        for (lane, nl) in lanes.iter().enumerate() {
            if !active[lane] {
                continue;
            }
            for (dev, plan) in nl.devices.iter().zip(&self.plans) {
                let DevicePlan::Mos {
                    pair,
                    dg,
                    sg,
                    d_row,
                    s_row,
                } = plan
                else {
                    continue;
                };
                let volt = |node: crate::netlist::NodeId| match vidx(node) {
                    None => 0.0,
                    Some(i) => x[i * l + lane],
                };
                let (ids, gm, gds, forward, vgs, vds) = match &dev.element {
                    Element::Nmos { d, g, s, params } => {
                        let (vd, vg, vs) = (volt(*d), volt(*g), volt(*s));
                        let forward = vd >= vs;
                        let (vds, vgs) = if forward {
                            (vd - vs, vg - vs)
                        } else {
                            (vs - vd, vg - vd)
                        };
                        let (ids, gm, gds) = level1(params, vgs, vds);
                        (ids, gm, gds, forward, vgs, vds)
                    }
                    Element::Nmos3 { d, g, s, params } => {
                        let (vd, vg, vs) = (volt(*d), volt(*g), volt(*s));
                        let forward = vd >= vs;
                        let (vds, vgs) = if forward {
                            (vd - vs, vg - vs)
                        } else {
                            (vs - vd, vg - vd)
                        };
                        let (ids, gm, gds) = params.linearize(vgs, vds);
                        (ids, gm, gds, forward, vgs, vds)
                    }
                    _ => unreachable!("Mos plan on non-MOS device"),
                };
                let ieq = ids - gm * vgs - gds * vds;
                pair.stamp_lane(vals, l, lane, gds + gmin[lane]);
                if forward {
                    if *dg != NO_SLOT {
                        vals[*dg * l + lane] += gm;
                    }
                    if pair.ij != NO_SLOT {
                        vals[pair.ij * l + lane] -= gm;
                    }
                    if *sg != NO_SLOT {
                        vals[*sg * l + lane] -= gm;
                    }
                    if pair.jj != NO_SLOT {
                        vals[pair.jj * l + lane] += gm;
                    }
                    if *s_row != NO_SLOT {
                        b[*s_row * l + lane] += ieq;
                    }
                    if *d_row != NO_SLOT {
                        b[*d_row * l + lane] -= ieq;
                    }
                } else {
                    if *sg != NO_SLOT {
                        vals[*sg * l + lane] += gm;
                    }
                    if pair.ji != NO_SLOT {
                        vals[pair.ji * l + lane] -= gm;
                    }
                    if *dg != NO_SLOT {
                        vals[*dg * l + lane] -= gm;
                    }
                    if pair.ii != NO_SLOT {
                        vals[pair.ii * l + lane] += gm;
                    }
                    if *d_row != NO_SLOT {
                        b[*d_row * l + lane] += ieq;
                    }
                    if *s_row != NO_SLOT {
                        b[*s_row * l + lane] -= ieq;
                    }
                }
            }
        }
    }
}

/// Size (in unknowns) from which `SolverKind::Auto` picks the sparse
/// engine; below it the dense oracle is faster (see the
/// `sparse_solver` criterion bench for the measured crossover).
pub(crate) const SPARSE_THRESHOLD: usize = 24;

/// Per-analysis solver state, reused across Newton iterations, homotopy
/// rungs, and transient timesteps.
pub(crate) enum SolverWorkspace {
    Dense {
        a: Matrix,
        b: Vec<f64>,
    },
    Sparse {
        sys: SparseSystem,
        lu: Box<SparseLu>,
        b: Vec<f64>,
    },
}

impl SolverWorkspace {
    /// Builds the workspace a netlist's analyses should use, honouring
    /// [`SolverKind`] and reusing the netlist's shared symbolic analysis
    /// when its pattern still matches.
    pub fn for_netlist(netlist: &Netlist) -> SolverWorkspace {
        let n = netlist.unknown_count();
        let use_sparse = match netlist.solver_kind() {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => n >= SPARSE_THRESHOLD,
        };
        if !use_sparse {
            fts_telemetry::counter("spice.solver.dense", 1);
            // a = unknowns.
            fts_telemetry::trace::emit("solver_selected", "dense", n as f64, 0.0);
            return SolverWorkspace::Dense {
                a: Matrix::zeros(n),
                b: vec![0.0; n],
            };
        }
        fts_telemetry::counter("spice.solver.sparse", 1);
        let sys = SparseSystem::new(netlist);
        // a = unknowns, b = pattern non-zeros.
        fts_telemetry::trace::emit(
            "solver_selected",
            "sparse",
            n as f64,
            sys.matrix().nnz() as f64,
        );
        let symbolic = match netlist.shared_symbolic() {
            Some(sym) if sym.matches(sys.matrix()) => {
                fts_telemetry::counter("spice.sparse.symbolic_reuse", 1);
                fts_telemetry::trace::emit("sparse_symbolic", "reuse", 0.0, 0.0);
                Arc::clone(sym)
            }
            Some(_) => {
                // Defect-injected trials can rewire gates and change the
                // pattern — fall back to a fresh analysis.
                fts_telemetry::counter("spice.sparse.symbolic_miss", 1);
                fts_telemetry::trace::emit("sparse_symbolic", "miss", 0.0, 0.0);
                Arc::new(Symbolic::analyze(sys.matrix()))
            }
            None => {
                fts_telemetry::counter("spice.sparse.symbolic_new", 1);
                fts_telemetry::trace::emit("sparse_symbolic", "new", 0.0, 0.0);
                Arc::new(Symbolic::analyze(sys.matrix()))
            }
        };
        if fts_telemetry::enabled() {
            fts_telemetry::record("spice.sparse.pattern_nnz", sys.matrix().nnz() as f64);
        }
        let lu = Box::new(SparseLu::new(symbolic));
        SolverWorkspace::Sparse {
            sys,
            lu,
            b: vec![0.0; n],
        }
    }
}

/// A converged Newton solve plus the diagnostics the caller reports.
pub(crate) struct NewtonSolve {
    /// The converged unknown vector.
    pub x: Vec<f64>,
    /// Iterations consumed (at least 1).
    pub iterations: usize,
    /// Largest absolute damped update of the final iteration — the
    /// step-norm convergence residual.
    pub max_step: f64,
}

/// Newton–Raphson over a reusable [`SolverWorkspace`]; returns the
/// converged unknown vector together with iteration diagnostics.
///
/// The dense path restamps everything through [`stamp_all`]; the sparse
/// path computes the linear baseline once, then each iteration restamps
/// only the MOSFETs and refactors numerically against the shared symbolic.
pub(crate) fn newton(
    netlist: &Netlist,
    ctx: &StampContext<'_>,
    x0: &[f64],
    max_iterations: usize,
    ws: &mut SolverWorkspace,
) -> Result<NewtonSolve, SpiceError> {
    let n = netlist.unknown_count();
    let nv = netlist.node_count() - 1;
    let mut x = x0.to_vec();
    if let SolverWorkspace::Sparse { sys, .. } = ws {
        sys.begin(netlist, ctx);
    }
    for iteration in 1..=max_iterations {
        if let Some(token) = ctx.cancel {
            token.check("newton")?;
        }
        let dense_x;
        let x_new: &[f64] = match ws {
            SolverWorkspace::Dense { a, b } => {
                a.clear();
                b.fill(0.0);
                stamp_all(netlist, &x, a, b, ctx);
                dense_x = a.solve(b)?;
                &dense_x
            }
            SolverWorkspace::Sparse { sys, lu, b } => {
                sys.iterate(netlist, &x, ctx, b);
                lu.factor(sys.matrix())?;
                // One numeric (re)factorization per Newton iteration;
                // a = iteration number within this solve.
                fts_telemetry::trace::emit("sparse_factor", "", iteration as f64, 0.0);
                lu.solve_in_place(b);
                b
            }
        };
        // Voltage-step damping stabilizes MOS Newton iterations.
        let mut max_dv = 0.0f64;
        for i in 0..nv {
            max_dv = max_dv.max((x_new[i] - x[i]).abs());
        }
        let damp = if max_dv > 2.0 { 2.0 / max_dv } else { 1.0 };
        let mut converged = true;
        let mut max_step = 0.0f64;
        for i in 0..n {
            let step = (x_new[i] - x[i]) * damp;
            if step.abs() > 1e-9 + 1e-6 * x[i].abs() {
                converged = false;
            }
            max_step = max_step.max(step.abs());
            x[i] += step;
        }
        if converged && damp == 1.0 {
            return Ok(NewtonSolve {
                x,
                iterations: iteration,
                max_step,
            });
        }
    }
    Err(SpiceError::NoConvergence {
        analysis: "newton",
        residual: f64::NAN,
    })
}

/// Stamps the small-signal (AC) system at angular frequency `omega`,
/// linearized around the operating point `x_op`. The voltage source named
/// `ac_source` receives a unit AC stimulus; all other independent sources
/// are zeroed.
pub(crate) fn stamp_ac(
    netlist: &Netlist,
    x_op: &[f64],
    omega: f64,
    ac_source: &str,
    a: &mut crate::complex::CMatrix,
    b: &mut [crate::complex::Complex],
) {
    use crate::complex::Complex;
    let nv = netlist.node_count() - 1;
    let mut addc =
        |a: &mut crate::complex::CMatrix, i: Option<usize>, j: Option<usize>, y: Complex| {
            if let Some(i) = i {
                a.add(i, i, y);
            }
            if let Some(j) = j {
                a.add(j, j, y);
            }
            if let (Some(i), Some(j)) = (i, j) {
                a.add(i, j, -y);
                a.add(j, i, -y);
            }
        };
    for dev in &netlist.devices {
        match &dev.element {
            Element::Resistor { a: na, b: nb, ohms } => {
                addc(a, vidx(*na), vidx(*nb), Complex::real(1.0 / ohms));
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                addc(a, vidx(*na), vidx(*nb), Complex::imag(omega * farads));
            }
            Element::VSource {
                plus,
                minus,
                branch,
                ..
            } => {
                let row = nv + branch;
                if let Some(p) = vidx(*plus) {
                    a.add(p, row, Complex::ONE);
                    a.add(row, p, Complex::ONE);
                }
                if let Some(m) = vidx(*minus) {
                    a.add(m, row, -Complex::ONE);
                    a.add(row, m, -Complex::ONE);
                }
                if dev.name == ac_source {
                    b[row] += Complex::ONE;
                }
            }
            Element::ISource { .. } => {}
            Element::Nmos { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x_op, *d), voltage(x_op, *g), voltage(x_op, *s));
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x_op, ns);
                let (_, gm, gds) = level1(params, vgs, vds_raw);
                stamp_ac_mos(a, vidx(nd), vidx(ns), vidx(*g), gm, gds, &mut addc);
            }
            Element::Nmos3 { d, g, s, params } => {
                let (vd, vg, vs) = (voltage(x_op, *d), voltage(x_op, *g), voltage(x_op, *s));
                let (nd, ns, vds_raw) = if vd >= vs {
                    (*d, *s, vd - vs)
                } else {
                    (*s, *d, vs - vd)
                };
                let vgs = vg - voltage(x_op, ns);
                let (_, gm, gds) = params.linearize(vgs, vds_raw);
                stamp_ac_mos(a, vidx(nd), vidx(ns), vidx(*g), gm, gds, &mut addc);
            }
        }
    }
    for n in 0..nv {
        a.add(n, n, crate::complex::Complex::real(1e-12));
    }
}

fn stamp_ac_mos(
    a: &mut crate::complex::CMatrix,
    id_: Option<usize>,
    is_: Option<usize>,
    ig_: Option<usize>,
    gm: f64,
    gds: f64,
    addc: &mut impl FnMut(
        &mut crate::complex::CMatrix,
        Option<usize>,
        Option<usize>,
        crate::complex::Complex,
    ),
) {
    use crate::complex::Complex;
    addc(a, id_, is_, Complex::real(gds + 1e-12));
    if let Some(r) = id_ {
        if let Some(c) = ig_ {
            a.add(r, c, Complex::real(gm));
        }
        if let Some(c) = is_ {
            a.add(r, c, Complex::real(-gm));
        }
    }
    if let Some(r) = is_ {
        if let Some(c) = ig_ {
            a.add(r, c, Complex::real(-gm));
        }
        if let Some(c) = is_ {
            a.add(r, c, Complex::real(gm));
        }
    }
}
