//! Circuit description: nodes, devices, and source waveforms.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::linalg::Symbolic;
use crate::mos3::Mos3Params;
use crate::SpiceError;

/// Which linear-solver engine analyses of a netlist use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Pick automatically by system size: small systems run the dense
    /// reference LU, larger ones the sparse engine. This is the default.
    #[default]
    Auto,
    /// Force the dense LU (the reference oracle).
    Dense,
    /// Force the sparse engine regardless of size.
    Sparse,
}

/// A node handle returned by [`Netlist::node`]. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style PULSE(v0 v1 delay rise fall width period).
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge \[s\].
        delay: f64,
        /// Rise time \[s\].
        rise: f64,
        /// Fall time \[s\].
        fall: f64,
        /// Pulse width at `v1` \[s\].
        width: f64,
        /// Repetition period \[s\] (0 disables repetition).
        period: f64,
    },
    /// Piece-wise linear `(time, value)` points; the value holds before
    /// the first and after the last point.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// The waveform value at time `t` (DC analyses use `t = 0`).
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    if *rise == 0.0 {
                        return *v1;
                    }
                    return v0 + (v1 - v0) * tau / rise;
                }
                let tau = tau - rise;
                if tau < *width {
                    return *v1;
                }
                let tau = tau - width;
                if tau < *fall {
                    if *fall == 0.0 {
                        return *v0;
                    }
                    return v1 + (v0 - v1) * tau / fall;
                }
                *v0
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }
}

/// Level-1 n-MOSFET parameters for the [`Netlist::nmos`] device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Transconductance parameter Kp = µ·Cox \[A/V²\].
    pub kp: f64,
    /// Threshold voltage \[V\].
    pub vth: f64,
    /// Channel-length modulation \[1/V\].
    pub lambda: f64,
    /// Aspect ratio W/L.
    pub w_over_l: f64,
}

#[derive(Debug, Clone)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    VSource {
        plus: NodeId,
        minus: NodeId,
        wave: Waveform,
        branch: usize,
    },
    ISource {
        from: NodeId,
        to: NodeId,
        wave: Waveform,
    },
    Nmos {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: MosParams,
    },
    Nmos3 {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: Mos3Params,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Device {
    pub name: String,
    pub element: Element,
}

/// A read-only view of one device in a [`Netlist`], in insertion order.
///
/// This is the introspection surface for exporters and diagnostics (the
/// `fts-netlist` deck writer renders element cards from it): node handles
/// resolve back to names via [`Netlist::node_name`], and waveforms are
/// borrowed rather than cloned.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceView<'a> {
    /// A linear resistor between `a` and `b`.
    Resistor {
        /// Device name.
        name: &'a str,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance \[Ω\].
        ohms: f64,
    },
    /// A linear capacitor between `a` and `b`.
    Capacitor {
        /// Device name.
        name: &'a str,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance \[F\].
        farads: f64,
    },
    /// An independent voltage source (`plus` − `minus` = waveform).
    VSource {
        /// Device name.
        name: &'a str,
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source waveform.
        wave: &'a Waveform,
    },
    /// An independent current source pushing current into `to`.
    ISource {
        /// Device name.
        name: &'a str,
        /// Terminal the current leaves the circuit from.
        from: NodeId,
        /// Terminal the current is pushed into.
        to: NodeId,
        /// Source waveform.
        wave: &'a Waveform,
    },
    /// A level-1 n-MOSFET (bulk implicitly grounded).
    Nmos {
        /// Device name.
        name: &'a str,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Level-1 parameters.
        params: MosParams,
    },
    /// A level-3-class n-MOSFET (bulk implicitly grounded).
    ///
    /// Note that [`Netlist::nmos3`] also instantiated the `<name>_cgs` /
    /// `<name>_cgd` gate capacitors right after this device when the
    /// parameters carry nonzero capacitances; they appear as ordinary
    /// [`DeviceView::Capacitor`] entries.
    Nmos3 {
        /// Device name.
        name: &'a str,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Level-3 parameters.
        params: Mos3Params,
    },
}

/// A circuit under construction.
///
/// Nodes are created with [`Netlist::node`]; [`Netlist::GROUND`] is node 0.
/// Devices take the nodes they connect and a name used in error messages
/// and sweep lookups.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    pub(crate) devices: Vec<Device>,
    pub(crate) vsource_count: usize,
    solver: SolverKind,
    shared_symbolic: Option<Arc<Symbolic>>,
}

impl Netlist {
    /// The ground node (0 V reference).
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only ground.
    pub fn new() -> Netlist {
        let mut nl = Netlist {
            names: Vec::new(),
            by_name: HashMap::new(),
            devices: Vec::new(),
            vsource_count: 0,
            solver: SolverKind::Auto,
            shared_symbolic: None,
        };
        nl.names.push("0".to_owned());
        nl.by_name.insert("0".to_owned(), NodeId(0));
        nl
    }

    /// Returns the node with the given name, creating it on first use.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for unknown names.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::NotFound {
                name: name.to_owned(),
            })
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics for a foreign node id.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// The [`NodeId`] at raw index `index` (0 = ground).
    ///
    /// # Panics
    ///
    /// Panics when `index >= node_count()`.
    pub fn node_id(&self, index: usize) -> NodeId {
        assert!(
            index < self.names.len(),
            "node index {index} out of range ({} nodes)",
            self.names.len()
        );
        NodeId(index)
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn check_node(&self, id: NodeId) -> Result<(), SpiceError> {
        if id.0 >= self.names.len() {
            return Err(SpiceError::InvalidNode {
                node: id.0,
                nodes: self.names.len(),
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects foreign nodes and non-positive resistance.
    pub fn resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), SpiceError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(ohms > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_owned(),
                reason: "resistance must be positive",
            });
        }
        self.devices.push(Device {
            name: name.to_owned(),
            element: Element::Resistor { a, b, ohms },
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects foreign nodes and negative capacitance.
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), SpiceError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(farads >= 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_owned(),
                reason: "capacitance must be nonnegative",
            });
        }
        self.devices.push(Device {
            name: name.to_owned(),
            element: Element::Capacitor { a, b, farads },
        });
        Ok(())
    }

    /// Adds an independent voltage source (`plus` − `minus` = waveform).
    ///
    /// # Errors
    ///
    /// Rejects foreign nodes.
    pub fn vsource(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        let branch = self.vsource_count;
        self.vsource_count += 1;
        self.devices.push(Device {
            name: name.to_owned(),
            element: Element::VSource {
                plus,
                minus,
                wave,
                branch,
            },
        });
        Ok(())
    }

    /// Adds an independent current source pushing current from `from` to
    /// `to` through the source (i.e. into node `to`).
    ///
    /// # Errors
    ///
    /// Rejects foreign nodes.
    pub fn isource(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.devices.push(Device {
            name: name.to_owned(),
            element: Element::ISource { from, to, wave },
        });
        Ok(())
    }

    /// Adds a level-1 n-MOSFET (bulk tied to ground as in the paper's §V).
    ///
    /// # Errors
    ///
    /// Rejects foreign nodes and non-positive `kp` or `w_over_l`.
    pub fn nmos(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: MosParams,
    ) -> Result<(), SpiceError> {
        self.check_node(d)?;
        self.check_node(g)?;
        self.check_node(s)?;
        if !(params.kp > 0.0) || !(params.w_over_l > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_owned(),
                reason: "kp and w_over_l must be positive",
            });
        }
        self.devices.push(Device {
            name: name.to_owned(),
            element: Element::Nmos { d, g, s, params },
        });
        Ok(())
    }

    /// Adds a level-3-class n-MOSFET (short-channel effects and Meyer
    /// gate capacitances — the model the paper's §VI-A plans). The gate
    /// capacitances from `params` are instantiated as linear capacitors
    /// `<name>_cgs` / `<name>_cgd` alongside the transistor.
    ///
    /// # Errors
    ///
    /// Rejects foreign nodes and non-positive `kp` or `w_over_l`.
    pub fn nmos3(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: Mos3Params,
    ) -> Result<(), SpiceError> {
        self.check_node(d)?;
        self.check_node(g)?;
        self.check_node(s)?;
        if !(params.kp > 0.0) || !(params.w_over_l > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_owned(),
                reason: "kp and w_over_l must be positive",
            });
        }
        self.devices.push(Device {
            name: name.to_owned(),
            element: Element::Nmos3 { d, g, s, params },
        });
        if params.cgs > 0.0 {
            self.capacitor(&format!("{name}_cgs"), g, s, params.cgs)?;
        }
        if params.cgd > 0.0 {
            self.capacitor(&format!("{name}_cgd"), g, d, params.cgd)?;
        }
        Ok(())
    }

    /// Replaces the waveform of the named voltage source (used by sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for unknown source names.
    pub fn set_vsource(&mut self, name: &str, wave: Waveform) -> Result<(), SpiceError> {
        for dev in &mut self.devices {
            if dev.name == name {
                if let Element::VSource { wave: w, .. } = &mut dev.element {
                    *w = wave;
                    return Ok(());
                }
            }
        }
        Err(SpiceError::NotFound {
            name: name.to_owned(),
        })
    }

    /// Iterates read-only [`DeviceView`]s in insertion order — the order
    /// devices are stamped into the MNA system, which exporters must
    /// preserve for bit-reproducible results.
    pub fn devices(&self) -> impl Iterator<Item = DeviceView<'_>> + '_ {
        self.devices.iter().map(|dev| match &dev.element {
            Element::Resistor { a, b, ohms } => DeviceView::Resistor {
                name: &dev.name,
                a: *a,
                b: *b,
                ohms: *ohms,
            },
            Element::Capacitor { a, b, farads } => DeviceView::Capacitor {
                name: &dev.name,
                a: *a,
                b: *b,
                farads: *farads,
            },
            Element::VSource {
                plus, minus, wave, ..
            } => DeviceView::VSource {
                name: &dev.name,
                plus: *plus,
                minus: *minus,
                wave,
            },
            Element::ISource { from, to, wave } => DeviceView::ISource {
                name: &dev.name,
                from: *from,
                to: *to,
                wave,
            },
            Element::Nmos { d, g, s, params } => DeviceView::Nmos {
                name: &dev.name,
                d: *d,
                g: *g,
                s: *s,
                params: *params,
            },
            Element::Nmos3 { d, g, s, params } => DeviceView::Nmos3 {
                name: &dev.name,
                d: *d,
                g: *g,
                s: *s,
                params: *params,
            },
        })
    }

    /// Total MNA unknowns: node voltages (minus ground) plus source
    /// branch currents.
    pub fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.vsource_count
    }

    /// Selects the linear-solver engine for analyses of this netlist.
    pub fn set_solver(&mut self, kind: SolverKind) {
        self.solver = kind;
    }

    /// The selected linear-solver engine.
    pub fn solver_kind(&self) -> SolverKind {
        self.solver
    }

    /// True when analyses of this netlist will run on the sparse engine —
    /// selected explicitly, or by `Auto` at the size threshold. Batch
    /// schedulers use this to decide whether a shared symbolic
    /// factorization would pay off.
    pub fn uses_sparse_solver(&self) -> bool {
        match self.solver {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => self.unknown_count() >= crate::stamp::SPARSE_THRESHOLD,
        }
    }

    /// Installs a shared symbolic factorization. Analyses using the sparse
    /// engine reuse it instead of re-running the fill-reducing ordering —
    /// the key amortization across Monte Carlo trials of an ensemble,
    /// whose netlists differ only in parameter values, not topology. The
    /// pattern is verified before use; a mismatch (e.g. a defect trial
    /// that rewired a gate) silently falls back to a fresh analysis.
    pub fn share_symbolic(&mut self, symbolic: Arc<Symbolic>) {
        self.shared_symbolic = Some(symbolic);
    }

    /// The installed shared symbolic factorization, if any.
    pub fn shared_symbolic(&self) -> Option<&Arc<Symbolic>> {
        self.shared_symbolic.as_ref()
    }

    /// Analyzes this netlist's MNA sparsity pattern and returns a symbolic
    /// factorization suitable for [`share_symbolic`](Netlist::share_symbolic)
    /// on any netlist with identical topology.
    pub fn mna_symbolic(&self) -> Arc<Symbolic> {
        fts_telemetry::counter("spice.sparse.symbolic_new", 1);
        Arc::new(Symbolic::analyze(&crate::stamp::mna_pattern(self)))
    }

    /// The MNA sparsity pattern of this netlist, for diagnostics and
    /// benchmarks: every structurally possible nonzero of the system
    /// matrix, values all zero.
    pub fn mna_pattern(&self) -> crate::linalg::SparseMatrix {
        crate::stamp::mna_pattern(self)
    }

    /// True when `other` has the same circuit *topology*: the same nodes,
    /// the same devices in the same order, each connected to the same
    /// terminals — only parameter values and source waveforms may differ.
    ///
    /// This is the admission test for the ensemble solver: two netlists
    /// that pass it produce identical MNA patterns *and* identical device
    /// stamp plans, so one set of resolved matrix slots serves both. It is
    /// deliberately conservative — a Monte Carlo defect trial that rewires
    /// a gate to a rail fails it and takes the scalar path instead.
    pub fn same_topology(&self, other: &Netlist) -> bool {
        if self.node_count() != other.node_count()
            || self.vsource_count != other.vsource_count
            || self.devices.len() != other.devices.len()
        {
            return false;
        }
        self.devices
            .iter()
            .zip(&other.devices)
            .all(|(a, b)| match (&a.element, &b.element) {
                (
                    Element::Resistor { a: a1, b: b1, .. },
                    Element::Resistor { a: a2, b: b2, .. },
                ) => (a1, b1) == (a2, b2),
                (
                    Element::Capacitor { a: a1, b: b1, .. },
                    Element::Capacitor { a: a2, b: b2, .. },
                ) => (a1, b1) == (a2, b2),
                (
                    Element::VSource {
                        plus: p1,
                        minus: m1,
                        branch: br1,
                        ..
                    },
                    Element::VSource {
                        plus: p2,
                        minus: m2,
                        branch: br2,
                        ..
                    },
                ) => (p1, m1, br1) == (p2, m2, br2),
                (
                    Element::ISource {
                        from: f1, to: t1, ..
                    },
                    Element::ISource {
                        from: f2, to: t2, ..
                    },
                ) => (f1, t1) == (f2, t2),
                (
                    Element::Nmos {
                        d: d1,
                        g: g1,
                        s: s1,
                        ..
                    },
                    Element::Nmos {
                        d: d2,
                        g: g2,
                        s: s2,
                        ..
                    },
                ) => (d1, g1, s1) == (d2, g2, s2),
                (
                    Element::Nmos3 {
                        d: d1,
                        g: g1,
                        s: s1,
                        ..
                    },
                    Element::Nmos3 {
                        d: d2,
                        g: g2,
                        s: s2,
                        ..
                    },
                ) => (d1, g1, s1) == (d2, g2, s2),
                _ => false,
            })
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "* netlist: {} nodes, {} devices",
            self.node_count(),
            self.device_count()
        )?;
        for dev in &self.devices {
            match &dev.element {
                Element::Resistor { a, b, ohms } => writeln!(
                    f,
                    "R {} {} {} {}",
                    dev.name,
                    self.node_name(*a),
                    self.node_name(*b),
                    ohms
                )?,
                Element::Capacitor { a, b, farads } => writeln!(
                    f,
                    "C {} {} {} {}",
                    dev.name,
                    self.node_name(*a),
                    self.node_name(*b),
                    farads
                )?,
                Element::VSource { plus, minus, .. } => writeln!(
                    f,
                    "V {} {} {}",
                    dev.name,
                    self.node_name(*plus),
                    self.node_name(*minus)
                )?,
                Element::ISource { from, to, .. } => writeln!(
                    f,
                    "I {} {} {}",
                    dev.name,
                    self.node_name(*from),
                    self.node_name(*to)
                )?,
                Element::Nmos { d, g, s, .. } => writeln!(
                    f,
                    "M {} {} {} {}",
                    dev.name,
                    self.node_name(*d),
                    self.node_name(*g),
                    self.node_name(*s)
                )?,
                Element::Nmos3 { d, g, s, .. } => writeln!(
                    f,
                    "M3 {} {} {} {}",
                    dev.name,
                    self.node_name(*d),
                    self.node_name(*g),
                    self.node_name(*s)
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_interned_by_name() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(nl.node_count(), 3);
        assert_eq!(nl.find_node("b").unwrap(), b);
        assert!(nl.find_node("zz").is_err());
    }

    #[test]
    fn invalid_values_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.resistor("R1", a, Netlist::GROUND, 0.0).is_err());
        assert!(nl.resistor("R1", a, Netlist::GROUND, -5.0).is_err());
        assert!(nl.capacitor("C1", a, Netlist::GROUND, -1e-15).is_err());
        let bad = NodeId(99);
        assert!(nl.resistor("R2", bad, Netlist::GROUND, 1.0).is_err());
    }

    #[test]
    fn dc_waveform() {
        assert_eq!(Waveform::Dc(3.3).at(0.0), 3.3);
        assert_eq!(Waveform::Dc(3.3).at(1.0), 3.3);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        assert_eq!(w.at(0.5), 0.0);
        assert!((w.at(1.5) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.at(2.5), 1.0); // plateau
        assert!((w.at(4.5) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.at(6.0), 0.0);
        // Periodic repeat.
        assert!((w.at(11.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pwl_waveform_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 2.0), (4.0, 2.0), (5.0, 0.0)]);
        assert_eq!(w.at(0.0), 0.0);
        assert!((w.at(1.5) - 1.0).abs() < 1e-12);
        assert_eq!(w.at(3.0), 2.0);
        assert!((w.at(4.5) - 1.0).abs() < 1e-12);
        assert_eq!(w.at(9.0), 0.0);
    }

    #[test]
    fn unknown_count_tracks_sources() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.resistor("R1", a, b, 10.0).unwrap();
        assert_eq!(nl.unknown_count(), 2 + 1);
    }

    #[test]
    fn set_vsource_replaces_waveform() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.set_vsource("V1", Waveform::Dc(2.0)).unwrap();
        assert!(nl.set_vsource("V9", Waveform::Dc(0.0)).is_err());
    }

    #[test]
    fn device_views_preserve_insertion_order() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.5))
            .unwrap();
        nl.resistor("R1", a, b, 50.0).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1e-12).unwrap();
        let views: Vec<DeviceView> = nl.devices().collect();
        assert_eq!(views.len(), 3);
        match &views[0] {
            DeviceView::VSource {
                name,
                plus,
                minus,
                wave,
            } => {
                assert_eq!(*name, "V1");
                assert_eq!((*plus, *minus), (a, Netlist::GROUND));
                assert_eq!(**wave, Waveform::Dc(1.5));
            }
            other => panic!("expected vsource view, got {other:?}"),
        }
        assert!(matches!(
            views[1],
            DeviceView::Resistor { name: "R1", ohms, .. } if ohms == 50.0
        ));
        assert!(matches!(
            views[2],
            DeviceView::Capacitor { name: "C1", farads, .. } if farads == 1e-12
        ));
    }

    #[test]
    fn nmos3_view_is_followed_by_its_gate_capacitors() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        let p = crate::Mos3Params {
            kp: 1e-4,
            vth: 0.5,
            lambda: 0.0,
            w_over_l: 2.0,
            theta: 0.0,
            esat_l: f64::INFINITY,
            cgs: 1e-15,
            cgd: 2e-15,
        };
        nl.nmos3("M1", d, g, Netlist::GROUND, p).unwrap();
        let views: Vec<DeviceView> = nl.devices().collect();
        assert_eq!(views.len(), 3);
        assert!(matches!(views[0], DeviceView::Nmos3 { name: "M1", .. }));
        assert!(matches!(
            views[1],
            DeviceView::Capacitor { name: "M1_cgs", farads, .. } if farads == 1e-15
        ));
        assert!(matches!(
            views[2],
            DeviceView::Capacitor { name: "M1_cgd", farads, .. } if farads == 2e-15
        ));
    }

    #[test]
    fn same_topology_admits_value_changes_only() {
        let build = |ohms: f64, vdd: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(vdd))
                .unwrap();
            nl.resistor("R1", a, b, ohms).unwrap();
            nl
        };
        let nominal = build(50.0, 1.2);
        // Different values, same wiring: still the same topology.
        assert!(nominal.same_topology(&build(75.0, 0.9)));
        // A rewired terminal is a different topology.
        let mut rewired = Netlist::new();
        let a = rewired.node("a");
        let b = rewired.node("b");
        rewired
            .vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        rewired.resistor("R1", b, Netlist::GROUND, 50.0).unwrap();
        assert!(!nominal.same_topology(&rewired));
        // An extra device is a different topology.
        let mut grown = build(50.0, 1.2);
        let gb = grown.node("b");
        grown.capacitor("C1", gb, Netlist::GROUND, 1e-15).unwrap();
        assert!(!nominal.same_topology(&grown));
        // A device swapped for a different kind is a different topology.
        let mut swapped = Netlist::new();
        let a = swapped.node("a");
        let b = swapped.node("b");
        swapped
            .vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        swapped.capacitor("R1", a, b, 1e-15).unwrap();
        assert!(!nominal.same_topology(&swapped));
    }

    #[test]
    fn display_lists_devices() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 50.0).unwrap();
        let s = nl.to_string();
        assert!(s.contains("R R1 a 0 50"));
    }
}
