//! DC operating point, DC sweep, transient, and AC analyses.
//!
//! The entry point is [`crate::Simulator`]; this module owns the analysis
//! implementations plus their public configuration and result types
//! ([`OpOptions`], [`TranConfig`], [`OpResult`], [`Transient`],
//! [`AcResult`]).

use std::cell::{Cell, RefCell};

use crate::cancel::CancelToken;
use crate::complex::{CMatrix, Complex};
use crate::netlist::{Element, Netlist, NodeId, Waveform};
use crate::stamp::{self, CapMode, SolverWorkspace, StampContext};
use crate::SpiceError;

/// Homotopy solver callback shared by the continuation helpers:
/// `(gmin, source_scale, initial_guess)` → converged solution vector.
type HomotopySolve<'a> = dyn Fn(f64, f64, &[f64]) -> Result<Vec<f64>, SpiceError> + 'a;

/// Which rung of the §V homotopy ladder produced the operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpStrategy {
    /// Plain Newton from the initial guess.
    Newton,
    /// Adaptive gmin stepping.
    GminStepping,
    /// Adaptive source stepping (plus the closing gmin ramp).
    SourceStepping,
    /// Pseudo-transient continuation.
    PseudoTransient,
}

impl OpStrategy {
    /// Stable lowercase name (used in telemetry counters and JSON).
    pub fn name(self) -> &'static str {
        match self {
            OpStrategy::Newton => "newton",
            OpStrategy::GminStepping => "gmin_stepping",
            OpStrategy::SourceStepping => "source_stepping",
            OpStrategy::PseudoTransient => "pseudo_transient",
        }
    }
}

/// Convergence diagnostics for one DC operating-point solve — previously
/// computed and discarded, now carried on every [`OpResult`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// The escalation stage that finally converged.
    pub strategy: OpStrategy,
    /// Total Newton iterations across every homotopy rung attempted
    /// (failed rungs charge their full iteration budget).
    pub newton_iterations: u64,
    /// Number of Newton solves attempted (homotopy continuation points).
    pub solves: u64,
    /// Step-norm residual of the final converged solve: the largest
    /// absolute damped update of its last iteration.
    pub final_residual: f64,
}

/// Scratch tally threaded through the homotopy ladder via `Cell`s (the
/// continuation helpers take `Fn` closures, so interior mutability).
#[derive(Default)]
struct OpTally {
    iterations: Cell<u64>,
    solves: Cell<u64>,
    residual: Cell<f64>,
}

impl OpTally {
    fn report(&self, strategy: OpStrategy) -> ConvergenceReport {
        ConvergenceReport {
            strategy,
            newton_iterations: self.iterations.get(),
            solves: self.solves.get(),
            final_residual: self.residual.get(),
        }
    }
}

/// Runs one tallied Newton solve: iteration counts accumulate into
/// `tally` (a failed solve charges its whole budget) and the residual of
/// the most recent successful solve is retained.
fn newton_tallied(
    netlist: &Netlist,
    ctx: &StampContext<'_>,
    x0: &[f64],
    max_iterations: usize,
    tally: &OpTally,
    ws: &RefCell<SolverWorkspace>,
) -> Result<Vec<f64>, SpiceError> {
    tally.solves.set(tally.solves.get() + 1);
    match stamp::newton(netlist, ctx, x0, max_iterations, &mut ws.borrow_mut()) {
        Ok(solve) => {
            tally
                .iterations
                .set(tally.iterations.get() + solve.iterations as u64);
            tally.residual.set(solve.max_step);
            // a = iterations consumed, b = final step-norm residual.
            fts_telemetry::trace::emit(
                "newton_converged",
                "",
                solve.iterations as f64,
                solve.max_step,
            );
            Ok(solve.x)
        }
        Err(e) => {
            tally
                .iterations
                .set(tally.iterations.get() + max_iterations as u64);
            // Cancellation is not divergence — the engine records the
            // cancel/deadline event at the attempt level.
            if !e.is_cancellation() {
                // a = iteration budget charged.
                fts_telemetry::trace::emit("newton_diverged", "", max_iterations as f64, 0.0);
            }
            Err(e)
        }
    }
}

/// Convergence-aid policy for a DC operating-point solve: which rungs of
/// the homotopy ladder may run after plain Newton fails. The batch
/// engine's retry ladder re-runs a failed job with progressively stronger
/// policies instead of always paying for the full ladder up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOptions {
    /// Allow adaptive gmin stepping.
    pub gmin_stepping: bool,
    /// Allow adaptive source stepping (plus its closing gmin ramp).
    pub source_stepping: bool,
    /// Allow pseudo-transient continuation.
    pub pseudo_transient: bool,
    /// Newton iteration budget per solve.
    pub max_iterations: usize,
}

impl Default for OpOptions {
    fn default() -> OpOptions {
        OpOptions::full()
    }
}

impl OpOptions {
    /// The full ladder — gmin stepping, then source stepping, then
    /// pseudo-transient. This is the historical `op` behavior.
    pub fn full() -> OpOptions {
        OpOptions {
            gmin_stepping: true,
            source_stepping: true,
            pseudo_transient: true,
            max_iterations: 120,
        }
    }

    /// Plain Newton only: fails fast, for callers that escalate elsewhere.
    pub fn newton_only() -> OpOptions {
        OpOptions {
            gmin_stepping: false,
            source_stepping: false,
            pseudo_transient: false,
            max_iterations: 120,
        }
    }
}

/// Transient integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Integrator {
    /// Backward Euler: robust, first order, numerically damped.
    BackwardEuler,
    /// Trapezoidal: second order, the SPICE default.
    Trapezoidal,
}

/// A solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult {
    x: Vec<f64>,
    node_count: usize,
    convergence: ConvergenceReport,
}

impl OpResult {
    /// Assembles an operating-point result from a solved unknown vector —
    /// the constructor the ensemble driver uses for lanes it converged
    /// without going through [`op_at_impl`]'s ladder.
    pub(crate) fn from_parts(
        x: Vec<f64>,
        node_count: usize,
        convergence: ConvergenceReport,
    ) -> OpResult {
        OpResult {
            x,
            node_count,
            convergence,
        }
    }
    /// How this operating point converged: strategy reached, Newton
    /// iterations spent, final residual.
    pub fn convergence(&self) -> &ConvergenceReport {
        &self.convergence
    }

    /// Node voltage \[V\].
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Current through the named voltage source, measured flowing from its
    /// `+` terminal through the source to `−` (a battery delivering power
    /// therefore reads negative).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for unknown names.
    pub fn vsource_current(&self, netlist: &Netlist, name: &str) -> Result<f64, SpiceError> {
        for dev in &netlist.devices {
            if dev.name == name {
                if let Element::VSource { branch, .. } = &dev.element {
                    return Ok(self.x[self.node_count - 1 + branch]);
                }
            }
        }
        Err(SpiceError::NotFound {
            name: name.to_owned(),
        })
    }

    /// The raw unknown vector (node voltages then branch currents).
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }
}

/// Operating point over a caller-owned solver workspace, so sweeps and
/// transient analyses amortize the workspace (and the sparse symbolic
/// factorization) across many operating-point solves. `opts` gates the
/// homotopy rungs; `cancel` is checked inside every Newton iteration and
/// between rungs.
pub(crate) fn op_at_impl(
    netlist: &Netlist,
    t: f64,
    initial: Option<&[f64]>,
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
) -> Result<OpResult, SpiceError> {
    let _span = fts_telemetry::span("spice.op");
    let n = netlist.unknown_count();
    let x0 = initial.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
    let tally = OpTally::default();
    let solve = |gmin: f64, scale: f64, x0: &[f64]| -> Result<Vec<f64>, SpiceError> {
        let ctx = StampContext {
            t,
            cap_mode: CapMode::Open,
            cap_states: &[],
            gmin,
            source_scale: scale,
            cancel,
        };
        newton_tallied(netlist, &ctx, x0, opts.max_iterations, &tally, ws)
    };
    // Helper run between homotopy rungs: the continuation loops swallow
    // individual solve failures, so a cancellation surfacing inside a rung
    // is re-raised here (with the analysis-level label) before the next,
    // potentially expensive, rung starts.
    let check_cancel = || -> Result<(), SpiceError> {
        match cancel {
            Some(token) => token.check("dc operating point"),
            None => Ok(()),
        }
    };
    let finish = |x: Vec<f64>, strategy: OpStrategy| -> OpResult {
        let convergence = tally.report(strategy);
        if fts_telemetry::enabled() {
            fts_telemetry::counter("spice.op.solved", 1);
            match strategy {
                OpStrategy::Newton => fts_telemetry::counter("spice.op.strategy.newton", 1),
                OpStrategy::GminStepping => {
                    fts_telemetry::counter("spice.op.strategy.gmin_stepping", 1)
                }
                OpStrategy::SourceStepping => {
                    fts_telemetry::counter("spice.op.strategy.source_stepping", 1)
                }
                OpStrategy::PseudoTransient => {
                    fts_telemetry::counter("spice.op.strategy.pseudo_transient", 1)
                }
            }
            fts_telemetry::record(
                "spice.op.newton_iterations",
                convergence.newton_iterations as f64,
            );
            fts_telemetry::record("spice.op.residual", convergence.final_residual);
        }
        // a = total Newton iterations across rungs, b = final residual.
        fts_telemetry::trace::emit(
            "op_solved",
            strategy.name(),
            convergence.newton_iterations as f64,
            convergence.final_residual,
        );
        OpResult {
            x,
            node_count: netlist.node_count(),
            convergence,
        }
    };

    // Plain Newton.
    fts_telemetry::trace::emit("homotopy_step", "newton", 0.0, 0.0);
    if let Ok(x) = solve(1e-12, 1.0, &x0) {
        return Ok(finish(x, OpStrategy::Newton));
    }
    check_cancel()?;
    // Adaptive gmin stepping: ramp the shunt conductance down from 10 mS,
    // shrinking the per-step reduction whenever Newton stalls instead of
    // giving up outright.
    if opts.gmin_stepping {
        // a = starting shunt conductance of the ramp.
        fts_telemetry::trace::emit("homotopy_step", "gmin_stepping", 1e-2, 0.0);
        if let Some(x) = gmin_ramp(&solve, &x0, 1e-2) {
            return Ok(finish(x, OpStrategy::GminStepping));
        }
        check_cancel()?;
    }
    // Source stepping with a safety gmin: grow the drive adaptively
    // (bisect the scale step on failure), then ramp the gmin out at full
    // drive.
    if opts.source_stepping {
        fts_telemetry::trace::emit("homotopy_step", "source_stepping", 0.0, 0.0);
        const GMIN_SAFE: f64 = 1e-9;
        let mut x = vec![0.0; n];
        let mut scale = 0.0f64;
        let mut step = 0.05f64;
        let mut source_stepping_failed = false;
        while scale < 1.0 {
            let target = (scale + step).min(1.0);
            match solve(GMIN_SAFE, target, &x) {
                Ok(sol) => {
                    x = sol;
                    scale = target;
                    step = (step * 2.0).min(0.25);
                }
                Err(_) => {
                    step *= 0.5;
                    if step < 1e-4 {
                        source_stepping_failed = true;
                        break;
                    }
                }
            }
        }
        if !source_stepping_failed {
            if let Some(x) = gmin_ramp(&solve, &x, GMIN_SAFE) {
                return Ok(finish(x, OpStrategy::SourceStepping));
            }
        }
        check_cancel()?;
    }
    // Pseudo-transient continuation: let the circuit's capacitors settle a
    // backward-Euler march to steady state, then polish with the true
    // cap-open Newton. Slowest, but it follows a physical trajectory and
    // rescues bias points where every static homotopy oscillates.
    if opts.pseudo_transient {
        fts_telemetry::trace::emit("homotopy_step", "pseudo_transient", 0.0, 0.0);
        if let Some(x) = pseudo_transient(netlist, t, &solve, &tally, ws, opts, cancel) {
            return Ok(finish(x, OpStrategy::PseudoTransient));
        }
        check_cancel()?;
    }
    fts_telemetry::counter("spice.op.failed", 1);
    // a = Newton iterations burned across the ladder, b = solves attempted.
    fts_telemetry::trace::emit(
        "op_failed",
        "",
        tally.iterations.get() as f64,
        tally.solves.get() as f64,
    );
    Err(SpiceError::NoConvergence {
        analysis: "dc operating point",
        residual: 1.0,
    })
}

/// Marches damped backward-Euler steps (growing `dt`, shrinking on
/// failure) from the all-zero state until the solution stops moving, then
/// solves the static system from the settled state.
fn pseudo_transient(
    netlist: &Netlist,
    t: f64,
    solve: &HomotopySolve<'_>,
    tally: &OpTally,
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
) -> Option<Vec<f64>> {
    let n = netlist.unknown_count();
    let mut x = vec![0.0; n];
    let mut cap_states = stamp::init_cap_states(netlist, &x);
    let mut dt = 1.0e-12;
    let mut settled = false;
    for _ in 0..600 {
        if cancel.is_some_and(|c| c.check("dc operating point").is_err()) {
            return None;
        }
        let ctx = StampContext {
            t,
            cap_mode: CapMode::Step {
                dt,
                trapezoidal: false,
            },
            cap_states: &cap_states,
            gmin: 1e-12,
            source_scale: 1.0,
            cancel,
        };
        match newton_tallied(netlist, &ctx, &x, opts.max_iterations, tally, ws) {
            Ok(next) => {
                let max_dv = x
                    .iter()
                    .zip(&next)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                stamp::update_cap_states(netlist, &next, &mut cap_states, dt, false);
                x = next;
                // As dt grows the capacitor conductance C/dt vanishes and
                // a BE step becomes the static solve itself, so "settled"
                // means: huge step, nothing moved.
                if max_dv < 1.0e-9 && dt >= 1.0 {
                    settled = true;
                    break;
                }
                dt *= 2.0;
            }
            Err(_) => {
                dt *= 0.25;
                if dt < 1.0e-18 {
                    return None;
                }
            }
        }
    }
    if !settled {
        return None;
    }
    solve(1e-12, 1.0, &x).ok()
}

/// Continuation in the shunt conductance: solve at `start` gmin, then
/// reduce it toward the 1 pS floor, shrinking the reduction factor when a
/// step fails. Returns the converged full-accuracy solution, or `None`
/// when the ramp stalls.
fn gmin_ramp(solve: &HomotopySolve<'_>, x0: &[f64], start: f64) -> Option<Vec<f64>> {
    const FLOOR: f64 = 1e-12;
    let mut x = solve(start, 1.0, x0).ok()?;
    let mut gmin = start;
    let mut factor = 10.0f64;
    while gmin > FLOOR {
        let next = (gmin / factor).max(FLOOR);
        match solve(next, 1.0, &x) {
            Ok(sol) => {
                x = sol;
                gmin = next;
                factor = (factor * factor).min(100.0);
            }
            Err(_) => {
                factor = factor.sqrt();
                if factor < 1.05 {
                    return None;
                }
            }
        }
    }
    Some(x)
}

/// DC sweep of the named voltage source over a caller-owned workspace,
/// policy, and cancel token: one operating point per value, warm-started
/// along the sweep. One workspace serves the whole sweep — changing a
/// source waveform leaves the MNA pattern (and the symbolic
/// factorization) intact.
pub(crate) fn dc_sweep_impl(
    netlist: &mut Netlist,
    source: &str,
    values: &[f64],
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
) -> Result<Vec<OpResult>, SpiceError> {
    let mut out = Vec::with_capacity(values.len());
    let mut warm: Option<Vec<f64>> = None;
    for &v in values {
        if let Some(token) = cancel {
            token.check("dc sweep")?;
        }
        netlist.set_vsource(source, Waveform::Dc(v))?;
        let r = op_at_impl(netlist, 0.0, warm.as_deref(), ws, opts, cancel)?;
        warm = Some(r.x.clone());
        out.push(r);
    }
    Ok(out)
}

/// Step-size control for a [`TranConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stepping {
    /// Fixed step of `dt` seconds.
    Fixed {
        /// Time step \[s\].
        dt: f64,
    },
    /// Step-doubling local-truncation-error control (backward Euler): each
    /// accepted interval is integrated once with `dt` and once as two
    /// `dt/2` steps; their disagreement drives the step size.
    Adaptive {
        /// Initial step \[s\].
        dt_initial: f64,
        /// Smallest permitted step \[s\].
        dt_min: f64,
        /// Largest permitted step \[s\].
        dt_max: f64,
        /// Local-truncation-error target per step \[V\].
        error_target: f64,
    },
}

/// Unified transient configuration: one entry point for fixed-step and
/// adaptive runs (replaces the former `TransientOptions` /
/// `AdaptiveOptions` split).
///
/// `integrator` and `uic` apply to [`Stepping::Fixed`] only: the adaptive
/// path always integrates backward Euler from a DC operating point, as
/// its step-doubling error estimate requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranConfig {
    /// Stop time \[s\].
    pub tstop: f64,
    /// Step-size control.
    pub stepping: Stepping,
    /// Integration method (fixed stepping only).
    pub integrator: Integrator,
    /// Skip the initial DC operating point and start from all-zero state
    /// (fixed stepping only).
    pub uic: bool,
}

impl TranConfig {
    /// Fixed-step trapezoidal run from a DC operating point — the
    /// conventional configuration.
    pub fn fixed(dt: f64, tstop: f64) -> TranConfig {
        TranConfig {
            tstop,
            stepping: Stepping::Fixed { dt },
            integrator: Integrator::Trapezoidal,
            uic: false,
        }
    }

    /// Adaptive run with reasonable defaults for nanosecond-scale logic
    /// transients.
    pub fn adaptive(tstop: f64) -> TranConfig {
        TranConfig {
            tstop,
            stepping: Stepping::Adaptive {
                dt_initial: tstop / 1000.0,
                dt_min: tstop / 1_000_000.0,
                dt_max: tstop / 50.0,
                error_target: 1.0e-4,
            },
            integrator: Integrator::BackwardEuler,
            uic: false,
        }
    }

    /// Selects the integration method (fixed stepping only).
    pub fn integrator(mut self, integrator: Integrator) -> TranConfig {
        self.integrator = integrator;
        self
    }

    /// Starts from all-zero state instead of the DC operating point
    /// (fixed stepping only).
    pub fn uic(mut self, uic: bool) -> TranConfig {
        self.uic = uic;
        self
    }

    /// Sets the adaptive LTE target; no effect on fixed stepping.
    pub fn error_target(mut self, target: f64) -> TranConfig {
        if let Stepping::Adaptive {
            ref mut error_target,
            ..
        } = self.stepping
        {
            *error_target = target;
        }
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidAnalysis`] for non-positive or inconsistent
    /// steps.
    pub fn validate(&self) -> Result<(), SpiceError> {
        match self.stepping {
            Stepping::Fixed { dt } => {
                if !(dt > 0.0) || !(self.tstop > 0.0) || self.tstop < dt {
                    return Err(SpiceError::InvalidAnalysis {
                        reason: "transient needs 0 < dt <= tstop",
                    });
                }
            }
            Stepping::Adaptive {
                dt_initial,
                dt_min,
                dt_max,
                ..
            } => {
                if !(dt_initial > 0.0)
                    || !(self.tstop > 0.0)
                    || dt_min > dt_initial
                    || dt_initial > dt_max
                {
                    return Err(SpiceError::InvalidAnalysis {
                        reason: "adaptive transient needs 0 < dt_min <= dt_initial <= dt_max",
                    });
                }
            }
        }
        Ok(())
    }
}

/// Receives transient samples as they are produced, instead of
/// accumulating the full waveform in memory. The batch engine's
/// decimating waveform sink implements this to bound per-job memory.
pub trait SampleSink {
    /// Called once per accepted sample — including the initial state at
    /// `t = 0` — with the full unknown vector (node voltages then branch
    /// currents).
    fn accept(&mut self, t: f64, x: &[f64]);
}

/// The in-memory sink behind [`Transient`]-returning entry points.
#[derive(Default)]
struct CollectSink {
    time: Vec<f64>,
    samples: Vec<Vec<f64>>,
}

impl SampleSink for CollectSink {
    fn accept(&mut self, t: f64, x: &[f64]) {
        self.time.push(t);
        self.samples.push(x.to_vec());
    }
}

/// A transient simulation result: sampled unknowns over time.
#[derive(Debug, Clone, PartialEq)]
pub struct Transient {
    node_count: usize,
    /// Sample instants \[s\].
    pub time: Vec<f64>,
    samples: Vec<Vec<f64>>,
}

impl Transient {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Voltage of `node` at sample `k` \[V\].
    pub fn voltage_at(&self, node: NodeId, k: usize) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.samples[k][node.index() - 1]
        }
    }

    /// The full waveform of a node \[V\].
    pub fn voltage(&self, node: NodeId) -> Vec<f64> {
        (0..self.len()).map(|k| self.voltage_at(node, k)).collect()
    }

    /// Current waveform through the named voltage source (same sign
    /// convention as [`OpResult::vsource_current`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for unknown names.
    pub fn vsource_current(&self, netlist: &Netlist, name: &str) -> Result<Vec<f64>, SpiceError> {
        for dev in &netlist.devices {
            if dev.name == name {
                if let Element::VSource { branch, .. } = &dev.element {
                    let idx = self.node_count - 1 + branch;
                    return Ok(self.samples.iter().map(|s| s[idx]).collect());
                }
            }
        }
        Err(SpiceError::NotFound {
            name: name.to_owned(),
        })
    }
}

/// A small-signal frequency-sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResult {
    /// Sweep frequencies \[Hz\].
    pub freqs: Vec<f64>,
    samples: Vec<Vec<Complex>>,
}

impl AcResult {
    /// Complex node voltage phasor at sweep point `k` (the AC source has
    /// unit magnitude, so this is also the transfer function to `node`).
    pub fn voltage_at(&self, node: NodeId, k: usize) -> Complex {
        if node.index() == 0 {
            Complex::ZERO
        } else {
            self.samples[k][node.index() - 1]
        }
    }

    /// Magnitude response of a node across the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.voltage_at(node, k).abs())
            .collect()
    }

    /// Phase response in degrees across the sweep.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.voltage_at(node, k).arg_deg())
            .collect()
    }

    /// The −3 dB bandwidth of a node relative to its first sweep point,
    /// by log-linear interpolation. `None` when the response never drops.
    pub fn bandwidth_3db(&self, node: NodeId) -> Option<f64> {
        let mags = self.magnitude(node);
        let ref_mag = mags.first().copied()?;
        let target = ref_mag / 2.0f64.sqrt();
        for k in 1..mags.len() {
            if mags[k] <= target {
                let (f0, f1) = (self.freqs[k - 1], self.freqs[k]);
                let (m0, m1) = (mags[k - 1], mags[k]);
                if m0 == m1 {
                    return Some(f1);
                }
                let t = (m0 - target) / (m0 - m1);
                return Some(f0 * (f1 / f0).powf(t));
            }
        }
        None
    }
}

/// Logarithmically spaced frequency points from `f_start` to `f_stop`.
///
/// # Panics
///
/// Panics unless `0 < f_start <= f_stop` and `points >= 2`.
pub fn log_sweep(f_start: f64, f_stop: f64, points: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop >= f_start && points >= 2,
        "invalid log sweep"
    );
    (0..points)
        .map(|k| f_start * (f_stop / f_start).powf(k as f64 / (points - 1) as f64))
        .collect()
}

/// Small-signal AC analysis (the §VI-A "phase margin" extension) over a
/// caller-owned workspace, policy, and cancel token: the circuit is
/// linearized around its DC operating point; the voltage source named
/// `ac_source` receives a unit phasor and all node voltages are solved at
/// each frequency.
///
/// # Errors
///
/// Propagates operating-point failures, [`SpiceError::NotFound`] for an
/// unknown source, and singular-matrix errors.
pub(crate) fn ac_impl(
    netlist: &Netlist,
    ac_source: &str,
    freqs: &[f64],
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
) -> Result<AcResult, SpiceError> {
    // Validate the source exists up front.
    if !netlist
        .devices
        .iter()
        .any(|d| d.name == ac_source && matches!(d.element, Element::VSource { .. }))
    {
        return Err(SpiceError::NotFound {
            name: ac_source.to_owned(),
        });
    }
    let op = op_at_impl(netlist, 0.0, None, ws, opts, cancel)?;
    let n = netlist.unknown_count();
    let mut samples = Vec::with_capacity(freqs.len());
    // One matrix allocation reused across the whole frequency sweep.
    let mut a = CMatrix::zeros(n);
    let mut b = vec![Complex::ZERO; n];
    for &f in freqs {
        if let Some(token) = cancel {
            token.check("ac")?;
        }
        let omega = 2.0 * std::f64::consts::PI * f;
        a.clear();
        b.fill(Complex::ZERO);
        stamp::stamp_ac(netlist, op.unknowns(), omega, ac_source, &mut a, &mut b);
        samples.push(a.solve(&b)?);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        samples,
    })
}

/// Runs a transient and collects the full waveform into a [`Transient`].
///
/// The initial state is the DC operating point with sources evaluated at
/// `t = 0` (unless `uic` is set, in which case everything starts at zero).
pub(crate) fn transient_collect(
    netlist: &Netlist,
    cfg: &TranConfig,
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
) -> Result<Transient, SpiceError> {
    let mut sink = CollectSink::default();
    transient_into_impl(netlist, cfg, ws, opts, cancel, &mut sink)?;
    Ok(Transient {
        node_count: netlist.node_count(),
        time: sink.time,
        samples: sink.samples,
    })
}

/// Runs a transient, streaming every accepted sample into `sink`.
pub(crate) fn transient_into_impl(
    netlist: &Netlist,
    cfg: &TranConfig,
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
    sink: &mut dyn SampleSink,
) -> Result<(), SpiceError> {
    cfg.validate()?;
    match cfg.stepping {
        Stepping::Fixed { dt } => transient_fixed(netlist, dt, cfg, ws, opts, cancel, sink),
        Stepping::Adaptive { .. } => transient_adaptive_into(netlist, cfg, ws, opts, cancel, sink),
    }
}

fn transient_fixed(
    netlist: &Netlist,
    dt: f64,
    cfg: &TranConfig,
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
    sink: &mut dyn SampleSink,
) -> Result<(), SpiceError> {
    let _span = fts_telemetry::span("spice.transient");
    let n = netlist.unknown_count();
    let mut x = if cfg.uic {
        vec![0.0; n]
    } else {
        op_at_impl(netlist, 0.0, None, ws, opts, cancel)?.x
    };
    let mut cap_states = stamp::init_cap_states(netlist, &x);

    let steps = (cfg.tstop / dt).round() as usize;
    sink.accept(0.0, &x);

    for k in 1..=steps {
        if let Some(token) = cancel {
            token.check("transient")?;
        }
        let t = k as f64 * dt;
        // Trapezoidal integration starts with one backward-Euler step: the
        // initial capacitor currents are unknown, and BE does not need them.
        let trapezoidal = cfg.integrator == Integrator::Trapezoidal && k > 1;
        let ctx = StampContext {
            t,
            cap_mode: CapMode::Step { dt, trapezoidal },
            cap_states: &cap_states,
            gmin: 1e-12,
            source_scale: 1.0,
            cancel,
        };
        let solve = stamp::newton(netlist, &ctx, &x, 200, &mut ws.borrow_mut()).map_err(|e| {
            if e.is_cancellation() {
                return e;
            }
            fts_telemetry::counter("spice.transient.step_failures", 1);
            // a = simulation time of the failed step, b = dt.
            fts_telemetry::trace::emit("tran_step_failed", "fixed", t, dt);
            SpiceError::NoConvergence {
                analysis: "transient step",
                residual: t,
            }
        })?;
        fts_telemetry::record("spice.transient.newton_iterations", solve.iterations as f64);
        // a = simulation time, b = Newton iterations for the step. Chatty
        // by design — the per-job ring drops oldest once full.
        fts_telemetry::trace::emit("tran_step", "fixed", t, solve.iterations as f64);
        x = solve.x;
        stamp::update_cap_states(netlist, &x, &mut cap_states, dt, trapezoidal);

        sink.accept(t, &x);
    }
    fts_telemetry::counter("spice.transient.steps", steps as u64);
    Ok(())
}

/// Adaptive-step transient using step-doubling error control: each
/// accepted interval is integrated once with `dt` and once as two `dt/2`
/// backward-Euler steps; their disagreement estimates the local truncation
/// error, and the step grows or shrinks to hold it near the configured
/// `error_target`. Slower per step than fixed stepping but chooses its
/// own resolution — fine steps across switching edges, long strides
/// through quiescent phases.
fn transient_adaptive_into(
    netlist: &Netlist,
    cfg: &TranConfig,
    ws: &RefCell<SolverWorkspace>,
    opts: &OpOptions,
    cancel: Option<&CancelToken>,
    sink: &mut dyn SampleSink,
) -> Result<(), SpiceError> {
    let Stepping::Adaptive {
        dt_initial,
        dt_min,
        dt_max,
        error_target,
    } = cfg.stepping
    else {
        unreachable!("transient_adaptive_into requires Stepping::Adaptive");
    };
    let _span = fts_telemetry::span("spice.transient_adaptive");
    let n = netlist.unknown_count();
    let nv = netlist.node_count() - 1;
    let mut x = op_at_impl(netlist, 0.0, None, ws, opts, cancel)?.x;
    let mut cap_states = stamp::init_cap_states(netlist, &x);

    sink.accept(0.0, &x);
    let mut accepted = 1usize;
    let mut t = 0.0f64;
    let mut dt = dt_initial;

    let step_be = |t_to: f64,
                   dt: f64,
                   x0: &[f64],
                   caps: &[stamp::CapState]|
     -> Result<(Vec<f64>, Vec<stamp::CapState>), SpiceError> {
        let ctx = StampContext {
            t: t_to,
            cap_mode: CapMode::Step {
                dt,
                trapezoidal: false,
            },
            cap_states: caps,
            gmin: 1e-12,
            source_scale: 1.0,
            cancel,
        };
        let solve = stamp::newton(netlist, &ctx, x0, 200, &mut ws.borrow_mut())?;
        fts_telemetry::record("spice.transient.newton_iterations", solve.iterations as f64);
        let xn = solve.x;
        let mut caps2 = caps.to_vec();
        stamp::update_cap_states(netlist, &xn, &mut caps2, dt, false);
        Ok((xn, caps2))
    };

    while t < cfg.tstop - 1e-18 {
        if let Some(token) = cancel {
            token.check("transient")?;
        }
        let dt_eff = dt.min(cfg.tstop - t);
        // Full step.
        let (x_full, caps_full) = step_be(t + dt_eff, dt_eff, &x, &cap_states)?;
        // Two half steps.
        let (x_h1, caps_h1) = step_be(t + dt_eff / 2.0, dt_eff / 2.0, &x, &cap_states)?;
        let (x_h2, caps_h2) = step_be(t + dt_eff, dt_eff / 2.0, &x_h1, &caps_h1)?;
        // LTE estimate: max node-voltage disagreement.
        let mut err = 0.0f64;
        for i in 0..nv.min(n) {
            err = err.max((x_full[i] - x_h2[i]).abs());
        }
        if err <= error_target || dt_eff <= dt_min * 1.0000001 {
            // Accept the more accurate half-step result.
            fts_telemetry::counter("spice.transient.lte_accepted", 1);
            // a = simulation time reached, b = accepted dt.
            fts_telemetry::trace::emit("lte_accepted", "", t + dt_eff, dt_eff);
            t += dt_eff;
            x = x_h2;
            cap_states = caps_h2;
            let _ = (x_full, caps_full);
            sink.accept(t, &x);
            accepted += 1;
            // Grow when comfortably under target.
            if err < 0.25 * error_target {
                dt = (dt * 2.0).min(dt_max);
            }
        } else {
            fts_telemetry::counter("spice.transient.lte_rejections", 1);
            // a = simulation time of the rejected step, b = LTE estimate.
            fts_telemetry::trace::emit("lte_rejected", "", t, err);
            dt = (dt / 2.0).max(dt_min);
        }
        if accepted > 5_000_000 {
            return Err(SpiceError::NoConvergence {
                analysis: "adaptive transient (step explosion)",
                residual: t,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosParams;
    use crate::Simulator;

    fn op(nl: &Netlist) -> Result<OpResult, SpiceError> {
        Simulator::new(nl).op()
    }

    fn transient_cfg(nl: &Netlist, cfg: &TranConfig) -> Result<Transient, SpiceError> {
        Simulator::new(nl).transient(cfg)
    }

    fn dc_sweep(
        nl: &mut Netlist,
        source: &str,
        values: &[f64],
    ) -> Result<Vec<OpResult>, SpiceError> {
        Simulator::new(nl).dc_sweep(source, values)
    }

    fn ac(nl: &Netlist, source: &str, freqs: &[f64]) -> Result<AcResult, SpiceError> {
        Simulator::new(nl).ac(source, freqs)
    }

    fn divider() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(2.0))
            .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 3.0e3).unwrap();
        (nl, out)
    }

    #[test]
    fn divider_op() {
        let (nl, out) = divider();
        let r = op(&nl).unwrap();
        assert!((r.voltage(out) - 1.5).abs() < 1e-6);
        // Battery delivers 0.5 mA; branch current convention is negative.
        let i = r.vsource_current(&nl, "V1").unwrap();
        assert!((i + 0.5e-3).abs() < 1e-8, "i = {i}");
    }

    #[test]
    fn op_reports_convergence_details() {
        let (nl, _) = divider();
        let r = op(&nl).unwrap();
        let c = r.convergence();
        // A linear divider converges with plain Newton in a couple of solves.
        assert_eq!(c.strategy, OpStrategy::Newton);
        assert!(
            c.newton_iterations >= 1,
            "iterations = {}",
            c.newton_iterations
        );
        assert!(c.solves >= 1);
        assert!(c.final_residual.is_finite() && c.final_residual < 1.0e-6);
    }

    #[test]
    fn ground_voltage_is_zero() {
        let (nl, _) = divider();
        let r = op(&nl).unwrap();
        assert_eq!(r.voltage(Netlist::GROUND), 0.0);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I1", Netlist::GROUND, a, Waveform::Dc(1.0e-3))
            .unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 2.0e3).unwrap();
        let r = op(&nl).unwrap();
        assert!((r.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dc_sweep_tracks_source() {
        let (mut nl, out) = divider();
        let vals = [0.0, 1.0, 2.0, 4.0];
        let results = dc_sweep(&mut nl, "V1", &vals).unwrap();
        for (v, r) in vals.iter().zip(&results) {
            assert!((r.voltage(out) - 0.75 * v).abs() < 1e-6);
        }
        assert!(dc_sweep(&mut nl, "nope", &vals).is_err());
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // 1 kΩ · 1 µF, 1 V step at t = 0 via PULSE.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource(
            "V1",
            vin,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: 0.0,
            },
        )
        .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.capacitor("C1", out, Netlist::GROUND, 1.0e-6).unwrap();
        let tau = 1.0e-3;
        for integ in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
            let tr = transient_cfg(
                &nl,
                &TranConfig::fixed(tau / 200.0, 5.0 * tau)
                    .integrator(integ)
                    .uic(true),
            )
            .unwrap();
            let tol = if integ == Integrator::Trapezoidal {
                2e-3
            } else {
                8e-3
            };
            for (k, &t) in tr.time.iter().enumerate() {
                let expect = 1.0 - (-t / tau).exp();
                let got = tr.voltage_at(out, k);
                assert!(
                    (got - expect).abs() < tol,
                    "{integ:?} t={t:.4e}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn trapezoidal_beats_backward_euler_on_rc() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.capacitor("C1", out, Netlist::GROUND, 1.0e-6).unwrap();
        let tau = 1.0e-3;
        let opts = |integ| {
            TranConfig::fixed(tau / 20.0, tau)
                .integrator(integ)
                .uic(true)
        };
        let err = |integ| -> f64 {
            let tr = transient_cfg(&nl, &opts(integ)).unwrap();
            tr.time
                .iter()
                .enumerate()
                .map(|(k, &t)| {
                    let expect = 1.0 - (-t / tau).exp();
                    (tr.voltage_at(out, k) - expect).abs()
                })
                .fold(0.0, f64::max)
        };
        assert!(err(Integrator::Trapezoidal) < 0.3 * err(Integrator::BackwardEuler));
    }

    fn switch_params() -> MosParams {
        MosParams {
            kp: 2.0e-5,
            vth: 0.3,
            lambda: 0.05,
            w_over_l: 2.0,
        }
    }

    #[test]
    fn nmos_inverter_transfer() {
        // Resistor-load inverter: out high when gate low, pulled down when
        // gate high.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gate = nl.node("g");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        nl.vsource("VG", gate, Netlist::GROUND, Waveform::Dc(0.0))
            .unwrap();
        nl.resistor("RL", vdd, out, 500.0e3).unwrap();
        nl.nmos("M1", out, gate, Netlist::GROUND, switch_params())
            .unwrap();
        let low_gate = op(&nl).unwrap();
        assert!(low_gate.voltage(out) > 1.19, "off transistor: out ≈ VDD");
        let mut nl2 = nl.clone();
        nl2.set_vsource("VG", Waveform::Dc(1.2)).unwrap();
        let high_gate = op(&nl2).unwrap();
        assert!(
            high_gate.voltage(out) < 0.3,
            "on transistor pulls down: {}",
            high_gate.voltage(out)
        );
    }

    #[test]
    fn nmos_pass_gate_conducts_both_ways() {
        // Symmetric pass switch: source and drain roles depend on bias.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let g = nl.node("g");
        nl.vsource("VA", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.vsource("VG", g, Netlist::GROUND, Waveform::Dc(5.0))
            .unwrap();
        nl.resistor("RB", b, Netlist::GROUND, 1.0e6).unwrap();
        nl.nmos("M1", a, g, b, switch_params()).unwrap();
        let fwd = op(&nl).unwrap();
        assert!(
            fwd.voltage(b) > 0.9,
            "strongly on switch passes: {}",
            fwd.voltage(b)
        );
        // Reverse the driven terminal.
        let mut nl2 = Netlist::new();
        let a2 = nl2.node("a");
        let b2 = nl2.node("b");
        let g2 = nl2.node("g");
        nl2.vsource("VB", b2, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl2.vsource("VG", g2, Netlist::GROUND, Waveform::Dc(5.0))
            .unwrap();
        nl2.resistor("RA", a2, Netlist::GROUND, 1.0e6).unwrap();
        nl2.nmos("M1", a2, g2, b2, switch_params()).unwrap();
        let rev = op(&nl2).unwrap();
        assert!(
            rev.voltage(a2) > 0.9,
            "reverse conduction: {}",
            rev.voltage(a2)
        );
    }

    #[test]
    fn transient_rejects_bad_options() {
        let (nl, _) = divider();
        assert!(transient_cfg(&nl, &TranConfig::fixed(0.0, 1.0)).is_err());
        assert!(transient_cfg(&nl, &TranConfig::fixed(1.0, 0.5)).is_err());
    }

    #[test]
    fn floating_node_is_regularized_not_singular() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("floating");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.capacitor("C1", a, b, 1e-15).unwrap();
        let r = op(&nl).unwrap();
        assert!(r.voltage(b).abs() < 1.0, "gmin keeps the system solvable");
    }

    #[test]
    fn ac_rc_lowpass_matches_analytic() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(0.0))
            .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1.0e-9);
        let freqs = log_sweep(fc / 100.0, fc * 100.0, 41);
        let res = ac(&nl, "V1", &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let h = res.voltage_at(out, k);
            let expect = 1.0 / (1.0 + (f / fc).powi(2)).sqrt();
            assert!(
                (h.abs() - expect).abs() < 1e-3,
                "f={f:.3e}: {} vs {expect}",
                h.abs()
            );
        }
        // Phase at the pole is −45°.
        let res_pole = ac(&nl, "V1", &[fc]).unwrap();
        assert!((res_pole.voltage_at(out, 0).arg_deg() + 45.0).abs() < 0.5);
        // −3 dB bandwidth lands on the pole frequency.
        let bw = res.bandwidth_3db(out).expect("lowpass rolls off");
        assert!((bw / fc - 1.0).abs() < 0.05, "bw {bw:.3e} vs fc {fc:.3e}");
    }

    #[test]
    fn ac_common_source_gain_matches_gm_over_gl() {
        // Resistor-loaded common-source amplifier: |H(0)| = gm·RL (gds
        // negligible at lambda = 0).
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gate = nl.node("g");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(5.0))
            .unwrap();
        nl.vsource("VG", gate, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.resistor("RL", vdd, out, 1.0e4).unwrap();
        nl.nmos(
            "M1",
            out,
            gate,
            Netlist::GROUND,
            MosParams {
                kp: 2.0e-5,
                vth: 0.4,
                lambda: 0.0,
                w_over_l: 2.0,
            },
        )
        .unwrap();
        let res = ac(&nl, "VG", &[1.0]).unwrap();
        let gm = 2.0e-5 * 2.0 * (1.0 - 0.4);
        let expect = gm * 1.0e4;
        let gain = res.voltage_at(out, 0).abs();
        assert!(
            (gain - expect).abs() < 0.02 * expect,
            "gain {gain} vs {expect}"
        );
        // Inverting stage: phase ≈ 180°.
        assert!((res.voltage_at(out, 0).arg_deg().abs() - 180.0).abs() < 1.0);
    }

    #[test]
    fn ac_rejects_unknown_source() {
        let (nl, _) = divider();
        assert!(matches!(
            ac(&nl, "nope", &[1.0]),
            Err(SpiceError::NotFound { .. })
        ));
    }

    #[test]
    fn nmos3_long_channel_matches_nmos_in_dc() {
        use crate::mos3::Mos3Params;
        let build = |level3: bool| -> f64 {
            let mut nl = Netlist::new();
            let d = nl.node("d");
            let g = nl.node("g");
            nl.vsource("VD", d, Netlist::GROUND, Waveform::Dc(2.0))
                .unwrap();
            nl.vsource("VG", g, Netlist::GROUND, Waveform::Dc(1.5))
                .unwrap();
            if level3 {
                nl.nmos3(
                    "M1",
                    d,
                    g,
                    Netlist::GROUND,
                    Mos3Params::long_channel(2e-5, 0.4, 0.05, 2.0),
                )
                .unwrap();
            } else {
                nl.nmos(
                    "M1",
                    d,
                    g,
                    Netlist::GROUND,
                    MosParams {
                        kp: 2e-5,
                        vth: 0.4,
                        lambda: 0.05,
                        w_over_l: 2.0,
                    },
                )
                .unwrap();
            }
            let op = op(&nl).unwrap();
            -op.vsource_current(&nl, "VD").unwrap()
        };
        let (i1, i3) = (build(false), build(true));
        assert!(
            (i1 - i3).abs() < 1e-9 + 1e-4 * i1.abs(),
            "{i1:.4e} vs {i3:.4e}"
        );
    }

    #[test]
    fn nmos3_gate_caps_slow_the_transient() {
        use crate::mos3::Mos3Params;
        // Source follower driving a load: with large gate caps the output
        // edge through the RC-loaded gate is slower.
        let build = |cg: f64| -> Netlist {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let gin = nl.node("gin");
            let gate = nl.node("gate");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(5.0))
                .unwrap();
            nl.vsource(
                "VG",
                gin,
                Netlist::GROUND,
                Waveform::Pulse {
                    v0: 0.0,
                    v1: 3.0,
                    delay: 1e-9,
                    rise: 1e-10,
                    fall: 1e-10,
                    width: 1e-6,
                    period: 0.0,
                },
            )
            .unwrap();
            nl.resistor("RG", gin, gate, 1.0e5).unwrap();
            let mut p = Mos3Params::long_channel(2e-5, 0.4, 0.01, 2.0);
            p.cgs = cg;
            p.cgd = cg;
            nl.nmos3("M1", vdd, gate, out, p).unwrap();
            nl.resistor("RS", out, Netlist::GROUND, 1.0e5).unwrap();
            nl
        };
        let run = |nl: &Netlist| -> Vec<f64> {
            let tr = transient_cfg(nl, &TranConfig::fixed(2e-10, 8e-8)).unwrap();
            let out = nl.find_node("out").unwrap();
            tr.voltage(out)
        };
        let fast = run(&build(1e-16));
        let slow = run(&build(5e-14));
        // Compare mid-transient progress.
        let k = fast.len() / 3;
        assert!(
            slow[k] < fast[k],
            "gate caps delay the follower: {} vs {}",
            slow[k],
            fast[k]
        );
    }

    #[test]
    fn adaptive_transient_matches_analytic_rc() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.capacitor("C1", out, Netlist::GROUND, 1.0e-6).unwrap();
        let tau = 1.0e-3;
        // uic-like: start from zero by keeping the source at 0 until t=0+.
        let cfg = TranConfig::adaptive(5.0 * tau).error_target(2e-4);
        let tr = transient_cfg(&nl, &cfg).unwrap();
        // Initial OP already charges the cap to 1 V (DC source), so the
        // waveform is flat at 1 V — verify flatness and step growth.
        for k in 0..tr.len() {
            assert!((tr.voltage_at(out, k) - 1.0).abs() < 1e-6);
        }
        assert!(
            tr.len() < 400,
            "quiescent run should take long strides: {}",
            tr.len()
        );
    }

    #[test]
    fn adaptive_transient_tracks_a_pulse() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource(
            "V1",
            vin,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 2.0e-4,
                rise: 1.0e-6,
                fall: 1.0e-6,
                width: 1.0,
                period: 0.0,
            },
        )
        .unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.capacitor("C1", out, Netlist::GROUND, 1.0e-7).unwrap();
        let tau = 1.0e-4;
        let cfg = TranConfig::adaptive(2.0e-3).error_target(5e-4);
        let tr = transient_cfg(&nl, &cfg).unwrap();
        // Compare the settled tail against the analytic value.
        let last = tr.voltage_at(out, tr.len() - 1);
        assert!((last - 1.0).abs() < 1e-3, "settles to 1 V: {last}");
        // Mid-rise accuracy: pick the sample nearest 2e-4 + tau.
        let t_probe = 2.0e-4 + tau;
        let k = tr.time.iter().position(|&t| t >= t_probe).unwrap();
        let expect = 1.0 - (-(tr.time[k] - 2.0e-4) / tau).exp();
        assert!(
            (tr.voltage_at(out, k) - expect).abs() < 0.02,
            "{} vs {expect}",
            tr.voltage_at(out, k)
        );
    }

    #[test]
    fn adaptive_rejects_inconsistent_options() {
        let (nl, _) = divider();
        let mut cfg = TranConfig::adaptive(1.0);
        cfg.stepping = Stepping::Adaptive {
            dt_initial: 0.5,
            dt_min: 1.0,
            dt_max: 1.0,
            error_target: 1.0e-4,
        };
        assert!(transient_cfg(&nl, &cfg).is_err());
    }
}
