//! A self-contained SPICE-class circuit simulator (the substrate for §V of
//! the DATE 2019 paper).
//!
//! The paper runs its four-terminal-switch circuits in a commercial Spice;
//! this crate implements the required subset from scratch:
//!
//! * [`netlist`] — circuit construction: resistors, capacitors, current
//!   sources, voltage sources with DC / PULSE / PWL waveforms, and level-1
//!   n-MOSFETs;
//! * [`analysis`] — DC operating point (Newton–Raphson with gmin and
//!   source stepping), DC sweeps, and transient analysis with
//!   backward-Euler or trapezoidal integration;
//! * [`measure`] — waveform post-processing: rise/fall times, logic
//!   levels, threshold crossings (the quantities reported for Fig. 11);
//! * [`linalg`] — the linear-solver core: a dense LU reference oracle and
//!   a sparse engine (CSR matrix, minimum-degree ordering, Gilbert–Peierls
//!   LU) whose symbolic factorization is computed once per topology and
//!   shared across Newton iterations, timesteps, and Monte Carlo trials;
//! * [`ensemble`] — the lockstep ensemble solver: K same-topology trials
//!   stamped into structure-of-arrays value lanes, factored by one
//!   lane-batched numeric replay, and driven through Newton under a
//!   per-lane convergence mask (the Monte Carlo hot path).
//!
//! Analyses pick the engine per netlist via
//! [`netlist::SolverKind`]: `Auto` (default, by system size), `Dense`, or
//! `Sparse`. Ensembles of same-topology netlists amortize the symbolic
//! analysis through [`netlist::Netlist::mna_symbolic`] and
//! [`netlist::Netlist::share_symbolic`].
//!
//! Long-running analyses accept a [`CancelToken`] (cooperative
//! cancellation with optional deadlines, checked inside every Newton
//! iteration), and the [`Simulator`] facade ties netlist, solver choice,
//! policy, and token together behind one entry point.
//!
//! # Example
//!
//! A resistive divider:
//!
//! ```
//! use fts_spice::netlist::{Netlist, Waveform};
//! use fts_spice::Simulator;
//!
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let out = nl.node("out");
//! nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(2.0))?;
//! nl.resistor("R1", vin, out, 1.0e3)?;
//! nl.resistor("R2", out, Netlist::GROUND, 3.0e3)?;
//! let op = Simulator::new(&nl).op()?;
//! assert!((op.voltage(out) - 1.5).abs() < 1e-6);
//! # Ok::<(), fts_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN inputs, which must never reach the solvers.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod analysis;
mod cancel;
pub mod complex;
pub mod ensemble;
mod error;
pub mod linalg;
pub mod measure;
pub mod mos3;
pub mod netlist;
mod sim;
mod stamp;

pub use analysis::{
    ConvergenceReport, Integrator, OpOptions, OpStrategy, SampleSink, Stepping, TranConfig,
};
pub use cancel::CancelToken;
pub use complex::Complex;
pub use ensemble::{LaneOutcome, OpEnsemble};
pub use error::SpiceError;
pub use linalg::{EnsembleLu, SparseLu, SparseMatrix, SparseMatrixEnsemble, Symbolic};
pub use mos3::Mos3Params;
pub use netlist::{DeviceView, MosParams, Netlist, NodeId, SolverKind, Waveform};
pub use sim::Simulator;
