//! Lockstep ensemble operating-point solver: K same-topology netlists
//! stamped, factored, and solved together.
//!
//! Monte Carlo trials of one lattice topology differ only in parameter
//! values, so their MNA systems share a sparsity pattern, a fill-reducing
//! ordering, *and* an LU structure. [`OpEnsemble`] exploits all three: it
//! stamps K trials into one [`SparseMatrixEnsemble`](crate::linalg::SparseMatrixEnsemble)
//! (structure-of-arrays, lane-minor), factors them with one lane-batched
//! numeric replay ([`EnsembleLu`](crate::linalg::EnsembleLu)), and runs
//! Newton on all lanes in lockstep under a per-lane convergence mask.
//!
//! Each lane walks the same homotopy ladder the scalar path would: plain
//! Newton from `x = 0`, then — because lattice bias points routinely
//! defeat cold Newton — the adaptive gmin ramp, with a *per-lane* shunt
//! conductance so every lane follows its own schedule while still
//! sharing one stamp, one factorization, and one triangular solve per
//! lockstep iteration.
//!
//! Lanes that converge are frozen; lanes that misbehave — a degraded
//! pivot, a singular skeleton, a non-finite update, or a stalled gmin
//! ramp — are *retired* and re-solved through the scalar [`Simulator`]
//! path with its full homotopy ladder, so one pathological trial never
//! stalls or poisons the batch.

use std::sync::Arc;

use crate::analysis::{ConvergenceReport, OpOptions, OpResult, OpStrategy};
use crate::linalg::{EnsembleLu, Symbolic};
use crate::netlist::Netlist;
use crate::stamp::{CapMode, EnsembleSystem, StampContext};
use crate::{Simulator, SpiceError};

/// Homotopy gmin floor — identical to the scalar ladder's.
const GMIN_FLOOR: f64 = 1e-12;
/// Starting shunt conductance of the gmin ramp — identical to the scalar
/// ladder's 10 mS.
const GMIN_RAMP_START: f64 = 1e-2;
/// Gmin reduction per accepted rung. The scalar ramp starts at ×10 and
/// accelerates adaptively, retrying failures at gentler steps; in
/// lockstep a failing straggler stalls the whole batch, so the ladder
/// walks fixed ×100 steps — warm-started rungs absorb the bigger jumps
/// in a handful of iterations, and the ladder reaches the floor in five.
const GMIN_RAMP_STEP: f64 = 100.0;
/// Iteration cap for the plain-Newton attempt. The scalar ladder burns
/// its full 120-iteration budget before conceding to gmin stepping, but
/// a Newton that has not converged in ~18 iterations here never does
/// (warm-started converging solves finish well inside 16) — conceding
/// early costs a converging lane nothing (the ramp reaches the same
/// floor-gmin fixed point) and saves the batch ~100 wasted lockstep
/// iterations per hard operating point.
const PLAIN_BUDGET_CAP: usize = 18;
/// Per-rung iteration cap for the ladder's fast ×[`GMIN_RAMP_STEP`]
/// descending rungs. A warm-started fast rung either converges in a
/// handful of iterations or it does not converge at this step size at
/// all — failing cheap matters, because the failure path (a gentle ×10
/// retry) usually succeeds. The opening rung solves cold from zero and
/// gets the full solve budget instead — opening failures were by far
/// the dominant cause of lane retirement under a uniform cap.
const FAST_RUNG_BUDGET_CAP: usize = 14;
/// Per-rung iteration cap for the gentle ×10 retry rungs. These are the
/// lane's last chance before retirement to the (expensive) scalar
/// fallback, so they get room to work.
const GENTLE_RUNG_BUDGET_CAP: usize = 40;
/// Smallest accepted source-continuation step (in λ, the source blend
/// coordinate). A warm re-solve whose bisection falls below this
/// abandons the walk for the cold gmin ladder: the operating point is
/// moving near-discontinuously in λ (a switch crossing its threshold —
/// mid-λ puts the flipping input at mid-rail, the transistor's
/// highest-gain region). The walk only runs on lanes the gmin ladder has
/// already failed — lanes otherwise headed for a far more expensive
/// scalar re-solve — so it can afford to bisect deep.
const WALK_MIN_STEP: f64 = 1.0 / 64.0;
/// Iteration cap per source-continuation solve. Walk solves are warm
/// and close — a converging one finishes in a handful of iterations —
/// so failures are cut well before the plain-Newton cap.
const WALK_BUDGET_CAP: usize = 14;

/// Where one lane currently sits on its homotopy ladder.
#[derive(Clone, Copy, Debug)]
enum LaneMode {
    /// Plain Newton at the floor gmin (the ladder's first strategy).
    Plain,
    /// Fixed-schedule gmin ladder: solve at `target`, and on success
    /// step it down ×`step` toward the floor, warm-starting each rung
    /// from the last. A failed ×[`GMIN_RAMP_STEP`] rung downshifts once
    /// to gentle ×10 steps from the last accepted rung; a failed gentle
    /// rung retires the lane to the scalar fallback, whose adaptive ramp
    /// can still rescue it.
    Ramp {
        /// Gmin of the rung currently in flight.
        target: f64,
        /// Gmin reduction applied on each accepted rung.
        step: f64,
    },
    /// Source continuation for warm re-solves: plain Newton at the floor
    /// gmin with the rhs blended between the previous solve's sources
    /// (λ = 0, where the warm start *is* a converged operating point)
    /// and this solve's (λ = 1). Source values enter the MNA system
    /// through the rhs only, so the blend is exact continuation; the
    /// accepting solve always runs at λ = 1 — the true system. Failures
    /// bisect `trying` toward `reached`; successes double the step; a
    /// step below [`WALK_MIN_STEP`] abandons the walk for the cold gmin
    /// ladder.
    Walk {
        /// Last λ that converged (its solution is checkpointed).
        reached: f64,
        /// λ of the solve in flight.
        trying: f64,
    },
    /// Finished: either solved (recorded separately) or destined for the
    /// scalar fallback.
    Idle,
}

/// How one lane of an ensemble solve finished.
#[derive(Debug)]
pub enum LaneOutcome {
    /// Converged inside the lockstep Newton loop.
    Solved(OpResult),
    /// Retired from the lockstep loop but solved by the scalar path
    /// (full homotopy ladder, per-lane pivoting).
    Fallback(OpResult),
    /// Both the lockstep loop and the scalar fallback failed.
    Failed(SpiceError),
}

impl LaneOutcome {
    /// The operating point, if either path converged.
    pub fn result(&self) -> Option<&OpResult> {
        match self {
            LaneOutcome::Solved(r) | LaneOutcome::Fallback(r) => Some(r),
            LaneOutcome::Failed(_) => None,
        }
    }

    /// True when this lane converged inside the lockstep loop.
    pub fn is_lockstep(&self) -> bool {
        matches!(self, LaneOutcome::Solved(_))
    }
}

/// A batch of same-topology netlists solved for their DC operating points
/// in lockstep.
///
/// Built from a *reference* netlist whose topology defines the shared
/// stamp plans, pattern, and symbolic analysis. Trials are added with
/// [`try_push`](OpEnsemble::try_push) — which admits only netlists that
/// pass [`Netlist::same_topology`] — and solved together with
/// [`solve_op`](OpEnsemble::solve_op). The ensemble is reusable: swap
/// source waveforms via [`lane_mut`](OpEnsemble::lane_mut), solve again,
/// or [`clear`](OpEnsemble::clear) and refill with the next chunk of
/// trials. Pattern, ordering, plans, and LU structure are amortized
/// across every solve.
pub struct OpEnsemble {
    reference: Netlist,
    symbolic: Arc<Symbolic>,
    lanes: Vec<Netlist>,
    sys: EnsembleSystem,
    lu: EnsembleLu,
    lockstep_budget: Option<usize>,
    /// Lane solutions from the previous [`solve_op`](OpEnsemble::solve_op)
    /// over the *same* lanes, used to warm-start the next solve (an
    /// input-assignment sweep re-solves the identical circuits with only
    /// source values changed). Invalidated by lane edits.
    warm_x: Vec<f64>,
    /// Per-lane validity of `warm_x`: true when that lane's previous
    /// solve actually converged (lockstep or scalar fallback), i.e. the
    /// warm lane is a real operating point the source-continuation walk
    /// can anchor at λ = 0.
    warm_ok: Vec<bool>,
}

impl OpEnsemble {
    /// Creates an ensemble for `reference`'s topology. The reference's
    /// shared symbolic analysis is reused when its pattern still matches;
    /// otherwise a fresh analysis runs once here and is installed on
    /// every admitted lane (so scalar fallbacks reuse it too).
    pub fn new(reference: &Netlist) -> OpEnsemble {
        let mut reference = reference.clone();
        let sys = EnsembleSystem::new(&reference, 1);
        fts_telemetry::counter("spice.solver.sparse_ensemble", 1);
        // a = unknowns, b = pattern non-zeros, like the scalar selection
        // events — the detail string tells traces the ensemble engaged.
        fts_telemetry::trace::emit(
            "solver_selected",
            "sparse-ensemble",
            reference.unknown_count() as f64,
            sys.matrix().nnz() as f64,
        );
        let symbolic = match reference.shared_symbolic() {
            Some(sym) if sym.matches(sys.matrix().pattern()) => {
                fts_telemetry::counter("spice.sparse.symbolic_reuse", 1);
                Arc::clone(sym)
            }
            _ => {
                fts_telemetry::counter("spice.sparse.symbolic_new", 1);
                Arc::new(Symbolic::analyze(sys.matrix().pattern()))
            }
        };
        reference.share_symbolic(Arc::clone(&symbolic));
        OpEnsemble {
            reference,
            lu: EnsembleLu::new(Arc::clone(&symbolic)),
            symbolic,
            lanes: Vec::new(),
            sys,
            lockstep_budget: None,
            warm_x: Vec::new(),
            warm_ok: Vec::new(),
        }
    }

    /// Caps each lockstep Newton solve (the plain attempt and every gmin
    /// rung) at `iterations` instead of the solve's `opts.max_iterations`.
    /// Lanes that exceed the cap fail that rung and escalate — next rung,
    /// or retirement to the scalar ladder, which still runs under the
    /// full options — so this bounds how long one slow lane can hold the
    /// whole batch.
    pub fn lockstep_budget(mut self, iterations: usize) -> OpEnsemble {
        self.lockstep_budget = Some(iterations);
        self
    }

    /// The reference netlist defining this ensemble's topology.
    pub fn reference(&self) -> &Netlist {
        &self.reference
    }

    /// Number of lanes currently enqueued.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lanes are enqueued.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Admits `netlist` as the next lane if it shares the reference's
    /// topology, returning its lane index. Topology mismatches (e.g. a
    /// defect trial that rewired a gate to a rail) hand the netlist back
    /// for the caller to route through the scalar path.
    ///
    /// # Errors
    ///
    /// Returns the netlist itself when its topology differs.
    pub fn try_push(&mut self, mut netlist: Netlist) -> Result<usize, Box<Netlist>> {
        if !self.reference.same_topology(&netlist) {
            return Err(Box::new(netlist));
        }
        netlist.share_symbolic(Arc::clone(&self.symbolic));
        self.lanes.push(netlist);
        self.warm_x.clear();
        self.warm_ok.clear();
        Ok(self.lanes.len() - 1)
    }

    /// Mutable access to one lane's netlist — for swapping source
    /// waveforms between solves (input-assignment sweeps). Structural
    /// edits are the caller's responsibility to avoid; waveform and
    /// parameter edits are safe.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range lane.
    pub fn lane_mut(&mut self, lane: usize) -> &mut Netlist {
        &mut self.lanes[lane]
    }

    /// Drops all lanes, keeping the amortized plans, symbolic analysis,
    /// and LU workspaces for the next chunk.
    pub fn clear(&mut self) {
        self.lanes.clear();
        self.warm_x.clear();
        self.warm_ok.clear();
    }

    /// Solves every lane's DC operating point in lockstep, returning one
    /// outcome per lane in lane order.
    ///
    /// Each lane walks the scalar ladder's first two strategies with the
    /// scalar Newton kernel's exact arithmetic — same stamps, same
    /// damping, same convergence test: plain Newton at the floor gmin
    /// (warm-started from the previous solve when the lanes are re-solved
    /// in an assignment sweep, else from `x0 = 0`), then (when
    /// `opts.gmin_stepping` allows) a gmin ladder restarted from zero and
    /// warm-started rung to rung, with the shunt conductance tracked *per
    /// lane* so lanes on different rungs still stamp, factor, and solve
    /// together. The *schedule* is tuned for
    /// lockstep rather than copied from the scalar path — capped plain
    /// budget, fixed gentle rungs (see [`PLAIN_BUDGET_CAP`],
    /// [`GMIN_RAMP_STEP`]) — which is sound because a converged operating
    /// point is schedule-independent: every path ends in the same
    /// floor-gmin Newton fixed point within the convergence tolerance
    /// (the ensemble-vs-scalar pin is enforced at 1e-9 by tests and the
    /// benchmark's twin gate). A lane whose ladder fails but whose
    /// previous solve converged gets one more lockstep strategy before
    /// retirement: a source-continuation walk ([`LaneMode::Walk`]) from
    /// its old operating point to the new sources. Converged lanes
    /// freeze; retired lanes (pivot degradation, singular skeleton,
    /// non-finite update, or a failed rung and walk) re-run through the
    /// scalar [`Simulator`] with `opts`' full homotopy ladder, adaptive
    /// ramp included.
    pub fn solve_op(&mut self, opts: &OpOptions) -> Vec<LaneOutcome> {
        let _span = fts_telemetry::span("spice.ensemble.solve_op");
        let k = self.lanes.len();
        if k == 0 {
            return Vec::new();
        }
        let n = self.reference.unknown_count();
        let nv = self.reference.node_count() - 1;
        self.sys.set_lanes(k);
        let ctx = StampContext {
            t: 0.0,
            cap_mode: CapMode::Open,
            cap_states: &[],
            gmin: GMIN_FLOOR,
            source_scale: 1.0,
            cancel: None,
        };
        self.sys.begin(&self.lanes, &ctx);

        let mut x = vec![0.0; n * k];
        let warm = self.warm_x.len() == n * k;
        if warm {
            x.copy_from_slice(&self.warm_x);
        }
        // Lanes whose previous solve over these exact circuits converged
        // may walk the source-continuation path on a plain-Newton miss;
        // the rest re-climb the gmin ladder from zero.
        let walk_ok: Vec<bool> = (0..k)
            .map(|lane| {
                warm && opts.source_stepping && self.warm_ok.get(lane).copied().unwrap_or(false)
            })
            .collect();
        let wx: &[f64] = &self.warm_x;
        let mut b = vec![0.0; n * k];
        // Checkpoint of each ramp lane's last accepted rung solution, the
        // rewind point for a fast-rung failure's gentle retry.
        let mut xck = vec![0.0; n * k];
        let mut mode = vec![LaneMode::Plain; k];
        let mut outcome: Vec<Option<(OpStrategy, f64)>> = vec![None; k];
        let mut iters_in_solve = vec![0usize; k];
        let mut lane_iters = vec![0u64; k];
        let mut lane_solves = vec![0u64; k];
        let mut active = vec![true; k];
        let mut alive = vec![true; k];
        let mut gmins = vec![GMIN_FLOOR; k];
        let mut lambdas = vec![1.0f64; k];
        let mut lockstep_iterations = 0u64;

        let budget = self.lockstep_budget.unwrap_or(opts.max_iterations).max(1);
        let plain_budget = budget.min(PLAIN_BUDGET_CAP);
        let fast_rung_budget = budget.min(FAST_RUNG_BUDGET_CAP);
        let gentle_rung_budget = budget.min(GENTLE_RUNG_BUDGET_CAP);
        let walk_budget = budget.min(WALK_BUDGET_CAP);

        // The current solve failed for `lane` (budget, pivot, skeleton, or
        // non-finite update): escalate along the ladder. Failed solves
        // charge the iterations they actually burned.
        let solve_failed = |lane: usize,
                            mode: &mut [LaneMode],
                            x: &mut [f64],
                            xck: &mut [f64],
                            iters_in_solve: &mut [usize],
                            lane_iters: &mut [u64],
                            lane_solves: &mut [u64]| {
            lane_solves[lane] += 1;
            lane_iters[lane] += iters_in_solve[lane] as u64;
            iters_in_solve[lane] = 0;
            match mode[lane] {
                LaneMode::Plain => {
                    if opts.gmin_stepping {
                        // Enter the ladder from the scalar ramp's x0 = 0.
                        for i in 0..n {
                            x[i * k + lane] = 0.0;
                            xck[i * k + lane] = 0.0;
                        }
                        mode[lane] = LaneMode::Ramp {
                            target: GMIN_RAMP_START,
                            step: GMIN_RAMP_STEP,
                        };
                    } else {
                        mode[lane] = LaneMode::Idle;
                    }
                }
                LaneMode::Ramp { target, step } => {
                    if step > 10.0 && target < GMIN_RAMP_START {
                        // A fast rung failed below the opening: rewind to
                        // the last accepted solution and downshift once to
                        // gentle ×10 steps. One retry speed only — further
                        // adaptivity would let a straggler stall the batch.
                        for i in 0..n {
                            x[i * k + lane] = xck[i * k + lane];
                        }
                        mode[lane] = LaneMode::Ramp {
                            target: (target * step / 10.0).max(GMIN_FLOOR),
                            step: 10.0,
                        };
                    } else if walk_ok[lane] {
                        // The ladder failed cold, but this lane's previous
                        // operating point is known: source-walk from it as
                        // a last resort before the scalar fallback.
                        for i in 0..n {
                            let idx = i * k + lane;
                            x[idx] = wx[idx];
                            xck[idx] = wx[idx];
                        }
                        mode[lane] = LaneMode::Walk {
                            reached: 0.0,
                            trying: 0.5,
                        };
                    } else {
                        // The opening rung or a gentle rung failed: retire.
                        // The scalar fallback re-runs the full adaptive
                        // ladder under the caller's options.
                        mode[lane] = LaneMode::Idle;
                    }
                }
                LaneMode::Walk { reached, trying } => {
                    let step = trying - reached;
                    if step <= WALK_MIN_STEP {
                        // The operating point moves near-discontinuously
                        // in λ — a switch sitting on its threshold. The
                        // ladder already failed this lane; retire it to
                        // the scalar fallback.
                        mode[lane] = LaneMode::Idle;
                    } else {
                        // Rewind to the last converged λ and bisect.
                        for i in 0..n {
                            x[i * k + lane] = xck[i * k + lane];
                        }
                        mode[lane] = LaneMode::Walk {
                            reached,
                            trying: reached + step * 0.5,
                        };
                    }
                }
                LaneMode::Idle => unreachable!("idle lane cannot fail a solve"),
            }
        };

        loop {
            let mut any = false;
            for lane in 0..k {
                let (on, g, lam) = match mode[lane] {
                    LaneMode::Plain => (true, GMIN_FLOOR, 1.0),
                    LaneMode::Ramp { target, .. } => (true, target, 1.0),
                    LaneMode::Walk { trying, .. } => (true, GMIN_FLOOR, trying),
                    LaneMode::Idle => (false, GMIN_FLOOR, 1.0),
                };
                active[lane] = on;
                gmins[lane] = g;
                lambdas[lane] = lam;
                any |= on;
            }
            if !any {
                break;
            }
            lockstep_iterations += 1;
            self.sys
                .iterate(&self.lanes, &active, &x, &gmins, &lambdas, &mut b);
            alive.copy_from_slice(&active);
            if self.lu.factor(self.sys.matrix(), &mut alive).is_err() {
                // Every live lane's skeleton factorization failed at its
                // current rung; each escalates (plain lanes enter the
                // ladder, ramp lanes retire to the scalar fallback).
                for (lane, &on) in active.iter().enumerate() {
                    if on {
                        solve_failed(
                            lane,
                            &mut mode,
                            &mut x,
                            &mut xck,
                            &mut iters_in_solve,
                            &mut lane_iters,
                            &mut lane_solves,
                        );
                    }
                }
                continue;
            }
            for lane in 0..k {
                if active[lane] && !alive[lane] {
                    // Pivot degraded for this lane's values under the
                    // skeleton's pivot order — the lane's solve fails,
                    // like a scalar `SingularMatrix`, and escalates.
                    active[lane] = false;
                    solve_failed(
                        lane,
                        &mut mode,
                        &mut x,
                        &mut xck,
                        &mut iters_in_solve,
                        &mut lane_iters,
                        &mut lane_solves,
                    );
                }
            }
            if !active.iter().any(|&a| a) {
                continue;
            }
            self.lu.solve_in_place(&mut b);
            for lane in 0..k {
                if !active[lane] {
                    continue;
                }
                iters_in_solve[lane] += 1;
                let finite = (0..n).all(|i| b[i * k + lane].is_finite());
                if !finite {
                    solve_failed(
                        lane,
                        &mut mode,
                        &mut x,
                        &mut xck,
                        &mut iters_in_solve,
                        &mut lane_iters,
                        &mut lane_solves,
                    );
                    continue;
                }
                // Voltage-step damping and the step-norm convergence test,
                // both identical to the scalar Newton kernel.
                let mut max_dv = 0.0f64;
                for i in 0..nv {
                    max_dv = max_dv.max((b[i * k + lane] - x[i * k + lane]).abs());
                }
                let damp = if max_dv > 2.0 { 2.0 / max_dv } else { 1.0 };
                let mut converged = true;
                let mut max_step = 0.0f64;
                for i in 0..n {
                    let idx = i * k + lane;
                    let step = (b[idx] - x[idx]) * damp;
                    if step.abs() > 1e-9 + 1e-6 * x[idx].abs() {
                        converged = false;
                    }
                    max_step = max_step.max(step.abs());
                    x[idx] += step;
                }
                if converged && damp == 1.0 {
                    // This solve succeeded; advance the lane's ladder.
                    lane_solves[lane] += 1;
                    lane_iters[lane] += iters_in_solve[lane] as u64;
                    iters_in_solve[lane] = 0;
                    match mode[lane] {
                        LaneMode::Plain => {
                            mode[lane] = LaneMode::Idle;
                            outcome[lane] = Some((OpStrategy::Newton, max_step));
                        }
                        LaneMode::Ramp { target, step } => {
                            if target <= GMIN_FLOOR {
                                mode[lane] = LaneMode::Idle;
                                outcome[lane] = Some((OpStrategy::GminStepping, max_step));
                            } else {
                                // Accept the rung: checkpoint it, then
                                // descend one fixed step. Warm starts make
                                // each rung a handful of iterations.
                                for i in 0..n {
                                    xck[i * k + lane] = x[i * k + lane];
                                }
                                mode[lane] = LaneMode::Ramp {
                                    target: (target / step).max(GMIN_FLOOR),
                                    step,
                                };
                            }
                        }
                        LaneMode::Walk { reached, trying } => {
                            if trying >= 1.0 {
                                // λ = 1 is the true system (the stamp
                                // copies the rhs exactly there) — solved.
                                mode[lane] = LaneMode::Idle;
                                outcome[lane] = Some((OpStrategy::SourceStepping, max_step));
                            } else {
                                // Accept this λ: checkpoint, then double
                                // the step toward 1.
                                for i in 0..n {
                                    xck[i * k + lane] = x[i * k + lane];
                                }
                                let step = trying - reached;
                                mode[lane] = LaneMode::Walk {
                                    reached: trying,
                                    trying: (trying + 2.0 * step).min(1.0),
                                };
                            }
                        }
                        LaneMode::Idle => unreachable!("idle lane cannot converge"),
                    }
                } else {
                    let cap = match mode[lane] {
                        LaneMode::Plain => plain_budget,
                        LaneMode::Walk { .. } => walk_budget,
                        // The opening rung solves cold from zero — give it
                        // the full budget; descending rungs are warm.
                        LaneMode::Ramp { target, .. } if target >= GMIN_RAMP_START => budget,
                        LaneMode::Ramp { step, .. } if step > 10.0 => fast_rung_budget,
                        LaneMode::Ramp { .. } => gentle_rung_budget,
                        LaneMode::Idle => unreachable!("idle lane cannot iterate"),
                    };
                    if iters_in_solve[lane] >= cap {
                        solve_failed(
                            lane,
                            &mut mode,
                            &mut x,
                            &mut xck,
                            &mut iters_in_solve,
                            &mut lane_iters,
                            &mut lane_solves,
                        );
                    }
                }
            }
        }

        // Retain the final lane states as the next solve's starting
        // point, and record which lanes actually converged — only those
        // anchor the next solve's source-continuation walk.
        self.warm_x.clear();
        self.warm_x.extend_from_slice(&x);
        self.warm_ok.clear();
        self.warm_ok.extend(outcome.iter().map(|o| o.is_some()));

        let node_count = self.reference.node_count();
        let mut outcomes: Vec<LaneOutcome> = Vec::with_capacity(k);
        for lane in 0..k {
            if let Some((strategy, max_step)) = outcome[lane] {
                let x_lane: Vec<f64> = (0..n).map(|i| x[i * k + lane]).collect();
                outcomes.push(LaneOutcome::Solved(OpResult::from_parts(
                    x_lane,
                    node_count,
                    ConvergenceReport {
                        strategy,
                        newton_iterations: lane_iters[lane],
                        solves: lane_solves[lane],
                        final_residual: max_step,
                    },
                )));
                continue;
            }
            match Simulator::new(&self.lanes[lane]).op_options(*opts).op() {
                Ok(r) => {
                    // The scalar ladder found this lane's operating point;
                    // seed the warm start with it so the next solve of a
                    // sweep can source-walk instead of falling back again.
                    for (i, &v) in r.unknowns().iter().enumerate() {
                        self.warm_x[i * k + lane] = v;
                    }
                    self.warm_ok[lane] = true;
                    outcomes.push(LaneOutcome::Fallback(r));
                }
                Err(e) => outcomes.push(LaneOutcome::Failed(e)),
            }
        }

        let fallbacks = outcome.iter().filter(|o| o.is_none()).count();
        let lockstep_solved = k - fallbacks;
        fts_telemetry::counter("spice.ensemble.lanes", k as u64);
        fts_telemetry::counter("spice.ensemble.lockstep_iterations", lockstep_iterations);
        if fallbacks > 0 {
            fts_telemetry::counter("spice.ensemble.scalar_fallback", fallbacks as u64);
        }
        fts_telemetry::record(
            "spice.ensemble.lane_utilization",
            lockstep_solved as f64 / k as f64,
        );
        // a = lanes in the batch, b = lanes that fell back to scalar.
        fts_telemetry::trace::emit("ensemble_solve", "", k as f64, fallbacks as f64);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{MosParams, Waveform};

    /// A pulled-up pass transistor: the lattice crosspoint in miniature.
    /// `vgate` turns the switch on or off; `ohms` varies per lane.
    fn switch_cell(vgate: f64, ohms: f64, vth: f64) -> (Netlist, crate::NodeId) {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        let gate = nl.node("gate");
        nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        nl.vsource("VG", gate, Netlist::GROUND, Waveform::Dc(vgate))
            .unwrap();
        nl.resistor("RPU", vdd, out, ohms).unwrap();
        nl.nmos(
            "M1",
            out,
            gate,
            Netlist::GROUND,
            MosParams {
                kp: 2.0e-4,
                vth,
                lambda: 0.01,
                w_over_l: 4.0,
            },
        )
        .unwrap();
        (nl, out)
    }

    #[test]
    fn ensemble_op_matches_scalar_simulator() {
        let (reference, out) = switch_cell(1.2, 500.0e3, 0.4);
        let mut ens = OpEnsemble::new(&reference);
        let mut lanes = Vec::new();
        for lane in 0..6 {
            let vgate = if lane % 2 == 0 { 1.2 } else { 0.0 };
            let (nl, _) = switch_cell(vgate, 500.0e3 * (1.0 + 0.03 * lane as f64), 0.4);
            lanes.push(nl.clone());
            ens.try_push(nl).unwrap();
        }
        let opts = OpOptions::full();
        let outcomes = ens.solve_op(&opts);
        assert_eq!(outcomes.len(), 6);
        for (lane, outcome) in outcomes.iter().enumerate() {
            assert!(
                outcome.is_lockstep(),
                "lane {lane} should solve in lockstep"
            );
            let scalar = Simulator::new(&lanes[lane]).op().unwrap();
            let v_ens = outcome.result().unwrap().voltage(out);
            let v_scalar = scalar.voltage(out);
            assert!(
                (v_ens - v_scalar).abs() <= 1e-9,
                "lane {lane}: ensemble {v_ens} scalar {v_scalar}"
            );
        }
    }

    #[test]
    fn ensemble_is_reusable_across_assignment_sweeps() {
        let (reference, out) = switch_cell(1.2, 500.0e3, 0.4);
        let mut ens = OpEnsemble::new(&reference);
        for lane in 0..3 {
            let (nl, _) = switch_cell(1.2, 500.0e3 + 1.0e3 * lane as f64, 0.4);
            ens.try_push(nl).unwrap();
        }
        let opts = OpOptions::full();
        for &vgate in &[1.2, 0.0, 1.2] {
            for lane in 0..3 {
                ens.lane_mut(lane)
                    .set_vsource("VG", Waveform::Dc(vgate))
                    .unwrap();
            }
            let outcomes = ens.solve_op(&opts);
            for (lane, outcome) in outcomes.iter().enumerate() {
                let (nl, _) = switch_cell(vgate, 500.0e3 + 1.0e3 * lane as f64, 0.4);
                let scalar = Simulator::new(&nl).op().unwrap();
                let v = outcome.result().expect("converged").voltage(out);
                assert!(
                    (v - scalar.voltage(out)).abs() <= 1e-9,
                    "vgate {vgate} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn exhausted_budget_falls_back_to_scalar_mid_batch() {
        // An off switch is effectively linear and converges in two
        // lockstep iterations; an on switch needs more. A budget of two
        // therefore solves the off lanes in lockstep and retires the on
        // lanes to the scalar ladder — which must still get them right.
        let (reference, out) = switch_cell(1.2, 500.0e3, 0.4);
        let mut ens = OpEnsemble::new(&reference).lockstep_budget(2);
        let gates = [0.0, 1.2, 0.0, 1.2];
        for &vgate in &gates {
            let (nl, _) = switch_cell(vgate, 500.0e3, 0.4);
            ens.try_push(nl).unwrap();
        }
        let opts = OpOptions::full();
        let outcomes = ens.solve_op(&opts);
        for (lane, (&vgate, outcome)) in gates.iter().zip(&outcomes).enumerate() {
            let (nl, _) = switch_cell(vgate, 500.0e3, 0.4);
            let scalar = Simulator::new(&nl).op().unwrap();
            let v = outcome.result().expect("some path converged").voltage(out);
            assert!(
                (v - scalar.voltage(out)).abs() <= 1e-9,
                "lane {lane} vgate {vgate}"
            );
            if vgate == 0.0 {
                assert!(outcome.is_lockstep(), "off lane {lane} stays in lockstep");
            } else {
                assert!(
                    matches!(outcome, LaneOutcome::Fallback(_)),
                    "on lane {lane} must fall back"
                );
            }
        }
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let (reference, _) = switch_cell(1.2, 500.0e3, 0.4);
        let mut ens = OpEnsemble::new(&reference);
        let mut other = Netlist::new();
        let a = other.node("a");
        other
            .vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        let rejected = ens.try_push(other).unwrap_err();
        assert_eq!(rejected.device_count(), 1);
        assert!(ens.is_empty());
    }
}
