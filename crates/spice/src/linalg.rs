//! Linear algebra for the MNA core: dense LU (reference oracle) and a
//! sparse engine with a reusable symbolic factorization.
//!
//! The sparse path follows the classic analyze / factor / solve split used
//! by production circuit solvers (KLU, SuperLU):
//!
//! * [`SparseMatrix`] — compressed-sparse-row storage built once from the
//!   netlist's stamp pattern; Newton iterations only rewrite `values`.
//! * [`Symbolic`] — a fill-reducing column ordering (greedy minimum degree
//!   on the pattern of `A + Aᵀ`) plus a permuted column view of the CSR
//!   pattern. Computed once per netlist *topology* and shared across Newton
//!   iterations, homotopy rungs, transient timesteps, and every Monte Carlo
//!   trial of an ensemble.
//! * [`SparseLu`] — left-looking Gilbert–Peierls LU with partial pivoting.
//!   All factor/solve workspaces live in the struct and are reused, so a
//!   numeric refactorization performs no steady-state allocation.

use std::sync::Arc;

use crate::SpiceError;

/// Pivot magnitude below which a matrix is declared singular. Matches the
/// dense path so both solvers fail the same inputs.
const SINGULAR_EPS: f64 = 1e-300;

/// Relative threshold for preferring the diagonal entry as pivot. MNA
/// matrices are close to diagonally dominant; keeping pivots on the
/// diagonal preserves the fill predicted by the symmetric ordering.
const DIAG_PIVOT_TOL: f64 = 0.1;

/// Minimum acceptable ratio of an inherited pivot to its column maximum
/// during a numeric-only refactorization. Newton restamping changes values
/// gradually, so inherited pivots almost always stay acceptable; when one
/// degrades past this threshold the refactorization falls back to a full
/// factorization with fresh partial pivoting.
const REFACTOR_PIVOT_TOL: f64 = 1.0e-3;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of range");
        self.data[row * self.n + col]
    }

    /// Adds `value` to entry `(row, col)` — the MNA stamping primitive.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of range");
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` by LU with partial pivoting. The factorization is
    /// performed in place, destroying the matrix *contents* but keeping the
    /// allocation so callers can [`clear`](Matrix::clear) and restamp.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a pivot collapses.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            let mut best = self.data[col * n + col].abs();
            for row in col + 1..n {
                let v = self.data[row * n + col].abs();
                if v > best {
                    best = v;
                    piv = row;
                }
            }
            if best < SINGULAR_EPS {
                return Err(SpiceError::SingularMatrix);
            }
            if piv != col {
                for k in 0..n {
                    self.data.swap(col * n + k, piv * n + k);
                }
                x.swap(col, piv);
            }
            let diag = self.data[col * n + col];
            for row in col + 1..n {
                let factor = self.data[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    let v = self.data[col * n + k];
                    self.data[row * n + k] -= factor * v;
                }
                x[row] -= factor * x[col];
            }
        }
        for col in (0..n).rev() {
            x[col] /= self.data[col * n + col];
            for row in 0..col {
                x[row] -= self.data[row * n + col] * x[col];
            }
        }
        Ok(x)
    }
}

/// A square sparse matrix in compressed-sparse-row form with a *fixed*
/// pattern: the set of nonzero positions is decided at construction and
/// iterations only rewrite values.
///
/// Within each row, column indices are sorted, so [`slot`](SparseMatrix::slot)
/// is a binary search — devices resolve their slots once at plan-build time
/// and afterwards index `values` directly.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds the matrix from a list of `(row, col)` positions. Duplicates
    /// collapse to a single slot; all values start at zero.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_entries(
        n: usize,
        entries: impl IntoIterator<Item = (usize, usize)>,
    ) -> SparseMatrix {
        let mut pairs: Vec<(usize, usize)> = entries.into_iter().collect();
        for &(r, c) in &pairs {
            assert!(r < n && c < n, "pattern index out of range");
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut row_ptr = vec![0usize; n + 1];
        for &(r, _) in &pairs {
            row_ptr[r + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let cols: Vec<usize> = pairs.iter().map(|&(_, c)| c).collect();
        let values = vec![0.0; cols.len()];
        SparseMatrix {
            n,
            row_ptr,
            cols,
            values,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Index into [`values`](SparseMatrix::values) for entry `(row, col)`,
    /// or `None` when the position is not part of the pattern. Binary
    /// search within the row — O(log row-degree), not an O(n) scan.
    #[inline]
    pub fn slot(&self, row: usize, col: usize) -> Option<usize> {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.cols[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|off| lo + off)
    }

    /// Adds `value` to entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is not part of the pattern.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        let slot = self
            .slot(row, col)
            .expect("stamp outside the matrix pattern");
        self.values[slot] += value;
    }

    /// Reads entry `(row, col)`; positions outside the pattern read as zero.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.slot(row, col).map_or(0.0, |s| self.values[s])
    }

    /// Resets all values to zero, keeping the pattern.
    pub fn clear_values(&mut self) {
        self.values.fill(0.0);
    }

    /// The value array, indexable by [`slot`](SparseMatrix::slot) results.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array for in-place restamping.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// True when `other` has the identical sparsity pattern.
    pub fn same_pattern(&self, other: &SparseMatrix) -> bool {
        self.n == other.n && self.row_ptr == other.row_ptr && self.cols == other.cols
    }
}

/// The symbolic half of a sparse LU: a fill-reducing column ordering plus a
/// permuted-column view of a CSR pattern.
///
/// Analysis is the expensive part (minimum-degree is quadratic-ish), so a
/// `Symbolic` is computed once per topology and shared — wrapped in an
/// [`Arc`] — across every numeric refactorization of matrices with the same
/// pattern: all Newton iterations, every transient timestep, and all Monte
/// Carlo trials of an ensemble.
#[derive(Debug)]
pub struct Symbolic {
    n: usize,
    /// Pattern fingerprint for [`matches`](Symbolic::matches).
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    /// Column elimination order: step `k` eliminates original column `q[k]`.
    q: Vec<usize>,
    /// Permuted-column view: for step `k`, the entries of `A(:, q[k])` are
    /// `(crow[p], cslot[p])` for `p` in `cptr[k]..cptr[k + 1]`, where
    /// `cslot` indexes the CSR value array.
    cptr: Vec<usize>,
    crow: Vec<usize>,
    cslot: Vec<usize>,
}

impl Symbolic {
    /// Analyzes the pattern of `a`: computes a greedy minimum-degree
    /// ordering on `A + Aᵀ` and caches the permuted column view.
    pub fn analyze(a: &SparseMatrix) -> Symbolic {
        let n = a.n;
        let q = min_degree(n, &a.row_ptr, &a.cols);
        // Build the column view in elimination order.
        let mut col_count = vec![0usize; n];
        for &c in &a.cols {
            col_count[c] += 1;
        }
        let mut pos_of = vec![0usize; n]; // original column -> elimination step
        for (k, &c) in q.iter().enumerate() {
            pos_of[c] = k;
        }
        let mut cptr = vec![0usize; n + 1];
        for k in 0..n {
            cptr[k + 1] = cptr[k] + col_count[q[k]];
        }
        let mut next = cptr.clone();
        let nnz = a.cols.len();
        let mut crow = vec![0usize; nnz];
        let mut cslot = vec![0usize; nnz];
        for row in 0..n {
            for slot in a.row_ptr[row]..a.row_ptr[row + 1] {
                let k = pos_of[a.cols[slot]];
                let p = next[k];
                next[k] += 1;
                crow[p] = row;
                cslot[p] = slot;
            }
        }
        Symbolic {
            n,
            row_ptr: a.row_ptr.clone(),
            cols: a.cols.clone(),
            q,
            cptr,
            crow,
            cslot,
        }
    }

    /// Matrix dimension this symbolic was analyzed for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// True when `a` has exactly the pattern this symbolic was built from —
    /// the precondition for reusing it. Monte Carlo defect trials can rewire
    /// gates and *change* the pattern; callers must check and fall back to a
    /// fresh analysis when this returns false.
    pub fn matches(&self, a: &SparseMatrix) -> bool {
        self.n == a.n && self.row_ptr == a.row_ptr && self.cols == a.cols
    }
}

/// Greedy minimum-degree ordering on the pattern of `A + Aᵀ`, deterministic
/// ties broken by lowest index. Quadratic in the worst case, which is fine
/// for MNA systems of a few thousand unknowns analyzed once per topology.
fn min_degree(n: usize, row_ptr: &[usize], cols: &[usize]) -> Vec<usize> {
    use std::collections::BTreeSet;
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for r in 0..n {
        for &c in &cols[row_ptr[r]..row_ptr[r + 1]] {
            if r != c {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| alive[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("ordering exhausted live vertices early");
        order.push(v);
        alive[v] = false;
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neigh {
            adj[u].remove(&v);
        }
        // Eliminating v cliques its neighbourhood (models fill).
        for i in 0..neigh.len() {
            for j in i + 1..neigh.len() {
                let (a, b) = (neigh[i], neigh[j]);
                if adj[a].insert(b) {
                    adj[b].insert(a);
                }
            }
        }
        adj[v].clear();
    }
    order
}

/// Left-looking Gilbert–Peierls sparse LU with partial pivoting.
///
/// `L` and `U` are stored column-wise (in pivot order) in flat vectors that
/// are truncated — never freed — between factorizations, so repeated
/// [`factor`](SparseLu::factor) calls on the same pattern perform no
/// steady-state allocation.
#[derive(Debug)]
pub struct SparseLu {
    symbolic: Arc<Symbolic>,
    // L: unit lower triangular, diagonal entry stored explicitly (1.0).
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<f64>,
    // U: upper triangular, diagonal stored last in each column.
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<f64>,
    /// Row permutation: `pinv[original_row] = pivot_position`, -1 while
    /// unpivoted during factorization.
    pinv: Vec<isize>,
    // Workspaces.
    x: Vec<f64>,
    xi: Vec<usize>,
    dfs_stack: Vec<usize>,
    pstack: Vec<usize>,
    marked: Vec<bool>,
    work: Vec<f64>,
    factored: bool,
}

impl SparseLu {
    /// Creates a factorizer bound to a symbolic analysis.
    pub fn new(symbolic: Arc<Symbolic>) -> SparseLu {
        let n = symbolic.n;
        SparseLu {
            symbolic,
            lp: vec![0; n + 1],
            li: Vec::new(),
            lx: Vec::new(),
            up: vec![0; n + 1],
            ui: Vec::new(),
            ux: Vec::new(),
            pinv: vec![-1; n],
            x: vec![0.0; n],
            xi: vec![0; n],
            dfs_stack: vec![0; n],
            pstack: vec![0; n],
            marked: vec![false; n],
            work: vec![0.0; n],
            factored: false,
        }
    }

    /// The symbolic analysis this factorizer uses.
    pub fn symbolic(&self) -> &Arc<Symbolic> {
        &self.symbolic
    }

    /// Nonzeros in `L + U` after the last successful factorization —
    /// the fill-in measure reported by telemetry.
    pub fn factor_nnz(&self) -> usize {
        self.li.len() + self.ui.len()
    }

    /// Numerically factors `a`, whose pattern must match the symbolic.
    ///
    /// The first call runs the full Gilbert–Peierls factorization with
    /// partial pivoting; subsequent calls replay only the numeric updates
    /// against the stored `L`/`U` structure and pivot order (no reach
    /// computation, no pivot search), falling back to a full pivoting
    /// factorization when a reused pivot has degraded past
    /// [`REFACTOR_PIVOT_TOL`] of its column maximum.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no acceptable pivot
    /// exists for some column.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s pattern differs from the symbolic analysis.
    pub fn factor(&mut self, a: &SparseMatrix) -> Result<(), SpiceError> {
        assert!(
            self.symbolic.matches(a),
            "matrix pattern does not match symbolic analysis"
        );
        if self.factored && self.refactor(a) {
            fts_telemetry::counter("spice.sparse.factor", 1);
            fts_telemetry::counter("spice.sparse.refactor", 1);
            return Ok(());
        }
        self.factor_fresh(a)
    }

    /// Numeric-only refactorization: reuses the previous factorization's
    /// `L`/`U` pattern and row permutation, which are structurally exact
    /// for any matrix with the symbolic's pattern under the same pivot
    /// order. Returns `false` — with the scatter workspace cleaned — when
    /// a pivot degraded and full pivoting must rerun.
    fn refactor(&mut self, a: &SparseMatrix) -> bool {
        let n = self.symbolic.n;
        let sym = Arc::clone(&self.symbolic);
        for k in 0..n {
            // Scatter A(:, q[k]) into pivot-row coordinates.
            for p in sym.cptr[k]..sym.cptr[k + 1] {
                self.x[self.pinv[sym.crow[p]] as usize] = a.values[sym.cslot[p]];
            }
            // x = L \ A(:, q[k]): the stored U rows of this column are
            // already in topological order, so replaying them in storage
            // order applies every update before its value is consumed.
            let dpos = self.up[k + 1] - 1; // diagonal is stored last
            for t in self.up[k]..dpos {
                let j = self.ui[t];
                let xj = self.x[j];
                self.ux[t] = xj;
                if xj != 0.0 {
                    for p in self.lp[j] + 1..self.lp[j + 1] {
                        self.x[self.li[p]] -= self.lx[p] * xj;
                    }
                }
            }
            let pivot = self.x[k];
            let mut amax = pivot.abs();
            for p in self.lp[k] + 1..self.lp[k + 1] {
                amax = amax.max(self.x[self.li[p]].abs());
            }
            if !(pivot.abs() >= REFACTOR_PIVOT_TOL * amax && amax >= SINGULAR_EPS) {
                // Inherited pivot no longer acceptable (or the column
                // vanished): clean the workspace and redo full pivoting.
                self.x.fill(0.0);
                return false;
            }
            self.ux[dpos] = pivot;
            self.x[k] = 0.0;
            for p in self.lp[k] + 1..self.lp[k + 1] {
                let i = self.li[p];
                self.lx[p] = self.x[i] / pivot;
                self.x[i] = 0.0;
            }
            for t in self.up[k]..dpos {
                self.x[self.ui[t]] = 0.0;
            }
        }
        true
    }

    /// Full Gilbert–Peierls factorization with partial pivoting; also
    /// (re)establishes the `L`/`U` structure [`refactor`](Self::refactor)
    /// replays.
    fn factor_fresh(&mut self, a: &SparseMatrix) -> Result<(), SpiceError> {
        let n = self.symbolic.n;
        let first_factor = !self.factored && self.li.is_empty();
        self.factored = false;
        self.li.clear();
        self.lx.clear();
        self.ui.clear();
        self.ux.clear();
        self.pinv.fill(-1);
        self.x.fill(0.0);
        self.marked.fill(false);
        let sym = Arc::clone(&self.symbolic);
        for k in 0..n {
            self.lp[k] = self.li.len();
            self.up[k] = self.ui.len();
            // Symbolic step: reach of A(:, q[k]) over the graph of L.
            let col_entries = sym.cptr[k]..sym.cptr[k + 1];
            let mut top = n;
            for p in col_entries.clone() {
                let row = sym.crow[p];
                if !self.marked[row] {
                    top = self.dfs(row, top);
                }
            }
            // Numeric step: x = L \ A(:, q[k]), in topological order.
            for p in col_entries {
                self.x[sym.crow[p]] = a.values[sym.cslot[p]];
            }
            for t in top..n {
                let j = self.xi[t];
                let jnew = self.pinv[j];
                if jnew < 0 {
                    continue;
                }
                let xj = self.x[j];
                if xj != 0.0 {
                    let (start, end) = (self.lp[jnew as usize] + 1, self.lp[jnew as usize + 1]);
                    for p in start..end {
                        self.x[self.li[p]] -= self.lx[p] * xj;
                    }
                }
            }
            // Pivot: largest magnitude among unpivoted rows, preferring the
            // diagonal when it is within DIAG_PIVOT_TOL of the maximum.
            let mut ipiv = usize::MAX;
            let mut amax = -1.0f64;
            for t in top..n {
                let i = self.xi[t];
                if self.pinv[i] < 0 {
                    let v = self.x[i].abs();
                    if v > amax {
                        amax = v;
                        ipiv = i;
                    }
                } else {
                    self.ui.push(self.pinv[i] as usize);
                    self.ux.push(self.x[i]);
                }
            }
            if ipiv == usize::MAX || amax < SINGULAR_EPS {
                // Clean up scatter state before bailing.
                for t in top..n {
                    let i = self.xi[t];
                    self.marked[i] = false;
                    self.x[i] = 0.0;
                }
                return Err(SpiceError::SingularMatrix);
            }
            let orig_col = sym.q[k];
            if self.pinv[orig_col] < 0 && self.x[orig_col].abs() >= amax * DIAG_PIVOT_TOL {
                ipiv = orig_col;
            }
            let pivot = self.x[ipiv];
            self.ui.push(k);
            self.ux.push(pivot);
            self.pinv[ipiv] = k as isize;
            self.li.push(ipiv);
            self.lx.push(1.0);
            for t in top..n {
                let i = self.xi[t];
                if self.pinv[i] < 0 {
                    self.li.push(i);
                    self.lx.push(self.x[i] / pivot);
                }
                self.marked[i] = false;
                self.x[i] = 0.0;
            }
        }
        self.lp[n] = self.li.len();
        self.up[n] = self.ui.len();
        // Remap L's row indices from original to pivot order.
        for idx in self.li.iter_mut() {
            *idx = self.pinv[*idx] as usize;
        }
        self.factored = true;
        fts_telemetry::counter("spice.sparse.factor", 1);
        if first_factor {
            // Fill-in diagnostic, once per workspace: L+U nonzeros for the
            // pattern this LU was analyzed on.
            fts_telemetry::record("spice.sparse.factor_nnz", self.factor_nnz() as f64);
        }
        Ok(())
    }

    /// Depth-first search from `row` over the graph of already-computed `L`
    /// columns; emits the reach into `xi[top..]` in topological order.
    fn dfs(&mut self, row: usize, mut top: usize) -> usize {
        let mut head: usize = 0;
        self.dfs_stack[0] = row;
        loop {
            let j = self.dfs_stack[head];
            let jnew = self.pinv[j];
            if !self.marked[j] {
                self.marked[j] = true;
                self.pstack[head] = if jnew < 0 {
                    0
                } else {
                    // Skip L's unit diagonal entry.
                    self.lp[jnew as usize] + 1
                };
            }
            let mut done = true;
            if jnew >= 0 {
                let end = self.lp[jnew as usize + 1];
                let mut p = self.pstack[head];
                while p < end {
                    let i = self.li[p];
                    if !self.marked[i] {
                        self.pstack[head] = p + 1;
                        head += 1;
                        self.dfs_stack[head] = i;
                        done = false;
                        break;
                    }
                    p += 1;
                }
                if !done {
                    continue;
                }
            }
            if done {
                top -= 1;
                self.xi[top] = j;
                if head == 0 {
                    break;
                }
                head -= 1;
            }
        }
        top
    }

    /// Solves `A·x = b` in place using the last factorization.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful [`factor`](SparseLu::factor)
    /// or with a mismatched length.
    pub fn solve_in_place(&mut self, b: &mut [f64]) {
        assert!(self.factored, "solve before successful factor");
        let n = self.symbolic.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply row permutation: work = P·b.
        for (i, &bi) in b.iter().enumerate() {
            self.work[self.pinv[i] as usize] = bi;
        }
        // Forward substitution, L unit-diagonal.
        for k in 0..n {
            let xk = self.work[k];
            if xk != 0.0 {
                for p in self.lp[k] + 1..self.lp[k + 1] {
                    self.work[self.li[p]] -= self.lx[p] * xk;
                }
            }
        }
        // Backward substitution; U's diagonal is the last entry per column.
        for k in (0..n).rev() {
            let end = self.up[k + 1];
            let xk = self.work[k] / self.ux[end - 1];
            self.work[k] = xk;
            if xk != 0.0 {
                for p in self.up[k]..end - 1 {
                    self.work[self.ui[p]] -= self.ux[p] * xk;
                }
            }
        }
        // Undo column permutation: x[q[k]] = work[k].
        for k in 0..n {
            b[self.symbolic.q[k]] = self.work[k];
        }
        fts_telemetry::counter("spice.sparse.solve", 1);
    }

    /// Convenience: factor `a` and solve for `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when factorization fails.
    pub fn factor_solve(&mut self, a: &SparseMatrix, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        self.factor(a)?;
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        Ok(x)
    }
}

/// A structure-of-arrays ensemble of sparse matrices: one shared CSR
/// pattern and `lanes` independent value sets stored lane-minor, so the
/// `lanes` values of one structural nonzero are contiguous at
/// `values[slot * lanes ..][..lanes]`.
///
/// This is the container behind the ensemble Monte Carlo path: K trials of
/// the same lattice topology stamp K MNA matrices into one allocation and
/// [`EnsembleLu`] factors and solves all lanes in lockstep, amortizing the
/// pattern, ordering, and LU structure work that the scalar path repeats
/// per trial.
#[derive(Debug, Clone)]
pub struct SparseMatrixEnsemble {
    pattern: SparseMatrix,
    lanes: usize,
    values: Vec<f64>,
}

impl SparseMatrixEnsemble {
    /// Wraps a pattern with `lanes` zero-initialized value lanes. The
    /// pattern's own value array is ignored; only its structure is used.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0`.
    pub fn new(pattern: SparseMatrix, lanes: usize) -> SparseMatrixEnsemble {
        assert!(lanes > 0, "an ensemble needs at least one lane");
        let values = vec![0.0; pattern.nnz() * lanes];
        SparseMatrixEnsemble {
            pattern,
            lanes,
            values,
        }
    }

    /// Matrix dimension (shared by every lane).
    pub fn n(&self) -> usize {
        self.pattern.n()
    }

    /// Structural nonzeros per lane.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// Number of value lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared sparsity pattern.
    pub fn pattern(&self) -> &SparseMatrix {
        &self.pattern
    }

    /// Resizes the ensemble to `lanes` value lanes, zeroing all values.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0`.
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!(lanes > 0, "an ensemble needs at least one lane");
        self.lanes = lanes;
        self.values.clear();
        self.values.resize(self.pattern.nnz() * lanes, 0.0);
    }

    /// The lane-minor value array: slot `s` of lane `l` lives at
    /// `s * lanes + l`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable lane-minor value array for in-place restamping.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Resets all lanes to zero, keeping the pattern and lane count.
    pub fn clear_values(&mut self) {
        self.values.fill(0.0);
    }

    /// Copies one lane's values into `dst`, which must have `nnz` slots —
    /// the slot-major layout a scalar [`SparseLu`] consumes.
    ///
    /// # Panics
    ///
    /// Panics on a lane or length mismatch.
    pub fn gather_lane(&self, lane: usize, dst: &mut [f64]) {
        assert!(lane < self.lanes, "lane out of range");
        assert_eq!(dst.len(), self.pattern.nnz(), "lane length mismatch");
        for (slot, out) in dst.iter_mut().enumerate() {
            *out = self.values[slot * self.lanes + lane];
        }
    }
}

/// Lane-batched numeric LU over a [`SparseMatrixEnsemble`].
///
/// One *skeleton* lane is factored with the full pivoting machinery of
/// [`SparseLu`]; the resulting `L`/`U` structure and pivot order are
/// value-independent facts about the pattern, so every other lane replays
/// only the numeric updates against them — the same replay the scalar
/// refactorization performs, but over contiguous lane chunks the
/// autovectorizer turns into SIMD.
///
/// Lanes whose inherited pivot degrades past [`REFACTOR_PIVOT_TOL`] are
/// *retired* (their `alive` flag cleared) rather than failing the batch;
/// the caller re-runs retired lanes through the scalar path, which can
/// re-pivot for that lane's values.
#[derive(Debug)]
pub struct EnsembleLu {
    skeleton: SparseLu,
    scratch: Option<SparseMatrix>,
    lanes: usize,
    /// Lane-minor numeric `L`, parallel to the skeleton's `li`.
    lx_lanes: Vec<f64>,
    /// Lane-minor numeric `U`, parallel to the skeleton's `ui`.
    ux_lanes: Vec<f64>,
    /// Lane-minor scatter workspace, `n * lanes`.
    x: Vec<f64>,
    /// Lane-minor solve workspace, `n * lanes`.
    work: Vec<f64>,
    /// One-column lane buffer that breaks aliasing in the update loops.
    xj: Vec<f64>,
    /// Tentative live mask for the replay pass, committed only when no
    /// lane failed under a stale pivot order.
    alive_scratch: Vec<bool>,
    factored: bool,
}

impl EnsembleLu {
    /// Creates an ensemble factorizer bound to a symbolic analysis.
    pub fn new(symbolic: Arc<Symbolic>) -> EnsembleLu {
        EnsembleLu {
            skeleton: SparseLu::new(symbolic),
            scratch: None,
            lanes: 0,
            lx_lanes: Vec::new(),
            ux_lanes: Vec::new(),
            x: Vec::new(),
            work: Vec::new(),
            xj: Vec::new(),
            alive_scratch: Vec::new(),
            factored: false,
        }
    }

    /// The symbolic analysis this factorizer uses.
    pub fn symbolic(&self) -> &Arc<Symbolic> {
        &self.skeleton.symbolic
    }

    /// Factors every live lane of `a` in lockstep.
    ///
    /// The skeleton structure — `L`/`U` pattern and pivot order — is
    /// established once from the first live lane via [`SparseLu::factor`]
    /// (full pivot search) and then *reused across calls*: in steady
    /// state every call is a single lane-batched numeric replay, with a
    /// per-lane pivot-acceptance test policing degradation exactly as the
    /// scalar numeric refactorization does. Only when a live lane fails
    /// acceptance under the inherited pivot order does the skeleton
    /// re-pivot (from the first still-live lane) and replay once more; a
    /// lane that still fails is retired in place — `alive[lane]` is
    /// cleared and its factors hold unusable values — without disturbing
    /// the other lanes.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when every live lane's
    /// skeleton factorization fails (all lanes are retired on return).
    ///
    /// # Panics
    ///
    /// Panics when `a`'s pattern differs from the symbolic analysis or
    /// `alive.len() != a.lanes()`.
    pub fn factor(
        &mut self,
        a: &SparseMatrixEnsemble,
        alive: &mut [bool],
    ) -> Result<(), SpiceError> {
        assert!(
            self.skeleton.symbolic.matches(a.pattern()),
            "ensemble pattern does not match symbolic analysis"
        );
        assert_eq!(alive.len(), a.lanes(), "alive mask length mismatch");
        self.factored = false;
        let l = a.lanes();
        self.lanes = l;
        let fresh = !self.skeleton.factored;
        if fresh {
            self.repivot(a, alive)?;
        }
        let mut tentative = std::mem::take(&mut self.alive_scratch);
        tentative.clear();
        tentative.extend_from_slice(alive);
        let clean = self.replay(a, &mut tentative);
        if clean || fresh {
            // No acceptance failures (or the pivot order is brand new, in
            // which case a failing lane is genuinely degenerate): commit.
            alive.copy_from_slice(&tentative);
        } else {
            // A lane failed under an inherited pivot order that may simply
            // be stale: re-pivot from the first still-live lane and replay
            // once more before retiring anyone.
            self.repivot(a, alive)?;
            self.replay(a, alive);
        }
        self.alive_scratch = tentative;
        self.factored = true;
        fts_telemetry::counter("spice.ensemble.factor", 1);
        Ok(())
    }

    /// (Re)establishes the skeleton structure — `L`/`U` pattern and pivot
    /// order — from the first live lane, retiring lanes whose scalar
    /// factorization is singular.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no live lane factors.
    fn repivot(&mut self, a: &SparseMatrixEnsemble, alive: &mut [bool]) -> Result<(), SpiceError> {
        let scratch = match &mut self.scratch {
            Some(s) if s.same_pattern(a.pattern()) => s,
            slot => slot.insert(a.pattern().clone()),
        };
        for (lane, live) in alive.iter_mut().enumerate().take(a.lanes()) {
            if !*live {
                continue;
            }
            a.gather_lane(lane, scratch.values_mut());
            match self.skeleton.factor(scratch) {
                Ok(()) => return Ok(()),
                Err(_) => *live = false,
            }
        }
        Err(SpiceError::SingularMatrix)
    }

    /// Lane-batched numeric replay of every live lane against the
    /// skeleton structure. Lanes failing the pivot-acceptance test are
    /// retired in `alive`. Returns `true` when no lane was retired.
    fn replay(&mut self, a: &SparseMatrixEnsemble, alive: &mut [bool]) -> bool {
        let l = a.lanes();
        let n = self.skeleton.symbolic.n;
        let sym = Arc::clone(&self.skeleton.symbolic);
        let (lp, li, up, ui, pinv) = (
            &self.skeleton.lp,
            &self.skeleton.li,
            &self.skeleton.up,
            &self.skeleton.ui,
            &self.skeleton.pinv,
        );
        // `lx`/`ux` are fully overwritten below and `x` is restored to
        // all-zeros by the per-column zero-clean, so none of them is
        // re-zeroed on reuse — resizing only when the shape changes keeps
        // the hot path free of O(nnz·lanes) memsets.
        if self.lx_lanes.len() != li.len() * l {
            self.lx_lanes.clear();
            self.lx_lanes.resize(li.len() * l, 0.0);
        }
        if self.ux_lanes.len() != ui.len() * l {
            self.ux_lanes.clear();
            self.ux_lanes.resize(ui.len() * l, 0.0);
        }
        if self.x.len() != n * l {
            self.x.clear();
            self.x.resize(n * l, 0.0);
        }
        if self.xj.len() != l {
            self.xj.clear();
            self.xj.resize(l, 0.0);
        }
        let (x, lx, ux, xj) = (
            &mut self.x,
            &mut self.lx_lanes,
            &mut self.ux_lanes,
            &mut self.xj,
        );

        let mut clean = true;
        for k in 0..n {
            // Scatter A(:, q[k]) of every lane into pivot-row coordinates.
            for p in sym.cptr[k]..sym.cptr[k + 1] {
                let dst = pinv[sym.crow[p]] as usize * l;
                let src = sym.cslot[p] * l;
                x[dst..dst + l].copy_from_slice(&a.values()[src..src + l]);
            }
            // x = L \ A(:, q[k]) per lane: the stored U rows are in
            // topological order, exactly as the scalar refactorization
            // replays them. No zero-skip — branchless lane chunks instead.
            let dpos = up[k + 1] - 1; // diagonal is stored last
            for t in up[k]..dpos {
                let j = ui[t];
                xj.copy_from_slice(&x[j * l..j * l + l]);
                ux[t * l..t * l + l].copy_from_slice(xj);
                for p in lp[j] + 1..lp[j + 1] {
                    let row = &mut x[li[p] * l..li[p] * l + l];
                    let lrow = &lx[p * l..p * l + l];
                    for lane in 0..l {
                        row[lane] -= lrow[lane] * xj[lane];
                    }
                }
            }
            // Per-lane pivot acceptance; a failed lane is retired but its
            // (garbage) arithmetic continues — NaN/Inf stay in the lane.
            for (lane, live) in alive.iter_mut().enumerate() {
                if !*live {
                    continue;
                }
                let pivot = x[k * l + lane];
                let mut amax = pivot.abs();
                for p in lp[k] + 1..lp[k + 1] {
                    amax = amax.max(x[li[p] * l + lane].abs());
                }
                if !(pivot.abs() >= REFACTOR_PIVOT_TOL * amax && amax >= SINGULAR_EPS) {
                    *live = false;
                    clean = false;
                }
            }
            let (drow, xrow) = (&mut ux[dpos * l..dpos * l + l], &x[k * l..k * l + l]);
            drow.copy_from_slice(xrow);
            for p in lp[k] + 1..lp[k + 1] {
                let base = li[p] * l;
                for lane in 0..l {
                    lx[p * l + lane] = x[base + lane] / drow[lane];
                }
            }
            // Zero-clean the scatter, column by column as the scalar does.
            x[k * l..k * l + l].fill(0.0);
            for p in lp[k] + 1..lp[k + 1] {
                x[li[p] * l..li[p] * l + l].fill(0.0);
            }
            for t in up[k]..dpos {
                x[ui[t] * l..ui[t] * l + l].fill(0.0);
            }
        }
        clean
    }

    /// Solves `A·x = b` in place for every lane at once. `b` is lane-minor
    /// (`n * lanes` values, unknown-major). Retired lanes produce garbage
    /// in their own chunk only; callers must ignore them.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful [`factor`](EnsembleLu::factor)
    /// or with a mismatched length.
    pub fn solve_in_place(&mut self, b: &mut [f64]) {
        assert!(self.factored, "solve before successful factor");
        let n = self.skeleton.symbolic.n;
        let l = self.lanes;
        assert_eq!(b.len(), n * l, "rhs length mismatch");
        // Fully overwritten by the row permutation below — no re-zeroing.
        if self.work.len() != n * l {
            self.work.clear();
            self.work.resize(n * l, 0.0);
        }
        let (lp, li, up, ui, pinv) = (
            &self.skeleton.lp,
            &self.skeleton.li,
            &self.skeleton.up,
            &self.skeleton.ui,
            &self.skeleton.pinv,
        );
        let (work, lx, ux, xj) = (&mut self.work, &self.lx_lanes, &self.ux_lanes, &mut self.xj);
        // Apply row permutation: work = P·b, lane chunks at a time.
        for i in 0..n {
            let dst = pinv[i] as usize * l;
            work[dst..dst + l].copy_from_slice(&b[i * l..i * l + l]);
        }
        // Forward substitution, L unit-diagonal, branchless over lanes.
        for k in 0..n {
            xj.copy_from_slice(&work[k * l..k * l + l]);
            for p in lp[k] + 1..lp[k + 1] {
                let row = &mut work[li[p] * l..li[p] * l + l];
                let lrow = &lx[p * l..p * l + l];
                for lane in 0..l {
                    row[lane] -= lrow[lane] * xj[lane];
                }
            }
        }
        // Backward substitution; U's diagonal is the last entry per column.
        for k in (0..n).rev() {
            let end = self.skeleton.up[k + 1];
            {
                let drow = &ux[(end - 1) * l..end * l];
                let row = &mut work[k * l..k * l + l];
                for lane in 0..l {
                    row[lane] /= drow[lane];
                }
                xj.copy_from_slice(row);
            }
            for t in up[k]..end - 1 {
                let row = &mut work[ui[t] * l..ui[t] * l + l];
                let urow = &ux[t * l..t * l + l];
                for lane in 0..l {
                    row[lane] -= urow[lane] * xj[lane];
                }
            }
        }
        // Undo column permutation: x[q[k]] = work[k].
        for k in 0..n {
            let src = k * l;
            let dst = self.skeleton.symbolic.q[k] * l;
            b[dst..dst + l].copy_from_slice(&work[src..src + l]);
        }
        fts_telemetry::counter("spice.ensemble.solve", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // First pivot is zero — requires a row swap.
        let mut m = Matrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 2.0);
        let x = m.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_roundtrip() {
        let n = 12;
        let mut m = Matrix::zeros(n);
        let mut state = 1u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut dense = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                let v = next();
                dense[r * n + c] = v;
                m.add(r, c, v);
            }
            m.add(r, r, 3.0); // diagonally dominant
            dense[r * n + r] += 3.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| dense[r * n + c] * x_true[c]).sum())
            .collect();
        let x = m.solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}]");
        }
    }

    #[test]
    fn detects_singularity() {
        let mut m = Matrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(SpiceError::SingularMatrix));
    }

    #[test]
    fn dense_solve_allows_reuse_after_clear() {
        let mut m = Matrix::zeros(2);
        m.add(0, 0, 2.0);
        m.add(1, 1, 4.0);
        let x = m.solve(&[2.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0]);
        // The same allocation is restamped and solved again.
        m.clear();
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        let x = m.solve(&[5.0, 6.0]).unwrap();
        assert_eq!(x, vec![5.0, 6.0]);
    }

    #[test]
    fn sparse_pattern_slots() {
        let m = SparseMatrix::from_entries(3, vec![(0, 0), (0, 2), (1, 1), (2, 0), (2, 2), (0, 0)]);
        assert_eq!(m.nnz(), 5, "duplicate entries collapse");
        assert!(m.slot(0, 0).is_some());
        assert!(m.slot(0, 1).is_none());
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn sparse_add_get() {
        let mut m = SparseMatrix::from_entries(2, vec![(0, 0), (1, 1), (0, 1)]);
        m.add(0, 1, 2.5);
        m.add(0, 1, 0.5);
        assert_eq!(m.get(0, 1), 3.0);
        m.clear_values();
        assert_eq!(m.get(0, 1), 0.0);
    }

    fn dense_and_sparse_random(n: usize, seed: u64, density: f64) -> (Matrix, SparseMatrix) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        let mut vals = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r == c || next() < density {
                    let v = if r == c { 4.0 + next() } else { next() - 0.5 };
                    entries.push((r, c));
                    vals.push(v);
                }
            }
        }
        let mut dense = Matrix::zeros(n);
        let mut sparse = SparseMatrix::from_entries(n, entries.clone());
        for (&(r, c), &v) in entries.iter().zip(&vals) {
            dense.add(r, c, v);
            sparse.add(r, c, v);
        }
        (dense, sparse)
    }

    #[test]
    fn sparse_lu_matches_dense() {
        for seed in 1..6u64 {
            let n = 20;
            let (mut dense, sparse) = dense_and_sparse_random(n, seed, 0.15);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let sym = Arc::new(Symbolic::analyze(&sparse));
            let mut lu = SparseLu::new(sym);
            let xs = lu.factor_solve(&sparse, &b).unwrap();
            let xd = dense.solve(&b).unwrap();
            for i in 0..n {
                assert!(
                    (xs[i] - xd[i]).abs() < 1e-9,
                    "seed {seed} x[{i}]: sparse {} dense {}",
                    xs[i],
                    xd[i]
                );
            }
        }
    }

    #[test]
    fn sparse_refactor_reuses_symbolic() {
        let n = 16;
        let (_, mut sparse) = dense_and_sparse_random(n, 7, 0.2);
        let sym = Arc::new(Symbolic::analyze(&sparse));
        let mut lu = SparseLu::new(Arc::clone(&sym));
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x1 = lu.factor_solve(&sparse, &b).unwrap();
        // Rewrite values in place (scale by 2): solution halves exactly.
        for v in sparse.values_mut() {
            *v *= 2.0;
        }
        let x2 = lu.factor_solve(&sparse, &b).unwrap();
        for i in 0..n {
            assert!((x2[i] - x1[i] / 2.0).abs() < 1e-12);
        }
        assert!(sym.matches(&sparse));
    }

    #[test]
    fn refactor_matches_full_factorization() {
        // Same pattern, independently drawn values: the numeric-only
        // refactorization must reproduce a from-scratch factorization.
        let n = 20;
        let (_, first) = dense_and_sparse_random(n, 11, 0.2);
        let sym = Arc::new(Symbolic::analyze(&first));
        let mut reused = SparseLu::new(Arc::clone(&sym));
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        reused.factor_solve(&first, &b).unwrap();
        // New values on the identical pattern (seed only changes values
        // when the pattern is regenerated identically — perturb instead).
        let mut second = first.clone();
        for (k, v) in second.values_mut().iter_mut().enumerate() {
            *v += 0.01 * ((k % 13) as f64 - 6.0);
        }
        let x_refactor = reused.factor_solve(&second, &b).unwrap();
        let mut fresh = SparseLu::new(Arc::clone(&sym));
        let x_fresh = fresh.factor_solve(&second, &b).unwrap();
        for i in 0..n {
            assert!(
                (x_refactor[i] - x_fresh[i]).abs() < 1e-12,
                "x[{i}]: refactor {} fresh {}",
                x_refactor[i],
                x_fresh[i]
            );
        }
    }

    #[test]
    fn refactor_pivot_degradation_falls_back() {
        // First factorization pivots on a healthy diagonal; the second
        // matrix zeroes that pivot, so the inherited order is unusable and
        // factor() must transparently redo full pivoting.
        let entries = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut m = SparseMatrix::from_entries(2, entries);
        m.add(0, 0, 4.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 4.0);
        let sym = Arc::new(Symbolic::analyze(&m));
        let mut lu = SparseLu::new(sym);
        lu.factor_solve(&m, &[1.0, 1.0]).unwrap();
        m.clear_values();
        m.add(0, 0, 1.0e-15);
        m.add(0, 1, 1.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 1.0e-15);
        // Near-antidiagonal system: x ≈ [b1/2, b0].
        let x = lu.factor_solve(&m, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        // And the workspace stays healthy for further refactorizations.
        m.clear_values();
        m.add(0, 0, 4.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 4.0);
        let x = lu.factor_solve(&m, &[5.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_zero_pivot_needs_permutation() {
        // [[0, 1], [2, 0]] — structurally fine, but the (0,0) pivot is zero
        // so factorization must permute rows.
        let mut m = SparseMatrix::from_entries(2, vec![(0, 1), (1, 0)]);
        m.add(0, 1, 1.0);
        m.add(1, 0, 2.0);
        let sym = Arc::new(Symbolic::analyze(&m));
        let mut lu = SparseLu::new(sym);
        let x = lu.factor_solve(&m, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_detects_singularity() {
        // Duplicate rows.
        let mut m = SparseMatrix::from_entries(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        let sym = Arc::new(Symbolic::analyze(&m));
        let mut lu = SparseLu::new(sym);
        assert_eq!(lu.factor(&m), Err(SpiceError::SingularMatrix));
        // A matrix with an empty column is structurally singular.
        let empty_col = SparseMatrix::from_entries(2, vec![(0, 0), (1, 0)]);
        let sym = Arc::new(Symbolic::analyze(&empty_col));
        let mut lu = SparseLu::new(sym);
        assert_eq!(lu.factor(&empty_col), Err(SpiceError::SingularMatrix));
    }

    #[test]
    fn min_degree_avoids_arrow_matrix_fill() {
        // Arrow matrix: dense first row/column + diagonal. Eliminating the
        // hub (vertex 0) first fills the matrix completely; minimum degree
        // defers it until its degree collapses, so LU has zero fill-in.
        let n = 8;
        let mut entries = vec![];
        let mut m = SparseMatrix::from_entries(
            n,
            (0..n).flat_map(|i| {
                if i == 0 {
                    vec![(0, 0)]
                } else {
                    vec![(i, i), (0, i), (i, 0)]
                }
            }),
        );
        for i in 0..n {
            m.add(i, i, 4.0);
            if i > 0 {
                m.add(0, i, 1.0);
                m.add(i, 0, 1.0);
                entries.push(i);
            }
        }
        let sym = Symbolic::analyze(&m);
        assert!(sym.q.iter().position(|&v| v == 0).unwrap() >= n - 2);
        let mut lu = SparseLu::new(Arc::new(sym));
        lu.factor(&m).unwrap();
        assert_eq!(lu.factor_nnz(), m.nnz() + n, "no fill-in beyond L∪U");
    }

    /// Builds an ensemble from per-lane diagonally dominant value sets on
    /// one shared random pattern, returning the ensemble and the per-lane
    /// scalar matrices it was filled from.
    fn random_ensemble(
        n: usize,
        lanes: usize,
        seed: u64,
        density: f64,
    ) -> (SparseMatrixEnsemble, Vec<SparseMatrix>) {
        let (_, pattern) = dense_and_sparse_random(n, seed, density);
        let mut ens = SparseMatrixEnsemble::new(pattern.clone(), lanes);
        let mut scalars = Vec::new();
        let mut state = seed ^ 0xA5A5_A5A5;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for lane in 0..lanes {
            let mut m = pattern.clone();
            m.clear_values();
            for slot in 0..m.nnz() {
                // Keep the diagonal dominant so every lane's partial pivot
                // lands on the diagonal — the regime the ensemble targets.
                let row = (0..n).find(|&r| m.row_ptr[r + 1] > slot).unwrap();
                let v = if m.cols[slot] == row {
                    4.0 + next()
                } else {
                    next() - 0.5
                };
                m.values_mut()[slot] = v;
                ens.values_mut()[slot * lanes + lane] = v;
            }
            scalars.push(m);
        }
        (ens, scalars)
    }

    #[test]
    fn ensemble_lu_matches_per_lane_scalar() {
        for &lanes in &[1usize, 3, 4, 8] {
            let n = 20;
            let (ens, scalars) = random_ensemble(n, lanes, 42 + lanes as u64, 0.15);
            let sym = Arc::new(Symbolic::analyze(ens.pattern()));
            let mut elu = EnsembleLu::new(Arc::clone(&sym));
            let mut alive = vec![true; lanes];
            elu.factor(&ens, &mut alive).unwrap();
            assert!(alive.iter().all(|&a| a), "no lane should retire");
            // One RHS per lane, lane-minor.
            let mut b = vec![0.0; n * lanes];
            for i in 0..n {
                for lane in 0..lanes {
                    b[i * lanes + lane] = (i as f64 + 1.0) * 0.3 - lane as f64;
                }
            }
            let mut x = b.clone();
            elu.solve_in_place(&mut x);
            for (lane, scalar) in scalars.iter().enumerate() {
                let mut lu = SparseLu::new(Arc::clone(&sym));
                let bl: Vec<f64> = (0..n).map(|i| b[i * lanes + lane]).collect();
                let xs = lu.factor_solve(scalar, &bl).unwrap();
                for i in 0..n {
                    assert!(
                        (x[i * lanes + lane] - xs[i]).abs() < 1e-12,
                        "lanes {lanes} lane {lane} x[{i}]: ensemble {} scalar {}",
                        x[i * lanes + lane],
                        xs[i]
                    );
                }
            }
        }
    }

    #[test]
    fn ensemble_refactor_on_second_round_stays_pinned() {
        // Second factor of the same EnsembleLu goes through the skeleton's
        // numeric refactorization path; results must stay pinned to the
        // per-lane scalar solves.
        let (n, lanes) = (18, 4);
        let (mut ens, mut scalars) = random_ensemble(n, lanes, 7, 0.2);
        let sym = Arc::new(Symbolic::analyze(ens.pattern()));
        let mut elu = EnsembleLu::new(Arc::clone(&sym));
        let mut alive = vec![true; lanes];
        elu.factor(&ens, &mut alive).unwrap();
        // Perturb all lanes in place and factor again.
        for (k, v) in ens.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.001 * ((k % 7) as f64);
        }
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            for slot in 0..scalar.nnz() {
                let k = slot * lanes + lane;
                scalar.values_mut()[slot] *= 1.0 + 0.001 * ((k % 7) as f64);
            }
        }
        let mut alive = vec![true; lanes];
        elu.factor(&ens, &mut alive).unwrap();
        assert!(alive.iter().all(|&a| a));
        let b: Vec<f64> = (0..n * lanes).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut x = b.clone();
        elu.solve_in_place(&mut x);
        for (lane, scalar) in scalars.iter().enumerate() {
            let mut lu = SparseLu::new(Arc::clone(&sym));
            let bl: Vec<f64> = (0..n).map(|i| b[i * lanes + lane]).collect();
            let xs = lu.factor_solve(scalar, &bl).unwrap();
            for i in 0..n {
                assert!((x[i * lanes + lane] - xs[i]).abs() < 1e-12, "lane {lane}");
            }
        }
    }

    #[test]
    fn ensemble_retires_degraded_lane_without_disturbing_others() {
        // Lane 0 healthy and diagonally dominant; lane 1 near-antidiagonal,
        // which the skeleton's inherited (diagonal) pivot order cannot
        // factor within the refactorization tolerance.
        let entries = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let pattern = SparseMatrix::from_entries(2, entries);
        let mut ens = SparseMatrixEnsemble::new(pattern.clone(), 2);
        let lane_vals = [[4.0, 1.0, 1.0, 4.0], [1.0e-15, 1.0, 2.0, 1.0e-15]];
        for (lane, vals) in lane_vals.iter().enumerate() {
            for (slot, v) in vals.iter().enumerate() {
                ens.values_mut()[slot * 2 + lane] = *v;
            }
        }
        let sym = Arc::new(Symbolic::analyze(&pattern));
        let mut elu = EnsembleLu::new(Arc::clone(&sym));
        let mut alive = vec![true, true];
        elu.factor(&ens, &mut alive).unwrap();
        assert!(alive[0], "healthy lane stays live");
        assert!(!alive[1], "antidiagonal lane retires to the scalar path");
        let mut b = vec![1.0, 1.0, 1.0, 1.0];
        elu.solve_in_place(&mut b);
        // Lane 0 against its scalar twin.
        let mut scalar = pattern.clone();
        scalar.values_mut().copy_from_slice(&lane_vals[0]);
        let mut lu = SparseLu::new(sym);
        let xs = lu.factor_solve(&scalar, &[1.0, 1.0]).unwrap();
        for i in 0..2 {
            assert!((b[i * 2] - xs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ensemble_singular_skeleton_lane_advances_to_next() {
        // Lane 0 singular (duplicate rows); lane 1 healthy. The skeleton
        // search must retire lane 0 and factor from lane 1.
        let pattern = SparseMatrix::from_entries(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut ens = SparseMatrixEnsemble::new(pattern.clone(), 2);
        let lane_vals = [[1.0, 2.0, 2.0, 4.0], [3.0, 1.0, 1.0, 3.0]];
        for (lane, vals) in lane_vals.iter().enumerate() {
            for (slot, v) in vals.iter().enumerate() {
                ens.values_mut()[slot * 2 + lane] = *v;
            }
        }
        let sym = Arc::new(Symbolic::analyze(&pattern));
        let mut elu = EnsembleLu::new(Arc::clone(&sym));
        let mut alive = vec![true, true];
        elu.factor(&ens, &mut alive).unwrap();
        assert!(!alive[0], "singular lane retires");
        assert!(alive[1]);
        // And an all-singular ensemble fails outright.
        let mut all_bad = SparseMatrixEnsemble::new(pattern.clone(), 1);
        for (slot, v) in [1.0, 2.0, 2.0, 4.0].iter().enumerate() {
            all_bad.values_mut()[slot] = *v;
        }
        let mut elu = EnsembleLu::new(Arc::new(Symbolic::analyze(&pattern)));
        let mut alive = vec![true];
        assert_eq!(
            elu.factor(&all_bad, &mut alive),
            Err(SpiceError::SingularMatrix)
        );
        assert!(!alive[0]);
    }

    #[test]
    fn sparse_error_leaves_state_reusable() {
        // After a singular failure, the same SparseLu must factor a good
        // matrix of the same pattern.
        let mut m = SparseMatrix::from_entries(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        let sym = Arc::new(Symbolic::analyze(&m));
        let mut lu = SparseLu::new(sym);
        assert!(lu.factor(&m).is_err());
        m.clear_values();
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        let x = lu.factor_solve(&m, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
