//! Dense LU linear algebra for the MNA core.
//!
//! Circuit matrices at this scale (a 9×9 lattice of six-MOSFET switches is
//! a few hundred unknowns) are handled comfortably by dense LU with partial
//! pivoting; sparsity is future work and called out in DESIGN.md.

use crate::SpiceError;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of range");
        self.data[row * self.n + col]
    }

    /// Adds `value` to entry `(row, col)` — the MNA stamping primitive.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of range");
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` in place by LU with partial pivoting, consuming
    /// the matrix contents.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a pivot collapses.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            let mut best = self.data[col * n + col].abs();
            for row in col + 1..n {
                let v = self.data[row * n + col].abs();
                if v > best {
                    best = v;
                    piv = row;
                }
            }
            if best < 1e-300 {
                return Err(SpiceError::SingularMatrix);
            }
            if piv != col {
                for k in 0..n {
                    self.data.swap(col * n + k, piv * n + k);
                }
                x.swap(col, piv);
            }
            let diag = self.data[col * n + col];
            for row in col + 1..n {
                let factor = self.data[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    let v = self.data[col * n + k];
                    self.data[row * n + k] -= factor * v;
                }
                x[row] -= factor * x[col];
            }
        }
        for col in (0..n).rev() {
            x[col] /= self.data[col * n + col];
            for row in 0..col {
                x[row] -= self.data[row * n + col] * x[col];
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // First pivot is zero — requires a row swap.
        let mut m = Matrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 2.0);
        let x = m.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_roundtrip() {
        let n = 12;
        let mut m = Matrix::zeros(n);
        let mut state = 1u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut dense = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                let v = next();
                dense[r * n + c] = v;
                m.add(r, c, v);
            }
            m.add(r, r, 3.0); // diagonally dominant
            dense[r * n + r] += 3.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| dense[r * n + c] * x_true[c]).sum())
            .collect();
        let x = m.solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}]");
        }
    }

    #[test]
    fn detects_singularity() {
        let mut m = Matrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(SpiceError::SingularMatrix));
    }
}
