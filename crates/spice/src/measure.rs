//! Waveform measurements: the quantities §V of the paper reports for its
//! transient runs (logic levels, rise and fall times).

/// Finds the time where `signal` first crosses `level` moving in the given
/// direction, searching from `start_index`, with linear interpolation.
///
/// Returns `None` when no crossing exists.
///
/// # Panics
///
/// Panics if `time` and `signal` lengths differ.
pub fn crossing_time(
    time: &[f64],
    signal: &[f64],
    level: f64,
    rising: bool,
    start_index: usize,
) -> Option<f64> {
    assert_eq!(time.len(), signal.len(), "time/signal length mismatch");
    for k in start_index.max(1)..signal.len() {
        let (a, b) = (signal[k - 1], signal[k]);
        let crossed = if rising {
            a < level && b >= level
        } else {
            a > level && b <= level
        };
        if crossed {
            let f = (level - a) / (b - a);
            return Some(time[k - 1] + f * (time[k] - time[k - 1]));
        }
    }
    None
}

/// 10%–90% rise time of the first rising edge after `start_index`,
/// between the given low and high reference levels.
///
/// Returns `None` when the edge is incomplete.
pub fn rise_time(
    time: &[f64],
    signal: &[f64],
    low: f64,
    high: f64,
    start_index: usize,
) -> Option<f64> {
    let swing = high - low;
    let t10 = crossing_time(time, signal, low + 0.1 * swing, true, start_index)?;
    let k10 = time.iter().position(|&t| t >= t10).unwrap_or(start_index);
    let t90 = crossing_time(time, signal, low + 0.9 * swing, true, k10)?;
    Some(t90 - t10)
}

/// 90%–10% fall time of the first falling edge after `start_index`.
///
/// Returns `None` when the edge is incomplete.
pub fn fall_time(
    time: &[f64],
    signal: &[f64],
    low: f64,
    high: f64,
    start_index: usize,
) -> Option<f64> {
    let swing = high - low;
    let t90 = crossing_time(time, signal, low + 0.9 * swing, false, start_index)?;
    let k90 = time.iter().position(|&t| t >= t90).unwrap_or(start_index);
    let t10 = crossing_time(time, signal, low + 0.1 * swing, false, k90)?;
    Some(t10 - t90)
}

/// Mean of the signal over a time window — used to read settled logic
/// levels.
///
/// # Panics
///
/// Panics when the window contains no samples or lengths differ.
pub fn settled_level(time: &[f64], signal: &[f64], t_from: f64, t_to: f64) -> f64 {
    assert_eq!(time.len(), signal.len(), "time/signal length mismatch");
    let mut sum = 0.0;
    let mut count = 0usize;
    for (t, v) in time.iter().zip(signal) {
        if *t >= t_from && *t <= t_to {
            sum += v;
            count += 1;
        }
    }
    assert!(count > 0, "no samples in [{t_from}, {t_to}]");
    sum / count as f64
}

/// Minimum and maximum of the signal over a window.
///
/// # Panics
///
/// Panics when the window contains no samples or lengths differ.
pub fn extrema(time: &[f64], signal: &[f64], t_from: f64, t_to: f64) -> (f64, f64) {
    assert_eq!(time.len(), signal.len(), "time/signal length mismatch");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (t, v) in time.iter().zip(signal) {
        if *t >= t_from && *t <= t_to {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
    }
    assert!(lo <= hi, "no samples in [{t_from}, {t_to}]");
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> (Vec<f64>, Vec<f64>) {
        // 0→1 linear ramp over t ∈ [0, 1], then flat.
        let time: Vec<f64> = (0..=200).map(|k| k as f64 * 0.01).collect();
        let signal: Vec<f64> = time.iter().map(|&t| t.min(1.0)).collect();
        (time, signal)
    }

    #[test]
    fn crossing_interpolates() {
        let (t, s) = ramp();
        let tc = crossing_time(&t, &s, 0.5, true, 0).unwrap();
        assert!((tc - 0.5).abs() < 1e-9);
        assert!(crossing_time(&t, &s, 0.5, false, 0).is_none());
    }

    #[test]
    fn rise_time_of_linear_ramp() {
        let (t, s) = ramp();
        let tr = rise_time(&t, &s, 0.0, 1.0, 0).unwrap();
        assert!(
            (tr - 0.8).abs() < 1e-6,
            "10–90 of a unit ramp is 0.8, got {tr}"
        );
    }

    #[test]
    fn fall_time_of_linear_fall() {
        let time: Vec<f64> = (0..=100).map(|k| k as f64 * 0.01).collect();
        let signal: Vec<f64> = time.iter().map(|&t| 1.0 - t).collect();
        let tf = fall_time(&time, &signal, 0.0, 1.0, 0).unwrap();
        assert!((tf - 0.8).abs() < 1e-6);
    }

    #[test]
    fn settled_level_and_extrema() {
        let (t, s) = ramp();
        let lvl = settled_level(&t, &s, 1.5, 2.0);
        assert!((lvl - 1.0).abs() < 1e-12);
        let (lo, hi) = extrema(&t, &s, 0.0, 2.0);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn settled_level_requires_samples() {
        let (t, s) = ramp();
        let _ = settled_level(&t, &s, 5.0, 6.0);
    }
}
