//! Pins the [`Simulator`] facade against recorded golden results.
//!
//! The legacy free functions (`analysis::op`, `analysis::transient`, …)
//! are gone; the facade is now the *only* entry point, so equivalence
//! testing against them is impossible. Instead these tests freeze the
//! numbers the facade produced at the moment of the migration: every
//! assertion below is a value recorded from a run of this workspace and
//! pasted in as a constant. Any future change that silently alters
//! solver results — reordering stamps, changing pivoting, reworking the
//! homotopy ladder — trips these tests.
//!
//! To regenerate after an *intentional* numerical change:
//!
//! ```text
//! cargo test -p fts-spice --test facade_equiv -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over the `GOLDEN_*` constants.

use fts_spice::analysis::{log_sweep, Integrator, SampleSink, TranConfig};
use fts_spice::{Netlist, NodeId, Simulator, SolverKind, Waveform};

/// A resistive ladder with an RC tail and a pulse drive — nonlinearity-free
/// so every solver path is exercised deterministically, with enough nodes
/// to cross the sparse threshold when `rungs` is large.
fn ladder(rungs: usize, r: f64, c: f64, vdrive: f64) -> Netlist {
    let mut nl = Netlist::new();
    let first = nl.node("n0");
    nl.vsource(
        "V1",
        first,
        Netlist::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: vdrive,
            delay: 0.0,
            rise: 1e-9,
            fall: 1e-9,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    let mut prev = first;
    for k in 0..rungs {
        let n = nl.node(&format!("n{}", k + 1));
        nl.resistor(&format!("R{k}"), prev, n, r).unwrap();
        nl.resistor(&format!("Rg{k}"), n, Netlist::GROUND, 2.0 * r)
            .unwrap();
        prev = n;
    }
    nl.capacitor("Cend", prev, Netlist::GROUND, c).unwrap();
    nl
}

/// DC variant of the ladder for operating-point and sweep goldens (the
/// pulse drive is zero at `t = 0`, which would pin nothing).
fn dc_ladder(rungs: usize, r: f64, vdc: f64) -> Netlist {
    let mut nl = ladder(rungs, r, 1e-12, 0.0);
    nl.set_vsource("V1", Waveform::Dc(vdc)).unwrap();
    nl
}

fn last_node(nl: &Netlist, rungs: usize) -> NodeId {
    nl.find_node(&format!("n{rungs}")).unwrap()
}

fn assert_close(got: f64, want: f64, what: &str) {
    let tol = 1e-9 * want.abs().max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got:.15e}, golden {want:.15e}"
    );
}

// ---------------------------------------------------------------------------
// Recorded goldens. Regenerate with `-- --ignored --nocapture` (see above).
// ---------------------------------------------------------------------------

/// `dc_ladder(4, 1.0e3, 2.0)` node voltages n1..n4.
const GOLDEN_OP: [f64; 4] = [
    1.005847952521186e0,
    5.146198823088131e-1,
    2.807017537654664e-1,
    1.871345023855545e-1,
];

/// `dc_ladder(3, 2.2e3, 0.0)` swept over `V1 = [-2.0, 0.0, 1.5, 3.0]`:
/// voltage at the last node for each sweep value.
const GOLDEN_SWEEP: [f64; 4] = [
    -3.720930214663061e-1,
    0.000000000000000e0,
    2.790697660997296e-1,
    5.581395321994592e-1,
];

/// `ladder(2, 1.0e4, 1.0e-10, 1.0)`, trapezoidal fixed step
/// `TranConfig::fixed(5e-8, 3e-6)`: (sample count, v(n2) at k = 20,
/// v(n2) at the final sample).
const GOLDEN_TRAN_TRAP: (usize, f64, f64) = (61, 2.424475138162983e-1, 3.502157002450164e-1);

/// Same circuit, backward Euler with `uic`: v(n2) at the final sample.
const GOLDEN_TRAN_BE_UIC: f64 = 3.489970786824247e-1;

/// Same circuit, `TranConfig::adaptive(5e-6)`: (sample count, v(n2) at
/// the final sample).
const GOLDEN_TRAN_ADAPTIVE: (usize, f64) = (95, 3.619863537355127e-1);

/// Same circuit, AC over `log_sweep(1e3, 1e9, 7)`: |v(n2)| at the first,
/// middle (k = 3), and last frequency.
const GOLDEN_AC: [f64; 3] = [
    3.636304263485826e-1,
    6.270823675367498e-2,
    6.366197600650131e-5,
];

#[test]
fn op_pins_recorded_golden() {
    let nl = dc_ladder(4, 1.0e3, 2.0);
    let op = Simulator::new(&nl).op().unwrap();
    for (k, want) in GOLDEN_OP.iter().enumerate() {
        let node = nl.find_node(&format!("n{}", k + 1)).unwrap();
        assert_close(op.voltage(node), *want, &format!("op v(n{})", k + 1));
    }
    // Determinism: a second run is bit-identical, not merely close.
    let again = Simulator::new(&nl).op().unwrap();
    assert_eq!(op.unknowns(), again.unknowns(), "op must be deterministic");
}

#[test]
fn op_dense_and_sparse_agree() {
    let mut nl = dc_ladder(4, 1.0e3, 2.0);
    nl.set_solver(SolverKind::Dense);
    let dense = Simulator::new(&nl).op().unwrap();
    nl.set_solver(SolverKind::Sparse);
    let sparse = Simulator::new(&nl).op().unwrap();
    for (a, b) in dense.unknowns().iter().zip(sparse.unknowns()) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "dense/sparse drift: {a} vs {b}"
        );
    }
}

#[test]
fn dc_sweep_pins_recorded_golden() {
    let nl = dc_ladder(3, 2.2e3, 0.0);
    let vals = [-2.0, 0.0, 1.5, 3.0];
    let out = last_node(&nl, 3);
    let mut sim = Simulator::new(&nl);
    let sweep = sim.dc_sweep("V1", &vals).unwrap();
    assert_eq!(sweep.len(), vals.len());
    for (k, (point, want)) in sweep.iter().zip(GOLDEN_SWEEP.iter()).enumerate() {
        assert_close(point.voltage(out), *want, &format!("sweep[{k}] v(out)"));
    }
}

#[test]
fn fixed_transient_pins_recorded_golden() {
    let nl = ladder(2, 1.0e4, 1.0e-10, 1.0);
    let out = last_node(&nl, 2);
    let cfg = TranConfig::fixed(5e-8, 3e-6);
    let tr = Simulator::new(&nl).transient(&cfg).unwrap();
    assert_eq!(tr.time.len(), GOLDEN_TRAN_TRAP.0, "sample count");
    assert_close(tr.voltage_at(out, 20), GOLDEN_TRAN_TRAP.1, "v(out) at k=20");
    assert_close(
        tr.voltage_at(out, tr.time.len() - 1),
        GOLDEN_TRAN_TRAP.2,
        "v(out) at tstop",
    );

    let again = Simulator::new(&nl).transient(&cfg).unwrap();
    assert_eq!(tr, again, "transient must be deterministic");
}

#[test]
fn backward_euler_uic_pins_recorded_golden() {
    let nl = ladder(2, 1.0e4, 1.0e-10, 1.0);
    let out = last_node(&nl, 2);
    let cfg = TranConfig::fixed(5e-8, 3e-6)
        .integrator(Integrator::BackwardEuler)
        .uic(true);
    let tr = Simulator::new(&nl).transient(&cfg).unwrap();
    assert_close(
        tr.voltage_at(out, tr.time.len() - 1),
        GOLDEN_TRAN_BE_UIC,
        "BE+uic v(out) at tstop",
    );
}

#[test]
fn adaptive_transient_pins_recorded_golden() {
    let nl = ladder(2, 1.0e4, 1.0e-10, 1.0);
    let out = last_node(&nl, 2);
    let tr = Simulator::new(&nl)
        .transient(&TranConfig::adaptive(5e-6))
        .unwrap();
    assert_eq!(
        tr.time.len(),
        GOLDEN_TRAN_ADAPTIVE.0,
        "adaptive sample count"
    );
    assert_close(
        tr.voltage_at(out, tr.time.len() - 1),
        GOLDEN_TRAN_ADAPTIVE.1,
        "adaptive v(out) at tstop",
    );
}

/// `transient` and `transient_into` with a collecting sink are the same
/// computation — the collected stream must reproduce the returned
/// waveform exactly.
#[test]
fn transient_into_matches_collected_transient() {
    struct Collect {
        time: Vec<f64>,
        rows: Vec<Vec<f64>>,
    }
    impl SampleSink for Collect {
        fn accept(&mut self, t: f64, x: &[f64]) {
            self.time.push(t);
            self.rows.push(x.to_vec());
        }
    }

    let nl = ladder(2, 1.0e4, 1.0e-10, 1.0);
    let cfg = TranConfig::fixed(5e-8, 3e-6);
    let tr = Simulator::new(&nl).transient(&cfg).unwrap();
    let mut sink = Collect {
        time: Vec::new(),
        rows: Vec::new(),
    };
    Simulator::new(&nl).transient_into(&cfg, &mut sink).unwrap();
    assert_eq!(tr.time, sink.time);
    for (k, row) in sink.rows.iter().enumerate() {
        for node in 1..nl.node_count() {
            assert_eq!(
                tr.voltage_at(nl.node_id(node), k),
                row[node - 1],
                "sample {k}, node {node}"
            );
        }
    }
}

#[test]
fn ac_pins_recorded_golden() {
    let nl = ladder(2, 1.0e4, 1.0e-10, 1.0);
    let out = last_node(&nl, 2);
    let freqs = log_sweep(1.0e3, 1.0e9, 7);
    let ac = Simulator::new(&nl).ac("V1", &freqs).unwrap();
    assert_eq!(ac.freqs.len(), 7);
    for (k, want) in [(0usize, GOLDEN_AC[0]), (3, GOLDEN_AC[1]), (6, GOLDEN_AC[2])] {
        assert_close(
            ac.voltage_at(out, k).abs(),
            want,
            &format!("|v(out)| at freq[{k}]"),
        );
    }
}

/// Prints the golden table. Run with `-- --ignored --nocapture` and paste
/// the output over the `GOLDEN_*` constants after an intentional change.
#[test]
#[ignore = "generator for the GOLDEN_* constants"]
fn regenerate_goldens() {
    let nl = dc_ladder(4, 1.0e3, 2.0);
    let op = Simulator::new(&nl).op().unwrap();
    let vs: Vec<String> = (0..4)
        .map(|k| {
            let node = nl.find_node(&format!("n{}", k + 1)).unwrap();
            format!("{:.15e}", op.voltage(node))
        })
        .collect();
    println!("const GOLDEN_OP: [f64; 4] = [{}];", vs.join(", "));

    let nl = dc_ladder(3, 2.2e3, 0.0);
    let vals = [-2.0, 0.0, 1.5, 3.0];
    let out = last_node(&nl, 3);
    let mut sim = Simulator::new(&nl);
    let sweep = sim.dc_sweep("V1", &vals).unwrap();
    let vs: Vec<String> = sweep
        .iter()
        .map(|p| format!("{:.15e}", p.voltage(out)))
        .collect();
    println!("const GOLDEN_SWEEP: [f64; 4] = [{}];", vs.join(", "));

    let nl = ladder(2, 1.0e4, 1.0e-10, 1.0);
    let out = last_node(&nl, 2);
    let tr = Simulator::new(&nl)
        .transient(&TranConfig::fixed(5e-8, 3e-6))
        .unwrap();
    println!(
        "const GOLDEN_TRAN_TRAP: (usize, f64, f64) = ({}, {:.15e}, {:.15e});",
        tr.time.len(),
        tr.voltage_at(out, 20),
        tr.voltage_at(out, tr.time.len() - 1)
    );

    let cfg = TranConfig::fixed(5e-8, 3e-6)
        .integrator(Integrator::BackwardEuler)
        .uic(true);
    let tr = Simulator::new(&nl).transient(&cfg).unwrap();
    println!(
        "const GOLDEN_TRAN_BE_UIC: f64 = {:.15e};",
        tr.voltage_at(out, tr.time.len() - 1)
    );

    let tr = Simulator::new(&nl)
        .transient(&TranConfig::adaptive(5e-6))
        .unwrap();
    println!(
        "const GOLDEN_TRAN_ADAPTIVE: (usize, f64) = ({}, {:.15e});",
        tr.time.len(),
        tr.voltage_at(out, tr.time.len() - 1)
    );

    let freqs = log_sweep(1.0e3, 1.0e9, 7);
    let ac = Simulator::new(&nl).ac("V1", &freqs).unwrap();
    println!(
        "const GOLDEN_AC: [f64; 3] = [{:.15e}, {:.15e}, {:.15e}];",
        ac.voltage_at(out, 0).abs(),
        ac.voltage_at(out, 3).abs(),
        ac.voltage_at(out, 6).abs()
    );
}
