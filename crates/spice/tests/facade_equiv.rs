//! Pins the `Simulator` facade bit-identical to the legacy free
//! functions: same netlist, same configuration, byte-for-byte equal
//! results — the contract that makes migrating callers a pure refactor.

#![allow(deprecated)]

use proptest::prelude::*;

use fts_spice::analysis::{self, AdaptiveOptions, Integrator, TranConfig, TransientOptions};
use fts_spice::{Netlist, Simulator, SolverKind, Waveform};

/// A resistive ladder with an RC tail and a pulse drive — nonlinearity-free
/// so every solver path is exercised deterministically, with enough nodes
/// to cross the sparse threshold when `rungs` is large.
fn ladder(rungs: usize, r: f64, c: f64, vdrive: f64) -> Netlist {
    let mut nl = Netlist::new();
    let first = nl.node("n0");
    nl.vsource(
        "V1",
        first,
        Netlist::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: vdrive,
            delay: 0.0,
            rise: 1e-9,
            fall: 1e-9,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    let mut prev = first;
    for k in 0..rungs {
        let n = nl.node(&format!("n{}", k + 1));
        nl.resistor(&format!("R{k}"), prev, n, r).unwrap();
        nl.resistor(&format!("Rg{k}"), n, Netlist::GROUND, 2.0 * r)
            .unwrap();
        prev = n;
    }
    nl.capacitor("Cend", prev, Netlist::GROUND, c).unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn op_is_bit_identical(
        rungs in 2usize..14,
        r in 100.0f64..1.0e5,
        v in -5.0f64..5.0,
        sparse in any::<bool>(),
    ) {
        let mut nl = ladder(rungs, r, 1e-12, v);
        nl.set_solver(if sparse { SolverKind::Sparse } else { SolverKind::Dense });
        let legacy = analysis::op(&nl).unwrap();
        let facade = Simulator::new(&nl).op().unwrap();
        prop_assert_eq!(legacy.unknowns(), facade.unknowns());
        prop_assert_eq!(legacy.convergence(), facade.convergence());
    }

    #[test]
    fn dc_sweep_is_bit_identical(
        rungs in 2usize..8,
        r in 100.0f64..1.0e5,
        vals in prop::collection::vec(-3.0f64..3.0, 2..6),
    ) {
        let mut nl = ladder(rungs, r, 1e-12, 0.0);
        let facade = Simulator::new(&nl).dc_sweep("V1", &vals).unwrap();
        let legacy = analysis::dc_sweep(&mut nl, "V1", &vals).unwrap();
        prop_assert_eq!(legacy.len(), facade.len());
        for (a, b) in legacy.iter().zip(&facade) {
            prop_assert_eq!(a.unknowns(), b.unknowns());
        }
    }

    #[test]
    fn fixed_transient_is_bit_identical(
        rungs in 1usize..6,
        r in 1.0e3f64..1.0e5,
        c in 1.0e-12f64..1.0e-9,
        trapezoidal in any::<bool>(),
        uic in any::<bool>(),
    ) {
        let nl = ladder(rungs, r, c, 1.0);
        let tau = r * c;
        let integ = if trapezoidal { Integrator::Trapezoidal } else { Integrator::BackwardEuler };
        let legacy = analysis::transient(
            &nl,
            &TransientOptions { dt: tau / 20.0, tstop: 3.0 * tau, integrator: integ, uic },
        )
        .unwrap();
        let facade = Simulator::new(&nl)
            .transient(&TranConfig::fixed(tau / 20.0, 3.0 * tau).integrator(integ).uic(uic))
            .unwrap();
        prop_assert_eq!(&legacy, &facade);
    }

    #[test]
    fn adaptive_transient_is_bit_identical(
        rungs in 1usize..5,
        r in 1.0e3f64..1.0e5,
        c in 1.0e-12f64..1.0e-9,
    ) {
        let nl = ladder(rungs, r, c, 1.0);
        let tstop = 5.0 * r * c;
        let legacy = analysis::transient_adaptive(&nl, &AdaptiveOptions::new(tstop)).unwrap();
        let facade = Simulator::new(&nl).transient(&TranConfig::adaptive(tstop)).unwrap();
        prop_assert_eq!(&legacy, &facade);
    }

    #[test]
    fn ac_is_bit_identical(
        rungs in 1usize..6,
        r in 1.0e3f64..1.0e5,
        c in 1.0e-12f64..1.0e-9,
    ) {
        let nl = ladder(rungs, r, c, 1.0);
        let freqs = analysis::log_sweep(1.0e3, 1.0e9, 13);
        let legacy = analysis::ac(&nl, "V1", &freqs).unwrap();
        let facade = Simulator::new(&nl).ac("V1", &freqs).unwrap();
        prop_assert_eq!(&legacy, &facade);
    }
}

/// The conversions from the deprecated option structs reproduce the exact
/// configuration the free functions ran with.
#[test]
fn legacy_option_conversions_round_trip() {
    let t = TransientOptions::new(1e-9, 1e-6);
    let cfg = TranConfig::from(t);
    assert_eq!(cfg, TranConfig::fixed(1e-9, 1e-6));

    let a = AdaptiveOptions::new(1e-6);
    let cfg = TranConfig::from(a);
    assert_eq!(cfg, TranConfig::adaptive(1e-6));
}
