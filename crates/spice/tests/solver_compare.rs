//! Sparse-vs-dense solver agreement: the dense LU is the reference oracle;
//! every analysis run through the sparse engine must reproduce it to
//! solver-roundoff accuracy (≤ 1e-9 max absolute voltage error).

use fts_spice::analysis::TranConfig;
use fts_spice::netlist::{MosParams, Netlist, SolverKind, Waveform};
use fts_spice::Simulator;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

/// Max absolute node-voltage difference between dense and sparse operating
/// points; `None` when both failed identically.
fn compare_op(netlist: &Netlist) -> Option<f64> {
    let dense = Simulator::new(netlist).solver(SolverKind::Dense).op();
    let sparse = Simulator::new(netlist).solver(SolverKind::Sparse).op();
    match (dense, sparse) {
        (Ok(d), Ok(s)) => Some(
            d.unknowns()
                .iter()
                .zip(s.unknowns())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        ),
        (Err(_), Err(_)) => None,
        (d, s) => panic!("solver disagreement: dense {d:?} vs sparse {s:?}"),
    }
}

fn switch_params() -> MosParams {
    MosParams {
        kp: 2.0e-5,
        vth: 0.3,
        lambda: 0.05,
        w_over_l: 2.0,
    }
}

/// A pass-transistor ladder with pull-ups and load caps — the same device
/// mix as the paper's four-terminal switching lattices.
fn pass_ladder(stages: usize) -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let gate = nl.node("gate");
    nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2))
        .unwrap();
    nl.vsource(
        "VG",
        gate,
        Netlist::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: 1.2,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 5e-9,
            period: 0.0,
        },
    )
    .unwrap();
    let mut prev = vdd;
    for k in 0..stages {
        let mid = nl.node(&format!("m{k}"));
        nl.nmos(&format!("M{k}"), prev, gate, mid, switch_params())
            .unwrap();
        nl.resistor(&format!("R{k}"), mid, Netlist::GROUND, 500.0e3)
            .unwrap();
        nl.capacitor(&format!("C{k}"), mid, Netlist::GROUND, 10.0e-15)
            .unwrap();
        prev = mid;
    }
    nl
}

#[test]
fn pass_ladder_op_agrees() {
    for stages in [2, 5, 9, 14] {
        let nl = pass_ladder(stages);
        let err = compare_op(&nl).expect("ladder op converges");
        assert!(err <= TOL, "{stages} stages: max |Δv| = {err:.3e}");
    }
}

#[test]
fn pass_ladder_transient_agrees() {
    let nl = pass_ladder(8);
    let cfg = TranConfig::fixed(0.1e-9, 8e-9);
    let dense = Simulator::new(&nl)
        .solver(SolverKind::Dense)
        .transient(&cfg)
        .unwrap();
    let sparse = Simulator::new(&nl)
        .solver(SolverKind::Sparse)
        .transient(&cfg)
        .unwrap();
    assert_eq!(dense.len(), sparse.len());
    let mut max_err = 0.0f64;
    for k in 0..dense.len() {
        for node in 0..8 {
            let id = nl.find_node(&format!("m{node}")).unwrap();
            max_err = max_err.max((dense.voltage_at(id, k) - sparse.voltage_at(id, k)).abs());
        }
    }
    assert!(max_err <= TOL, "max |Δv| over transient = {max_err:.3e}");
}

#[test]
fn auto_kind_picks_sparse_above_threshold_and_agrees() {
    // A 14-stage ladder has well over 24 unknowns, so Auto runs sparse;
    // its result must still match the forced-dense oracle.
    let nl = pass_ladder(14);
    let auto = Simulator::new(&nl).op().unwrap();
    let dense = Simulator::new(&nl).solver(SolverKind::Dense).op().unwrap();
    let err = auto
        .unknowns()
        .iter()
        .zip(dense.unknowns())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err <= TOL, "max |Δv| = {err:.3e}");
}

#[test]
fn sparse_zero_pivot_branch_row_needs_permutation() {
    // Every voltage source contributes a structurally zero diagonal on its
    // branch row — the sparse LU must pivot off the diagonal.
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(2.0))
        .unwrap();
    nl.vsource("V2", b, a, Waveform::Dc(0.5)).unwrap();
    nl.resistor("R1", b, Netlist::GROUND, 1.0e3).unwrap();
    nl.set_solver(SolverKind::Sparse);
    let r = Simulator::new(&nl).op().unwrap();
    assert!((r.voltage(a) - 2.0).abs() < 1e-12);
    assert!((r.voltage(b) - 2.5).abs() < 1e-12);
}

#[test]
fn singular_netlist_fails_on_both_engines() {
    // Two ideal voltage sources fighting over one node: duplicate branch
    // rows, structurally singular and inconsistent.
    let mut nl = Netlist::new();
    let a = nl.node("a");
    nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
        .unwrap();
    nl.vsource("V2", a, Netlist::GROUND, Waveform::Dc(2.0))
        .unwrap();
    nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
    assert!(Simulator::new(&nl).solver(SolverKind::Dense).op().is_err());
    assert!(Simulator::new(&nl).solver(SolverKind::Sparse).op().is_err());
}

#[test]
fn shared_symbolic_reproduces_fresh_analysis() {
    let nl = pass_ladder(10);
    let fresh = Simulator::new(&nl).solver(SolverKind::Sparse).op().unwrap();
    let reused = Simulator::new(&nl)
        .solver(SolverKind::Sparse)
        .share_symbolic(nl.mna_symbolic())
        .op()
        .unwrap();
    for (a, b) in fresh.unknowns().iter().zip(reused.unknowns()) {
        assert!((a - b).abs() <= 1e-15, "shared symbolic changes nothing");
    }
}

/// Description of one randomly generated device.
#[derive(Debug, Clone)]
enum Dev {
    Resistor { a: usize, b: usize, ohms: f64 },
    Capacitor { a: usize, farads: f64 },
    Nmos { d: usize, g: usize, s: usize },
}

fn build_random(nodes: usize, vin: f64, devs: &[Dev]) -> Netlist {
    let mut nl = Netlist::new();
    let ids: Vec<_> = (0..nodes).map(|k| nl.node(&format!("n{k}"))).collect();
    let node = |i: usize| {
        if i == 0 {
            Netlist::GROUND
        } else {
            ids[i % nodes]
        }
    };
    nl.vsource("VIN", ids[0], Netlist::GROUND, Waveform::Dc(vin))
        .unwrap();
    // A resistor chain guarantees every node a DC path to the source.
    for k in 1..nodes {
        nl.resistor(&format!("RCH{k}"), ids[k - 1], ids[k], 10.0e3)
            .unwrap();
    }
    for (i, dev) in devs.iter().enumerate() {
        match *dev {
            Dev::Resistor { a, b, ohms } => {
                nl.resistor(&format!("R{i}"), node(a), node(b), ohms)
                    .unwrap();
            }
            Dev::Capacitor { a, farads } => {
                nl.capacitor(&format!("C{i}"), node(a), Netlist::GROUND, farads)
                    .unwrap();
            }
            Dev::Nmos { d, g, s } => {
                nl.nmos(&format!("M{i}"), node(d), node(g), node(s), switch_params())
                    .unwrap();
            }
        }
    }
    nl
}

fn arb_dev(nodes: usize) -> impl Strategy<Value = Dev> {
    prop_oneof![
        (0..nodes, 0..nodes, 1.0e2..1.0e6f64).prop_map(|(a, b, ohms)| Dev::Resistor { a, b, ohms }),
        (1..nodes, 1.0e-15..1.0e-12f64).prop_map(|(a, farads)| Dev::Capacitor { a, farads }),
        (0..nodes, 0..nodes, 0..nodes).prop_map(|(d, g, s)| Dev::Nmos { d, g, s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random RLC+MOSFET netlists: the sparse operating point matches the
    /// dense oracle within 1e-9 on every unknown.
    #[test]
    fn random_netlist_op_agrees(
        nodes in 3usize..9,
        vin in 0.0..2.0f64,
        devs in prop::collection::vec(arb_dev(8), 1..12),
    ) {
        let nl = build_random(nodes, vin, &devs);
        if let Some(err) = compare_op(&nl) {
            prop_assert!(err <= TOL, "max |Δv| = {err:.3e}");
        }
    }

    /// Random netlists under transient: every sample of every unknown from
    /// the sparse engine matches the dense oracle within 1e-9.
    #[test]
    fn random_netlist_transient_agrees(
        nodes in 3usize..7,
        devs in prop::collection::vec(arb_dev(6), 1..8),
    ) {
        let nl = build_random(nodes, 1.2, &devs);
        let cfg = TranConfig::fixed(0.5e-9, 10e-9);
        let dense = Simulator::new(&nl).solver(SolverKind::Dense).transient(&cfg);
        let sparse = Simulator::new(&nl).solver(SolverKind::Sparse).transient(&cfg);
        match (dense, sparse) {
            (Ok(d), Ok(s)) => {
                prop_assert_eq!(d.len(), s.len());
                for k in 0..d.len() {
                    for i in 0..nodes {
                        let id = nl.find_node(&format!("n{i}")).unwrap();
                        let err = (d.voltage_at(id, k) - s.voltage_at(id, k)).abs();
                        prop_assert!(err <= TOL, "t[{}] node n{}: |Δv| = {:.3e}", k, i, err);
                    }
                }
            }
            (Err(_), Err(_)) => {}
            (d, s) => prop_assert!(false, "solver disagreement: dense ok={} sparse ok={}", d.is_ok(), s.is_ok()),
        }
    }
}
