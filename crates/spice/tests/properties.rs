//! Property tests for the circuit simulator: linear-circuit theorems
//! (superposition, reciprocity) and conservation in transients must hold
//! for arbitrary networks.

use proptest::prelude::*;

use fts_spice::analysis::{Integrator, TranConfig};
use fts_spice::{Netlist, Simulator, Waveform};

/// A random resistive ladder with two sources; returns (netlist, probes).
fn ladder(resistors: &[f64], v1: f64, v2: f64) -> (Netlist, Vec<fts_spice::NodeId>) {
    let mut nl = Netlist::new();
    let mut nodes = Vec::new();
    let first = nl.node("n0");
    nodes.push(first);
    nl.vsource("V1", first, Netlist::GROUND, Waveform::Dc(v1))
        .unwrap();
    let mut prev = first;
    for (k, &r) in resistors.iter().enumerate() {
        let n = nl.node(&format!("n{}", k + 1));
        nl.resistor(&format!("R{k}"), prev, n, r).unwrap();
        nl.resistor(&format!("Rg{k}"), n, Netlist::GROUND, r * 2.0)
            .unwrap();
        nodes.push(n);
        prev = n;
    }
    let last = nl.node("drive2");
    nl.resistor("Rend", prev, last, resistors[0]).unwrap();
    nl.vsource("V2", last, Netlist::GROUND, Waveform::Dc(v2))
        .unwrap();
    (nl, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn superposition_on_resistive_ladders(
        rs in prop::collection::vec(10.0f64..1.0e5, 2..6),
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
    ) {
        let (nl_both, probes) = ladder(&rs, v1, v2);
        let (nl_a, _) = ladder(&rs, v1, 0.0);
        let (nl_b, _) = ladder(&rs, 0.0, v2);
        let both = Simulator::new(&nl_both).op().unwrap();
        let a = Simulator::new(&nl_a).op().unwrap();
        let b = Simulator::new(&nl_b).op().unwrap();
        for &n in &probes {
            let sum = a.voltage(n) + b.voltage(n);
            prop_assert!(
                (both.voltage(n) - sum).abs() < 1e-6 * (1.0 + sum.abs()),
                "superposition at {:?}: {} vs {}",
                n,
                both.voltage(n),
                sum
            );
        }
    }

    #[test]
    fn resistor_network_is_reciprocal(
        r_mid in 10.0f64..1.0e5,
        r_a in 10.0f64..1.0e5,
        r_b in 10.0f64..1.0e5,
    ) {
        // Two-port reciprocity: I_b from unit source at a equals I_a from
        // unit source at b (shorted outputs via small resistors).
        let build = |drive_a: bool| -> f64 {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            let mid = nl.node("m");
            nl.resistor("Ra", a, mid, r_a).unwrap();
            nl.resistor("Rm", mid, Netlist::GROUND, r_mid).unwrap();
            nl.resistor("Rb", mid, b, r_b).unwrap();
            if drive_a {
                nl.vsource("VS", a, Netlist::GROUND, Waveform::Dc(1.0)).unwrap();
                nl.vsource("VM", b, Netlist::GROUND, Waveform::Dc(0.0)).unwrap();
            } else {
                nl.vsource("VS", b, Netlist::GROUND, Waveform::Dc(1.0)).unwrap();
                nl.vsource("VM", a, Netlist::GROUND, Waveform::Dc(0.0)).unwrap();
            }
            let op = Simulator::new(&nl).op().unwrap();
            op.vsource_current(&nl, "VM").unwrap()
        };
        let iab = build(true);
        let iba = build(false);
        prop_assert!((iab - iba).abs() < 1e-9 * (1.0 + iab.abs()), "{iab} vs {iba}");
    }

    #[test]
    fn rc_transient_charge_conservation(
        r in 100.0f64..1.0e5,
        c in 1.0e-12f64..1.0e-8,
        vstep in 0.1f64..5.0,
    ) {
        // The charge delivered through the resistor equals C·ΔV.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(vstep)).unwrap();
        nl.resistor("R1", vin, out, r).unwrap();
        nl.capacitor("C1", out, Netlist::GROUND, c).unwrap();
        let tau = r * c;
        let tr = Simulator::new(&nl)
            .transient(
                &TranConfig::fixed(tau / 100.0, 8.0 * tau)
                    .integrator(Integrator::Trapezoidal)
                    .uic(true),
            )
            .unwrap();
        let i = tr.vsource_current(&nl, "V1").unwrap();
        let mut charge = 0.0;
        for k in 1..tr.time.len() {
            charge += 0.5 * (i[k] + i[k - 1]) * (tr.time[k] - tr.time[k - 1]);
        }
        // Source convention: delivering current reads negative.
        let delivered = -charge;
        let expected = c * vstep * (1.0 - (-8.0f64).exp());
        prop_assert!(
            (delivered - expected).abs() < 0.03 * expected,
            "charge {delivered:.4e} vs C·ΔV {expected:.4e}"
        );
    }

    #[test]
    fn dc_sweep_matches_pointwise_ops(
        r1 in 100.0f64..1.0e5,
        r2 in 100.0f64..1.0e5,
        vals in prop::collection::vec(-3.0f64..3.0, 2..6),
    ) {
        let build = || -> Netlist {
            let mut nl = Netlist::new();
            let vin = nl.node("in");
            let out = nl.node("out");
            nl.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(0.0)).unwrap();
            nl.resistor("R1", vin, out, r1).unwrap();
            nl.resistor("R2", out, Netlist::GROUND, r2).unwrap();
            nl
        };
        let nl = build();
        let out = nl.find_node("out").unwrap();
        let sweep = Simulator::new(&nl).dc_sweep("V1", &vals).unwrap();
        for (v, op) in vals.iter().zip(&sweep) {
            let expect = v * r2 / (r1 + r2);
            prop_assert!((op.voltage(out) - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }
}
