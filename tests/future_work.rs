//! Integration tests for the §VI-A extensions, spanning synthesis,
//! device, extraction, and both circuit styles.

use four_terminal_lattice::circuit::complementary::ComplementaryCircuit;
use four_terminal_lattice::circuit::experiments::xor3_lattice;
use four_terminal_lattice::circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use four_terminal_lattice::circuit::metrics::{measure_lattice_circuit, vtc};
use four_terminal_lattice::circuit::model::SwitchCircuitModel;
use four_terminal_lattice::logic::generators;
use four_terminal_lattice::spice::analysis::log_sweep;
use four_terminal_lattice::spice::mos3::Mos3Params;
use four_terminal_lattice::spice::{Netlist, Simulator, Waveform};

#[test]
fn complementary_xor3_beats_resistive_bench_on_static_power() {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let f = generators::xor(3);
    let pd = xor3_lattice();

    let resistive = LatticeCircuit::build(&pd, 3, &model, BenchConfig::default()).expect("build");
    let rm = measure_lattice_circuit(&resistive, 3, 50e-9, 1e-9).expect("measure");

    let pu = four_terminal_lattice::synth::synthesize(&!&f)
        .expect("synthesis")
        .lattice;
    let comp =
        ComplementaryCircuit::build(&pd, &pu, 3, &model, BenchConfig::default()).expect("build");
    let mut comp_static = 0.0f64;
    for x in 0..8u32 {
        comp_static = comp_static.max(comp.static_supply_current(x).expect("op") * 1.2);
    }
    assert!(
        comp_static < rm.static_power_worst / 1000.0,
        "complementary {comp_static:.3e} W vs resistive {:.3e} W",
        rm.static_power_worst
    );
    // And it computes the same logic.
    let tt = comp.dc_truth_table().expect("dc");
    for x in 0..8u32 {
        assert_eq!(tt[x as usize], !f.eval(x));
    }
}

#[test]
fn xor3_bench_has_positive_noise_margins() {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let lat = xor3_lattice();
    let ckt = LatticeCircuit::build(&lat, 3, &model, BenchConfig::default()).expect("build");
    // Sweep input a with b=1, c=0: XOR3 then equals NOT a, so the output
    // (inverse) equals a — a rising VTC.
    let curve = vtc(&ckt, 3, 0, 0b010, 31).expect("vtc");
    assert!(curve.vout.first().unwrap() < &0.45);
    assert!(curve.vout.last().unwrap() > &1.0);
    let (nml, nmh) = curve.noise_margins().expect("switching curve");
    assert!(nml > 0.05 && nmh > 0.05, "NM_L {nml:.3} NM_H {nmh:.3}");
}

#[test]
fn ac_analysis_of_the_xor3_output_pole() {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let lat = xor3_lattice();
    let ckt = LatticeCircuit::build(&lat, 3, &model, BenchConfig::default()).expect("build");
    // All inputs low: lattice off, output follows the pull-up; the pole is
    // roughly 1/(2π·R_pu·C_out) with C_out ≈ 13 fF → ~25 MHz.
    let freqs = log_sweep(1e4, 1e11, 71);
    let res = Simulator::new(ckt.netlist())
        .ac("VIN0", &freqs)
        .expect("ac");
    // The response magnitude must be finite and roll off at high f.
    let mags = res.magnitude(ckt.out());
    assert!(mags.iter().all(|m| m.is_finite()));
    assert!(mags.last().unwrap() <= &(mags.first().unwrap() + 1e-9));
}

#[test]
fn level3_switch_degrades_gracefully_vs_level1() {
    // A pass switch built from the level-3 model with short-channel
    // effects conducts less than its long-channel limit but still works.
    let run = |params: Mos3Params| -> f64 {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let g = nl.node("g");
        nl.vsource("VA", a, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        nl.vsource("VG", g, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        nl.resistor("RB", b, Netlist::GROUND, 1.0e6).unwrap();
        nl.nmos3("M1", a, g, b, params).unwrap();
        Simulator::new(&nl).op().unwrap().voltage(b)
    };
    let long = run(Mos3Params::long_channel(1.1e-5, 0.05, 0.2, 2.0));
    let short = run(Mos3Params {
        kp: 1.1e-5,
        vth: 0.05,
        lambda: 0.2,
        w_over_l: 2.0,
        theta: 1.0,
        esat_l: 1.0,
        cgs: 1e-15,
        cgd: 1e-15,
    });
    // An n-type pass switch tops out a threshold-plus-overdrive below the
    // gate rail (the classic source-follower limit).
    assert!(long > 0.8, "long-channel switch passes: {long}");
    assert!(short > 0.6, "short-channel switch still works: {short}");
    assert!(short <= long + 1e-9, "short-channel effects cannot help");
}

#[test]
fn provable_minimum_matches_annealed_result_for_xor2() {
    use four_terminal_lattice::synth::search::{anneal_minimal, prove_minimal_area, AnnealOptions};
    let f = generators::xor(2);
    let (proved, certified) = prove_minimal_area(&f, 6).expect("realizable");
    assert!(certified);
    let annealed = anneal_minimal(&f, 9, &AnnealOptions::default()).expect("found");
    assert_eq!(
        proved.site_count(),
        annealed.site_count(),
        "both find the true minimum"
    );
}
