//! Integration-level checks of every paper artifact the workspace
//! reproduces: one test per table/figure, asserting the *shape* claims the
//! paper makes (orderings, magnitudes, functional behaviour).

use four_terminal_lattice::circuit::experiments::{
    series_chain_current, series_chain_voltage_for_current, xor3_lattice, Xor3Experiment,
};
use four_terminal_lattice::circuit::model::SwitchCircuitModel;
use four_terminal_lattice::device::calibration::paper_targets;
use four_terminal_lattice::device::characterize::{characterize, id_vd, id_vg};
use four_terminal_lattice::device::{BiasCase, Device, DeviceKind, Dielectric};
use four_terminal_lattice::field::{channel_region, device_plan, SolveOptions};
use four_terminal_lattice::lattice::count::{product_count, PAPER_TABLE1};
use four_terminal_lattice::lattice::Lattice;
use four_terminal_lattice::logic::generators;
use four_terminal_lattice::synth::column::column_construction;

#[test]
fn table1_product_counts_match_paper_exactly() {
    // Full verification of the expensive entries lives in the bench
    // harness; here we check a representative diagonal plus the corners.
    for (m, n) in [
        (2, 2),
        (3, 3),
        (4, 4),
        (5, 5),
        (6, 6),
        (2, 9),
        (9, 2),
        (4, 7),
        (7, 4),
    ] {
        assert_eq!(
            product_count(m, n),
            PAPER_TABLE1[m - 2][n - 2],
            "entry ({m},{n})"
        );
    }
}

#[test]
fn fig2c_lattice_function_products() {
    // f_{3×3} has the nine products listed in Fig. 2c.
    let lat = Lattice::canonical(3, 3).expect("9 sites fit in a cube");
    let cover = lat.products().expect("product extraction");
    assert_eq!(cover.len(), 9);
    let strings: Vec<String> = cover.iter().map(|c| c.to_string()).collect();
    // Spot-check the three straight columns (variables a..i row-major).
    for p in ["adg", "beh", "cfi"] {
        assert!(
            strings.contains(&p.to_owned()),
            "missing {p} in {strings:?}"
        );
    }
}

#[test]
fn fig3_xor3_realizations() {
    let f = generators::xor(3);
    // (a) 3×4 column construction.
    let col = column_construction(&f)
        .expect("in range")
        .expect("XOR3 columnizes");
    assert_eq!((col.rows(), col.cols()), (3, 4));
    assert_eq!(col.truth_table(3).expect("tt"), f);
    // (b) 3×3 minimal lattice.
    let min = xor3_lattice();
    assert_eq!(min.truth_table(3).expect("tt"), f);
    assert_eq!(min.site_count(), 9);
}

#[test]
fn figs5to7_device_characterization_shape() {
    // Vth within 0.3 V of the paper, on/off within ~1.2 decades, and the
    // paper's orderings preserved.
    for kind in DeviceKind::all() {
        for dielectric in Dielectric::all() {
            let r = characterize(&Device::new(kind, dielectric));
            let t = paper_targets(kind, dielectric);
            let vth_tol = 0.06 * t.vth_v.abs().max(5.0); // 0.3 V at 5 V scale
            assert!(
                (r.vth - t.vth_v).abs() < vth_tol.max(0.3),
                "{kind}/{dielectric}: Vth {} vs paper {}",
                r.vth,
                t.vth_v
            );
            let decades = (r.on_off_ratio.log10() - t.on_off_ratio.log10()).abs();
            assert!(
                decades < 1.3,
                "{kind}/{dielectric}: on/off {:.2e} vs paper {:.0e}",
                r.on_off_ratio,
                t.on_off_ratio
            );
        }
    }
    // Orderings: HfO2 lowers |Vth|; cross > square thresholds; the
    // junctionless ratios are the highest.
    let sq_h = characterize(&Device::new(DeviceKind::Square, Dielectric::HfO2));
    let sq_s = characterize(&Device::new(DeviceKind::Square, Dielectric::SiO2));
    let cr_h = characterize(&Device::new(DeviceKind::Cross, Dielectric::HfO2));
    let jl_h = characterize(&Device::new(DeviceKind::Junctionless, Dielectric::HfO2));
    assert!(sq_h.vth < sq_s.vth);
    assert!(cr_h.vth > sq_h.vth);
    assert!(jl_h.vth < 0.0);
    assert!(jl_h.on_off_ratio > sq_h.on_off_ratio);
}

#[test]
fn figs5to7_curve_families_behave() {
    // Id–Vg at 10 mV and 5 V, Id–Vd at 5 V — per-terminal, DSSS.
    let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
    let lin = id_vg(&dev, BiasCase::DSSS, 0.01, 0.0, 5.0, 41);
    let sat = id_vg(&dev, BiasCase::DSSS, 5.0, 0.0, 5.0, 41);
    let out = id_vd(&dev, BiasCase::DSSS, 5.0, 0.0, 5.0, 41);
    // Saturation transfer curve carries far more current than the linear
    // one (paper: 1e-3 vs 1e-5 scales).
    let lin_max = lin.terminal(0).last().copied().unwrap();
    let sat_max = sat.terminal(0).last().copied().unwrap();
    assert!(
        sat_max > 20.0 * lin_max,
        "sat {sat_max:.2e} vs lin {lin_max:.2e}"
    );
    // Output curve saturates at the same level as the transfer end point.
    let out_max = out.terminal(0).last().copied().unwrap();
    assert!((out_max - sat_max).abs() < 0.2 * sat_max);
    // Source terminals mirror the drain: T2+T3+T4 ≈ −T1.
    let sum: f64 = (1..4).map(|t| sat.terminal(t).last().unwrap()).sum();
    assert!((sum + sat_max).abs() < 1e-6 * sat_max.max(1e-12));
}

#[test]
fn fig8_current_density_profiles() {
    let opts = SolveOptions::default();
    // Gate modulation on every structure.
    for kind in DeviceKind::all() {
        let on = device_plan(kind, true);
        let off = device_plan(kind, false);
        let i_on = on.solve(&opts).electrode_current(&on, 0);
        let i_off = off.solve(&opts).electrode_current(&off, 0);
        assert!(i_on > 5.0 * i_off, "{kind}");
    }
    // The cross spreads current across terminals at least as uniformly as
    // the square (the paper's qualitative Fig. 8 takeaway).
    let sq = device_plan(DeviceKind::Square, true);
    let cr = device_plan(DeviceKind::Cross, true);
    let s_sq = sq.solve(&opts);
    let s_cr = cr.solve(&opts);
    let spread = |p: &four_terminal_lattice::field::FieldProblem,
                  s: &four_terminal_lattice::field::FieldSolution| {
        let i: Vec<f64> = (1..4).map(|e| -s.electrode_current(p, e)).collect();
        let mean = i.iter().sum::<f64>() / 3.0;
        (i.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0).sqrt() / mean
    };
    assert!(spread(&cr, &s_cr) <= spread(&sq, &s_sq) + 1e-9);
    // And the in-channel field is meaningful (nonzero uniformity metric).
    assert!(s_sq.uniformity_cv(channel_region()) > 0.0);
}

#[test]
fn fig10_level1_fit_quality() {
    let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
    let model = four_terminal_lattice::extract::extract_switch_model(&dev).expect("fit");
    assert!(
        model.fit_a.relative_rmse < 0.16,
        "A: {}",
        model.fit_a.relative_rmse
    );
    assert!(
        model.fit_b.relative_rmse < 0.16,
        "B: {}",
        model.fit_b.relative_rmse
    );
    assert!(model.type_a.vth > 0.0 && model.type_a.vth < 1.0);
}

#[test]
fn fig11_xor3_transient() {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let report = Xor3Experiment::quick().run(&model).expect("transient");
    assert!(report.functional);
    // Ratioed low level in the paper's range (0.22 V ± a wide margin).
    assert!(
        report.v_ol > 0.02 && report.v_ol < 0.45,
        "V_OL {}",
        report.v_ol
    );
    // Timing: nanosecond-scale edges, rise slower than fall.
    let rise = report.rise_s.expect("rise");
    let fall = report.fall_s.expect("fall");
    assert!(rise > fall, "rise {rise:.2e} vs fall {fall:.2e}");
    assert!(rise < 60e-9 && fall < 30e-9);
}

#[test]
fn fig12a_series_chain_current_shape() {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let ns = [1usize, 3, 5, 9, 15, 21];
    let currents: Vec<f64> = ns
        .iter()
        .map(|&n| series_chain_current(&model, n, 1.2).expect("op"))
        .collect();
    // Strictly decreasing, µA scale at n = 1, strong early decay then
    // flattening: I(1)/I(5) much larger than I(5)/I(9).
    for w in currents.windows(2) {
        assert!(w[1] < w[0]);
    }
    assert!(
        currents[0] > 1e-6 && currents[0] < 1e-4,
        "I(1) = {:.2e}",
        currents[0]
    );
    let early = currents[0] / currents[2];
    let late = currents[2] / currents[3];
    assert!(
        early > 2.0 * late,
        "decay concentrates early: {early:.2} vs {late:.2}"
    );
}

#[test]
fn fig12b_series_chain_voltage_shape() {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let target = series_chain_current(&model, 2, 1.2).expect("op");
    let ns = [2usize, 6, 11, 16, 21];
    let volts: Vec<f64> = ns
        .iter()
        .map(|&n| series_chain_voltage_for_current(&model, n, target, 10.0).expect("bisect"))
        .collect();
    // Monotone increase, far below linear-in-n extrapolation.
    for w in volts.windows(2) {
        assert!(w[1] > w[0]);
    }
    let naive_linear = volts[0] * ns[4] as f64 / ns[0] as f64;
    assert!(
        volts[4] < 0.5 * naive_linear,
        "required voltage grows sub-linearly: {} vs naive {naive_linear}",
        volts[4]
    );
}
