//! Property-based tests spanning crates: random functions and lattices
//! must satisfy the structural invariants the reproduction relies on.

use proptest::prelude::*;

use four_terminal_lattice::lattice::{bruteforce, count, Lattice};
use four_terminal_lattice::logic::{isop, Cover, Cube, Literal, TruthTable};
use four_terminal_lattice::synth::dual;

fn arb_truth_table(vars: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<bool>(), 1 << vars).prop_map(move |bits| {
        TruthTable::from_fn(vars, |x| bits[x as usize]).expect("vars in range")
    })
}

fn arb_literal(vars: u8) -> impl Strategy<Value = Literal> {
    (0..(2 * vars + 2)).prop_map(move |k| {
        if k < vars {
            Literal::pos(k)
        } else if k < 2 * vars {
            Literal::neg(k - vars)
        } else if k == 2 * vars {
            Literal::True
        } else {
            Literal::False
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn isop_is_exact_and_irredundant(f in arb_truth_table(4)) {
        let cover = isop::isop(&f);
        prop_assert_eq!(cover.to_truth_table(4), f.clone());
        prop_assert!(cover.is_irredundant(4));
    }

    #[test]
    fn dual_involution_and_de_morgan(f in arb_truth_table(4)) {
        prop_assert_eq!(f.dual().dual(), f.clone());
        // f^D = NOT f(NOT x): check pointwise.
        let d = f.dual();
        for x in 0..16u32 {
            prop_assert_eq!(d.eval(x), !f.eval(15 ^ x));
        }
    }

    #[test]
    fn altun_riedel_synthesis_is_exact(f in arb_truth_table(3)) {
        let lat = dual::altun_riedel(&f).expect("construction succeeds");
        prop_assert_eq!(lat.truth_table(3).expect("tt"), f);
    }

    #[test]
    fn lattice_percolation_equals_path_semantics(
        lits in prop::collection::vec(arb_literal(3), 6)
    ) {
        let lat = Lattice::from_literals(2, 3, lits).expect("6 literals");
        let tt = lat.truth_table(3).expect("tt");
        let cover = lat.products().expect("products");
        prop_assert_eq!(cover.to_truth_table(3), tt);
    }

    #[test]
    fn lattice_function_is_monotone_in_switch_upgrades(
        lits in prop::collection::vec(arb_literal(2), 4),
        site in 0usize..4
    ) {
        // Forcing any one switch permanently ON can only add connectivity.
        let lat = Lattice::from_literals(2, 2, lits).expect("4 literals");
        let mut upgraded = lat.clone();
        upgraded.set_literal((site / 2, site % 2), Literal::True).expect("in range");
        let before = lat.truth_table(2).expect("tt");
        let after = upgraded.truth_table(2).expect("tt");
        prop_assert!(before.implies(&after));
    }

    #[test]
    fn absorbed_covers_preserve_function(
        masks in prop::collection::vec((0u32..16, 0u32..16), 1..8)
    ) {
        let cubes: Vec<Cube> = masks
            .into_iter()
            .filter_map(|(p, n)| Cube::from_masks(p, n & !p).ok())
            .collect();
        prop_assume!(!cubes.is_empty());
        let mut cover = Cover::from_cubes(cubes);
        let before = cover.to_truth_table(4);
        cover.absorb();
        prop_assert_eq!(cover.to_truth_table(4), before);
    }

    #[test]
    fn pruned_path_count_matches_bruteforce(m in 1usize..5, n in 1usize..5) {
        prop_assert_eq!(
            count::product_count(m, n),
            bruteforce::product_count(m, n)
        );
    }

    #[test]
    fn product_count_is_monotone_in_columns(m in 1usize..6, n in 1usize..5) {
        // Every irredundant path of an m×n lattice remains one after a
        // column is appended, so Table I rows increase left to right.
        prop_assert!(count::product_count(m, n + 1) >= count::product_count(m, n));
    }
}

#[test]
fn spice_mosfet_matches_level1_reference() {
    // The simulator's device must agree with the extraction crate's
    // closed-form level-1 model across bias space.
    use four_terminal_lattice::extract::Level1;
    use four_terminal_lattice::spice::{MosParams, Netlist, Simulator, Waveform};

    let reference = Level1::new(2.0e-5, 0.4, 0.06, 2.0);
    let params = MosParams {
        kp: 2.0e-5,
        vth: 0.4,
        lambda: 0.06,
        w_over_l: 2.0,
    };
    for (vgs, vds) in [(0.2, 1.0), (1.0, 0.2), (1.0, 2.0), (3.0, 1.0), (5.0, 5.0)] {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("VD", d, Netlist::GROUND, Waveform::Dc(vds))
            .unwrap();
        nl.vsource("VG", g, Netlist::GROUND, Waveform::Dc(vgs))
            .unwrap();
        nl.nmos("M1", d, g, Netlist::GROUND, params).unwrap();
        let op = Simulator::new(&nl).op().unwrap();
        let sim = -op.vsource_current(&nl, "VD").unwrap();
        let expect = reference.ids(vgs, vds);
        assert!(
            (sim - expect).abs() <= 1e-9 + 1e-6 * expect.abs(),
            "vgs={vgs} vds={vds}: {sim:.3e} vs {expect:.3e}"
        );
    }
}
