//! Integration tests for the end-to-end flow: logic → synthesis →
//! device → extraction → circuit, spanning every crate in the workspace.

use four_terminal_lattice::circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use four_terminal_lattice::circuit::model::SwitchCircuitModel;
use four_terminal_lattice::device::{DeviceKind, Dielectric};
use four_terminal_lattice::logic::generators;
use four_terminal_lattice::pipeline::Pipeline;

#[test]
fn pipeline_realizes_basic_gates() {
    let pipeline = Pipeline::standard();
    for (name, f) in [
        ("AND2", generators::and(2)),
        ("OR2", generators::or(2)),
        ("XOR2", generators::xor(2)),
        ("MAJ3", generators::majority(3)),
    ] {
        let run = pipeline.realize(&f).expect(name);
        assert!(run.verified, "{name}: circuit must compute NOT f");
    }
}

#[test]
fn pipeline_realizes_xor3_on_the_minimal_lattice() {
    let f = generators::xor(3);
    let lat = four_terminal_lattice::circuit::experiments::xor3_lattice();
    let run = Pipeline::standard().realize_lattice(&f, lat).expect("flow");
    assert!(run.verified);
    assert_eq!(run.area(), 9, "paper Fig. 3b: nine switches");
}

#[test]
fn cross_device_technology_also_works_in_circuits() {
    // The paper models the square device; the flow is generic — the cross
    // device's extracted model must also yield working logic.
    let mut pipeline = Pipeline::standard();
    pipeline.kind = DeviceKind::Cross;
    let run = pipeline.realize(&generators::and(2)).expect("cross flow");
    assert!(run.verified, "cross-gate switches make functional circuits");
}

#[test]
fn sio2_technology_fails_at_low_vdd_but_works_at_high_vdd() {
    // SiO2 square device: Vth ≈ 1.4 V > VDD = 1.2 V, so the standard
    // bench cannot switch — exactly why the paper uses HfO2 at 1.2 V.
    let f = generators::and(2);
    let model =
        SwitchCircuitModel::from_device(DeviceKind::Square, Dielectric::SiO2).expect("extraction");
    let lat = four_terminal_lattice::synth::dual::altun_riedel(&f).expect("synthesis");

    let low = LatticeCircuit::build(&lat, 2, &model, BenchConfig::default()).expect("build");
    let v_low = low.dc_output(0b11).expect("dc");
    assert!(v_low > 0.6, "1.2 V cannot turn on the SiO2 switch: {v_low}");

    let bench = BenchConfig {
        vdd: 5.0,
        ..BenchConfig::default()
    };
    let high = LatticeCircuit::build(&lat, 2, &model, bench).expect("build");
    let v_high = high.dc_output(0b11).expect("dc");
    assert!(v_high < 2.0, "5 V drives the SiO2 switch on: {v_high}");
}

#[test]
fn synthesized_area_tracks_isop_sizes() {
    // Altun–Riedel size = |ISOP(f^D)| × |ISOP(f)|; the pipeline picks the
    // smaller of the column and dual constructions.
    let f = generators::xor(3);
    let run = Pipeline::standard().realize(&f).expect("flow");
    assert!(
        run.area() <= 16,
        "must not exceed the 4×4 dual construction"
    );
}
