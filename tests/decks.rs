//! The example SPICE decks under `examples/decks/` and the promises the
//! deck frontend makes about them: the XOR3 deck *is* the Fig. 11
//! builder-constructed job (byte-identical results), and `fts run` /
//! `POST /v1/decks` report the same bytes for the same deck.

use std::process::{Command, Stdio};

use four_terminal_lattice::batch::{
    outcome_json, AnalysisSpec, JobSource, JobSpec, PipelineJobBuilder,
};
use four_terminal_lattice::engine::{CacheMode, Engine, DEFAULT_MAX_SAMPLES};
use four_terminal_lattice::netlist::{self, ElabOptions};
use four_terminal_lattice::server::service::JobBuilder as _;

fn deck_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/decks")
        .join(name)
}

fn elaborate(text: &str) -> netlist::Elaborated {
    let deck = netlist::parse_str(text).expect("deck parses");
    netlist::elaborate(&deck, &ElabOptions::default()).expect("deck elaborates")
}

/// The Fig. 11 experiment as the batch/server builder constructs it: the
/// synthesized XOR3 lattice in its §V bench, driven through the full
/// 8-combination input walk (manifest-default timing).
fn fig11_builder_job() -> four_terminal_lattice::server::service::BuiltJob {
    let spec = JobSpec {
        source: JobSource::Function {
            name: "xor3".to_owned(),
            analysis: AnalysisSpec::Transient {
                phase_ns: 6.0,
                dt_ns: 0.1,
                max_samples: DEFAULT_MAX_SAMPLES,
            },
        },
        deadline_ms: None,
        ladder: false,
        label: None,
        waveform: false,
        cache: CacheMode::Default,
    };
    PipelineJobBuilder::new().build(&spec, 0).expect("builder")
}

/// `examples/decks/xor3_lattice.cir` is the exported form of the builder
/// job — and stays it. Regenerate with `UPDATE_DECKS=1 cargo test`.
#[test]
fn xor3_deck_is_the_exported_fig11_job() {
    let built = fig11_builder_job();
    let text = netlist::export_job(&built.job, built.out).expect("deck-expressible");
    let path = deck_path("xor3_lattice.cir");
    if std::env::var_os("UPDATE_DECKS").is_some() {
        std::fs::write(&path, &text).expect("write deck");
    }
    let committed = std::fs::read_to_string(&path).expect("committed deck");
    assert_eq!(
        committed, text,
        "examples/decks/xor3_lattice.cir is stale; rerun with UPDATE_DECKS=1"
    );
}

/// Elaborating the committed XOR3 deck reproduces the builder job's
/// results byte-for-byte — waveform arrays included.
#[test]
fn xor3_deck_results_match_the_builder_job_bytes() {
    let built = fig11_builder_job();
    let committed = std::fs::read_to_string(deck_path("xor3_lattice.cir")).expect("deck");
    let elab = elaborate(&committed);
    assert_eq!(elab.jobs.len(), 1, "one .tran card");
    assert_eq!(elab.out.index(), built.out.index(), "same report node");

    let mut jobs = vec![built.job, elab.jobs[0].clone()];
    // Identical inputs must stay identical through scheduling: run on one
    // thread so both jobs see the same solver, then compare full results.
    jobs[1].label = jobs[0].label.clone();
    let report = Engine::new().threads(1).run(jobs);
    let from_builder = outcome_json(&report.outcomes[0], built.out, true);
    let from_deck = outcome_json(&report.outcomes[1], elab.out, true);
    assert_eq!(from_builder, from_deck, "deck and builder results diverge");
    assert!(
        from_builder.contains("\"kind\":\"transient\""),
        "{from_builder}"
    );
}

/// The RC deck parses, runs both its analyses, and settles to the step
/// level (5 V across 8 ms ≈ 8 time constants).
#[test]
fn rc_step_deck_runs_and_settles() {
    let committed = std::fs::read_to_string(deck_path("rc_step.cir")).expect("deck");
    let elab = elaborate(&committed);
    assert_eq!(elab.jobs.len(), 2, "an .op and a .tran");
    assert_eq!(elab.jobs[0].label, "op-0");
    assert_eq!(elab.jobs[1].label, "tran-1");
    let report = Engine::new().threads(1).run(elab.jobs);
    assert_eq!(report.succeeded(), 2);
    let tran = outcome_json(&report.outcomes[1], elab.out, true);
    let peak: f64 = tran
        .split("\"out_peak_v\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .expect("peak in {tran}");
    assert!((peak - 5.0).abs() < 0.05, "expected ~5 V, got {peak}");
}

fn fts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fts"))
}

/// One-request HTTP client on the crate's own
/// [`WireClient`](four_terminal_lattice::server::WireClient).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let response = four_terminal_lattice::server::WireClient::new(addr)
        .call(method, path, Some(body))
        .expect("call");
    (response.status, response.body)
}

/// `fts run deck.cir` and `POST /v1/decks` with the same deck report the
/// same result bytes — the CLI and the HTTP service cannot drift.
#[test]
fn run_and_serve_report_identical_results_for_the_same_deck() {
    use std::io::{BufRead, BufReader};

    let path = deck_path("xor3_lattice.cir");
    let deck = std::fs::read_to_string(&path).expect("deck");

    // The CLI path, pinned to one thread like the server's solve below.
    let out = fts()
        .args(["run", path.to_str().unwrap(), "--threads", "1"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run_report = String::from_utf8_lossy(&out.stdout).to_string();
    let result_start = run_report.find("\"result\":").expect("run result");
    let result_end = run_report[result_start..].find("}}").unwrap() + result_start + 1;
    let run_result = &run_report[result_start..result_end];
    assert!(run_report.contains("\"label\":\"tran-0\""), "{run_report}");

    // The server path: POST the raw deck, poll the job to done.
    let mut child = fts()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let addr = line
        .trim()
        .strip_prefix("fts-server listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_owned();

    let (status, body) = http(&addr, "POST", "/v1/decks", &deck);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"ids\":[0]"), "{body}");
    let served = loop {
        let (status, body) = http(&addr, "GET", "/v1/jobs/0", "");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\":\"done\"") {
            break body;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let (status, _) = http(&addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(child
        .wait_with_output()
        .expect("server exit")
        .status
        .success());

    assert!(served.contains("\"label\":\"tran-0\""), "{served}");
    assert!(
        served.contains(run_result),
        "served result differs from `fts run`:\n  run:   {run_result}\n  serve: {served}"
    );
}
