//! End-to-end tests of the `fts` command-line interface.

use std::io::Write;
use std::process::{Command, Stdio};

fn fts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fts"))
}

#[test]
fn count_prints_table1_entries() {
    let out = fts().args(["count", "4", "5"]).output().expect("run");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "67");
}

#[test]
fn count_rejects_bad_arguments() {
    let out = fts().args(["count", "0", "3"]).output().expect("run");
    assert!(!out.status.success());
    let out = fts().args(["count", "xx", "3"]).output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn synth_reports_verified_lattice() {
    let out = fts().args(["synth", "xor3"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified: true"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = fts().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn lattice_subcommand_reads_stdin() {
    let mut child = fts()
        .args(["lattice", "-", "--vars", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"a' c' a\nb' 1 b\na c a'\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Inverse-parity truth table of XOR3 inputs ascending: 01101001 pattern
    // for XOR3 itself.
    assert!(text.contains("truth table"), "{text}");
    assert!(text.contains("01101001"), "{text}");
}

/// Golden help test: `fts help` must list every flag a subcommand
/// actually parses, on that subcommand's own usage line — help text and
/// the argument parsers cannot drift apart again (`fts serve` once
/// parsed `--retain-done` without documenting it).
#[test]
fn help_lists_every_flag_each_subcommand_parses() {
    let out = fts().args(["help"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();

    let line_with = |subcommand: &str| {
        text.lines()
            .find(|l| l.trim_start().starts_with(&format!("fts {subcommand}")))
            .unwrap_or_else(|| panic!("no usage line for {subcommand:?}:\n{text}"))
            .to_owned()
    };
    for (subcommand, flags) in [
        ("lattice", &["--vars"][..]),
        ("faults", &["--vars"][..]),
        ("run", &["--out", "--threads", "--waveform", "--trace"][..]),
        ("batch", &["--out", "--trace"][..]),
        (
            "serve",
            &[
                "--addr",
                "--workers",
                "--queue-depth",
                "--cache-entries",
                "--cache-bytes",
                "--retain-done",
                "--trace-events",
                "--worker",
                "--coordinator",
                "--workers-addrs",
                "--probe-ms",
                "--route-attempts",
                "--no-cascade",
            ][..],
        ),
        (
            "client",
            &["--chrome", "--state", "--cursor", "--limit"][..],
        ),
    ] {
        let line = line_with(subcommand);
        for flag in flags {
            assert!(
                line.contains(flag),
                "fts {subcommand} line lacks {flag}: {line}"
            );
        }
    }

    // `--help` and `-h` print the same text and also exit 0.
    for alias in ["--help", "-h"] {
        let out = fts().args([alias]).output().expect("run");
        assert!(out.status.success(), "{alias} should succeed");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            format!("{}\n", text.trim_end())
        );
    }
}

#[test]
fn run_reads_deck_from_stdin_and_writes_report() {
    let mut child = fts()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"v1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n.probe v(out)\n.op\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\":\"fts-batch-report/1\""), "{text}");
    assert!(text.contains("\"label\":\"op-0\""), "{text}");
    assert!(text.contains("\"out_v\":0.4999999997"), "{text}");
}

#[test]
fn run_trace_embeds_a_solver_journal() {
    let mut child = fts()
        .args(["run", "-", "--trace"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"v1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n.probe v(out)\n.op\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"trace\":{"), "{text}");
    assert!(text.contains("\"kind\":\"newton_converged\""), "{text}");
    assert!(text.contains("\"kind\":\"job_done\""), "{text}");
}

#[test]
fn run_rejects_malformed_decks_with_position() {
    let dir = std::env::temp_dir().join(format!("fts-run-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let deck = dir.join("bad.cir");
    std::fs::write(&deck, "v1 in 0 dc 1\nr1 in out\n.op\n").expect("write");
    let out = fts()
        .args(["run", deck.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_runs_manifest_and_writes_report() {
    let dir = std::env::temp_dir().join(format!("fts-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let manifest = dir.join("manifest.json");
    let report = dir.join("report.json");
    std::fs::write(
        &manifest,
        r#"{"threads": 2, "jobs": [
            {"function": "xor2", "analysis": "op", "input": 1, "label": "xor2-01"},
            {"function": "xor2", "analysis": "op", "input": 0, "retry": "ladder"}
        ]}"#,
    )
    .expect("write manifest");
    let out = fts()
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&report).expect("report written");
    assert!(text.contains("\"schema\":\"fts-batch-report/1\""), "{text}");
    assert!(text.contains("\"succeeded\":2"), "{text}");
    assert!(text.contains("\"xor2-01\""), "{text}");
    assert!(text.contains("\"out_v\":"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_rejects_bad_manifest() {
    let dir = std::env::temp_dir().join(format!("fts-badbatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let manifest = dir.join("manifest.json");
    std::fs::write(&manifest, r#"{"jobs": [{"analysis": "op"}]}"#).expect("write");
    let out = fts()
        .args(["batch", manifest.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("function"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// One-request HTTP client against the spawned server — the crate's own
/// [`WireClient`](four_terminal_lattice::server::WireClient), i.e. the
/// same implementation `fts client` and the coordinator ride on.
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let response = four_terminal_lattice::server::WireClient::new(addr)
        .call(method, path, body)
        .expect("call");
    (response.status, response.body)
}

#[test]
fn serve_smoke_matches_batch_and_shuts_down() {
    use std::io::{BufRead, BufReader};

    let manifest =
        r#"{"jobs": [{"function": "xor2", "analysis": "op", "input": 1, "label": "smoke"}]}"#;

    // Reference result through the batch path.
    let dir = std::env::temp_dir().join(format!("fts-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let mpath = dir.join("manifest.json");
    std::fs::write(&mpath, manifest).expect("write manifest");
    let out = fts()
        .args(["batch", mpath.to_str().unwrap()])
        .output()
        .expect("run batch");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batch_report = String::from_utf8_lossy(&out.stdout).to_string();
    let result_start = batch_report.find("\"result\":").expect("batch result");
    // The result object runs to the row's closing brace; grab through the
    // next "}}" which terminates {"result":{...}}.
    let result_end = batch_report[result_start..].find("}}").unwrap() + result_start + 1;
    let batch_result = &batch_report[result_start..result_end];
    std::fs::remove_dir_all(&dir).ok();

    // Start the server on an ephemeral port and scrape the startup line.
    let mut child = fts()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let addr = line
        .trim()
        .strip_prefix("fts-server listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_owned();

    // Health, submit, poll to done.
    let (status, body) = http(&addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "{body}");
    let (status, body) = http(&addr, "POST", "/v1/jobs", Some(manifest));
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"ids\":[0]"), "{body}");
    let served = loop {
        let (status, body) = http(&addr, "GET", "/v1/jobs/0", None);
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\":\"done\"") {
            break body;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };

    // The served result must be the exact bytes the batch path reported.
    assert!(
        served.contains(batch_result),
        "served result differs from batch:\n  batch: {batch_result}\n  serve: {served}"
    );

    // Metrics exposes the job count; shutdown exits cleanly.
    let (status, body) = http(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(body.contains("fts_jobs_completed 1"), "{body}");
    let (status, _) = http(&addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 200);
    let out = child.wait_with_output().expect("server exit");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("fts-server drained: 1 jobs completed"),
        "{err}"
    );
}

/// Spawns an `fts serve …` process and scrapes its startup banner for
/// the bound address. The child keeps running; callers shut it down
/// over the wire.
fn spawn_serve(args: &[&str], banner_prefix: &str) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};

    let mut child = fts()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let addr = line
        .trim()
        .strip_prefix(banner_prefix)
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_owned();
    (child, addr)
}

/// Runs `fts client <addr> <args…>` (optionally with stdin) and returns
/// (exit-ok, stdout).
fn client(addr: &str, args: &[&str], stdin: Option<&str>) -> (bool, String) {
    let mut cmd = fts();
    cmd.args(["client", addr]).args(args);
    let out = match stdin {
        Some(text) => {
            let mut child = cmd
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn client");
            child
                .stdin
                .as_mut()
                .expect("stdin")
                .write_all(text.as_bytes())
                .expect("write");
            child.wait_with_output().expect("client exit")
        }
        None => cmd.output().expect("run client"),
    };
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
    )
}

#[test]
fn coordinator_smoke_routes_jobs_and_cascades_shutdown() {
    // Two workers on ephemeral ports, then a coordinator fronting them.
    let (w0, w0_addr) = spawn_serve(
        &[
            "serve",
            "--worker",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ],
        "fts-server listening on ",
    );
    let (w1, w1_addr) = spawn_serve(
        &[
            "serve",
            "--worker",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ],
        "fts-server listening on ",
    );
    let (coord, coord_addr) = spawn_serve(
        &[
            "serve",
            "--coordinator",
            "--addr",
            "127.0.0.1:0",
            "--workers-addrs",
            &format!("{w0_addr},{w1_addr}"),
        ],
        "fts-coordinator listening on ",
    );

    let manifest = r#"{"jobs": [
        {"function": "xor2", "analysis": "op", "input": 0},
        {"function": "xor2", "analysis": "op", "input": 1},
        {"function": "xor2", "analysis": "op", "input": 2},
        {"function": "xor2", "analysis": "op", "input": 3}
    ]}"#;
    let (ok, body) = client(&coord_addr, &["submit", "-"], Some(manifest));
    assert!(ok, "{body}");
    assert!(body.contains("\"ids\":[0,1,2,3]"), "{body}");

    // XOR2 truth table through the fleet. A conducting lattice pulls
    // the output node low, so inputs where XOR2 is true (1, 2) read
    // ~0.1 V and false inputs (0, 3) read ~1.2 V.
    for (id, xor_true) in [(0, false), (1, true), (2, true), (3, false)] {
        let (ok, body) = client(&coord_addr, &["wait", &id.to_string()], None);
        assert!(ok, "{body}");
        assert!(body.contains("\"kind\":\"op\""), "{body}");
        let out_v: f64 = body
            .split("\"out_v\":")
            .nth(1)
            .and_then(|s| s.split(['}', ',']).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no out_v in {body}"));
        assert_eq!(out_v < 0.6, xor_true, "job {id}: out_v {out_v}\n{body}");
    }

    // Listing via the CLI, health shows the whole fleet up.
    let (ok, body) = client(&coord_addr, &["list", "--state", "done"], None);
    assert!(ok, "{body}");
    assert_eq!(body.matches("\"worker\":").count(), 4, "{body}");
    let (ok, body) = client(&coord_addr, &["health"], None);
    assert!(ok, "{body}");
    assert!(body.contains("\"total\":2,\"up\":2"), "{body}");

    // Non-2xx surfaces as exit 1 and keeps stdout clean for jq use.
    let (ok, out) = client(&coord_addr, &["status", "99"], None);
    assert!(!ok, "unknown id must exit nonzero");
    assert_eq!(out, "", "error envelope goes to stderr, not stdout");

    // One shutdown at the coordinator cascades to both workers.
    let (ok, _) = client(&coord_addr, &["shutdown"], None);
    assert!(ok);
    let coord_out = coord.wait_with_output().expect("coordinator exit");
    assert!(coord_out.status.success());
    let err = String::from_utf8_lossy(&coord_out.stderr);
    assert!(
        err.contains("fts-coordinator drained: 4 jobs completed"),
        "{err}"
    );
    for w in [w0, w1] {
        let out = w.wait_with_output().expect("worker exit");
        assert!(out.status.success(), "worker did not drain cleanly");
    }
}

#[test]
fn characterize_prints_figures_of_merit() {
    let out = fts()
        .args(["characterize", "cross", "sio2"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Vth"), "{text}");
    assert!(text.contains("on/off"), "{text}");
}
