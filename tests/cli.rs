//! End-to-end tests of the `fts` command-line interface.

use std::io::Write;
use std::process::{Command, Stdio};

fn fts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fts"))
}

#[test]
fn count_prints_table1_entries() {
    let out = fts().args(["count", "4", "5"]).output().expect("run");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "67");
}

#[test]
fn count_rejects_bad_arguments() {
    let out = fts().args(["count", "0", "3"]).output().expect("run");
    assert!(!out.status.success());
    let out = fts().args(["count", "xx", "3"]).output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn synth_reports_verified_lattice() {
    let out = fts().args(["synth", "xor3"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified: true"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = fts().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn lattice_subcommand_reads_stdin() {
    let mut child = fts()
        .args(["lattice", "-", "--vars", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"a' c' a\nb' 1 b\na c a'\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Inverse-parity truth table of XOR3 inputs ascending: 01101001 pattern
    // for XOR3 itself.
    assert!(text.contains("truth table"), "{text}");
    assert!(text.contains("01101001"), "{text}");
}

#[test]
fn batch_runs_manifest_and_writes_report() {
    let dir = std::env::temp_dir().join(format!("fts-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let manifest = dir.join("manifest.json");
    let report = dir.join("report.json");
    std::fs::write(
        &manifest,
        r#"{"threads": 2, "jobs": [
            {"function": "xor2", "analysis": "op", "input": 1, "label": "xor2-01"},
            {"function": "xor2", "analysis": "op", "input": 0, "retry": "ladder"}
        ]}"#,
    )
    .expect("write manifest");
    let out = fts()
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&report).expect("report written");
    assert!(text.contains("\"schema\":\"fts-batch-report/1\""), "{text}");
    assert!(text.contains("\"succeeded\":2"), "{text}");
    assert!(text.contains("\"xor2-01\""), "{text}");
    assert!(text.contains("\"out_v\":"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_rejects_bad_manifest() {
    let dir = std::env::temp_dir().join(format!("fts-badbatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let manifest = dir.join("manifest.json");
    std::fs::write(&manifest, r#"{"jobs": [{"analysis": "op"}]}"#).expect("write");
    let out = fts()
        .args(["batch", manifest.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("function"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn characterize_prints_figures_of_merit() {
    let out = fts()
        .args(["characterize", "cross", "sio2"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Vth"), "{text}");
    assert!(text.contains("on/off"), "{text}");
}
