//! Virtual-TCAD device exploration (§III of the paper): characterize the
//! square, cross, and junctionless devices with both gate dielectrics and
//! compare against the paper's reported values.
//!
//! ```text
//! cargo run --release --example device_explorer
//! ```

use four_terminal_lattice::device::calibration::paper_targets;
use four_terminal_lattice::device::capacitance;
use four_terminal_lattice::device::characterize::characterize;
use four_terminal_lattice::device::{BiasCase, Device, DeviceGeometry, DeviceKind, Dielectric};

fn main() {
    println!(
        "{:<14} {:<6} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "device", "gate", "Vth [V]", "paper", "on/off", "paper", "SS mV/dec"
    );
    for kind in DeviceKind::all() {
        for dielectric in Dielectric::all() {
            let dev = Device::new(kind, dielectric);
            let r = characterize(&dev);
            let t = paper_targets(kind, dielectric);
            println!(
                "{:<14} {:<6} {:>9.3} {:>9.2} {:>11.2e} {:>11.0e} {:>9.1}",
                kind.name(),
                dielectric.name(),
                r.vth,
                t.vth_v,
                r.on_off_ratio,
                t.on_off_ratio,
                r.swing_mv_per_dec
            );
        }
    }

    // Physical check of the paper's "1 fF per terminal" estimate.
    println!("\nterminal-capacitance estimates (paper uses 1 fF):");
    for kind in DeviceKind::all() {
        let g = DeviceGeometry::table2(kind);
        let c = capacitance::estimate(&g);
        println!(
            "  {:<14} junction {:.3} fF + sidewall {:.3} fF + wiring {:.3} fF = {:.3} fF",
            kind.name(),
            c.junction_bottom * 1e15,
            c.junction_sidewall * 1e15,
            c.wiring * 1e15,
            c.total() * 1e15
        );
    }

    // Per-terminal currents in the sixteen bias cases of §III-B for the
    // square HfO2 device at Vg = Vd = 5 V.
    println!("\nper-terminal currents (square HfO2, Vg = Vd = 5 V) [µA]:");
    let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9}",
        "case", "T1", "T2", "T3", "T4"
    );
    for case in BiasCase::paper_cases() {
        let sol = dev.solve_bias(case, 5.0, 5.0);
        println!(
            "{:<6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            case.to_string(),
            sol.currents[0] * 1e6,
            sol.currents[1] * 1e6,
            sol.currents[2] * 1e6,
            sol.currents[3] * 1e6
        );
    }
}
