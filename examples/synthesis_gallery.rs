//! Lattice-synthesis gallery: compare the three synthesis engines on the
//! benchmark functions of the paper's §II.
//!
//! ```text
//! cargo run --release --example synthesis_gallery
//! ```

use four_terminal_lattice::logic::{generators, isop, TruthTable};
use four_terminal_lattice::synth::search::{anneal_minimal, AnnealOptions};
use four_terminal_lattice::synth::{column, dual};

fn report(name: &str, f: &TruthTable) {
    let cover = isop::isop(f);
    let ar = dual::altun_riedel(f).expect("construction always succeeds");
    let col = column::column_construction(f).expect("vars in range");
    let annealed = anneal_minimal(f, 9, &AnnealOptions::default());

    print!(
        "{:<10} |ISOP| = {:<3} Altun-Riedel {}x{} ({} sw)",
        name,
        cover.len(),
        ar.rows(),
        ar.cols(),
        ar.site_count()
    );
    match &col {
        Some(l) => print!(
            "   column {}x{} ({} sw)",
            l.rows(),
            l.cols(),
            l.site_count()
        ),
        None => print!("   column n/a"),
    }
    match &annealed {
        Some(l) => println!(
            "   annealed {}x{} ({} sw)",
            l.rows(),
            l.cols(),
            l.site_count()
        ),
        None => println!("   annealed: none within budget"),
    }

    // Every engine's output must compute exactly f.
    assert_eq!(ar.truth_table(f.vars()).unwrap(), *f);
    if let Some(l) = col {
        assert_eq!(l.truth_table(f.vars()).unwrap(), *f);
    }
    if let Some(l) = annealed {
        assert_eq!(l.truth_table(f.vars()).unwrap(), *f);
    }
}

fn main() {
    println!("engines: Altun-Riedel dual cover / column-per-product / simulated annealing\n");
    report("AND3", &generators::and(3));
    report("OR3", &generators::or(3));
    report("XOR2", &generators::xor(2));
    report("XOR3", &generators::xor(3));
    report("XNOR3", &generators::xnor(3));
    report("MAJ3", &generators::majority(3));
    report("TH2of4", &generators::threshold(4, 2));

    // A couple of seeded random functions for breadth.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2019);
    for k in 0..2 {
        let f = generators::random(3, &mut rng);
        if f.is_zero() || f.is_one() {
            continue;
        }
        report(&format!("rand3-{k}"), &f);
    }
}
