//! The paper's flagship circuit experiment (Fig. 11): transient analysis
//! of the inverse XOR3 computed by a 3×3 switching lattice.
//!
//! ```text
//! cargo run --release --example xor3_lattice_circuit
//! ```

use four_terminal_lattice::circuit::experiments::{xor3_lattice, Xor3Experiment};
use four_terminal_lattice::circuit::model::SwitchCircuitModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("XOR3 lattice (paper Fig. 3b, 9 switches):");
    println!("{}", xor3_lattice());

    let model = SwitchCircuitModel::square_hfo2()?;
    let report = Xor3Experiment::paper().run(&model)?;

    println!("\ntransient results (paper values in brackets):");
    println!("  functional      : {}", report.functional);
    println!("  V_OL            : {:.3} V  [0.22 V]", report.v_ol);
    println!("  V_OH            : {:.3} V  [~1.2 V]", report.v_oh);
    println!(
        "  rise time 10-90 : {:.2} ns  [11.3 ns]",
        report.rise_s.map(|t| t * 1e9).unwrap_or(f64::NAN)
    );
    println!(
        "  fall time 90-10 : {:.2} ns  [4.7 ns]",
        report.fall_s.map(|t| t * 1e9).unwrap_or(f64::NAN)
    );

    println!("\nsettled output per input phase (abc, expected = NOT XOR3):");
    for (x, lvl) in report.phase_levels.iter().enumerate() {
        println!("  {:03b} -> {:.3} V", x, lvl);
    }

    // Coarse ASCII rendering of the output waveform.
    println!("\noutput waveform (80 columns across the full transient):");
    let stride = report.time.len() / 80;
    let mut line = String::new();
    for k in (0..report.time.len()).step_by(stride.max(1)) {
        let v = report.output[k];
        line.push(if v > 0.9 {
            '#'
        } else if v > 0.6 {
            '+'
        } else if v > 0.3 {
            '.'
        } else {
            '_'
        });
    }
    println!("  {line}");
    Ok(())
}
