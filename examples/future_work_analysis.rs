//! The paper's §VI-A roadmap, executed: complementary (dual-rail) lattice
//! vs the resistive bench, small-signal bandwidth, defect analysis of the
//! XOR3 realization, and the automated design-space explorer.
//!
//! ```text
//! cargo run --release --example future_work_analysis
//! ```

use four_terminal_lattice::circuit::complementary::ComplementaryCircuit;
use four_terminal_lattice::circuit::experiments::xor3_lattice;
use four_terminal_lattice::circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use four_terminal_lattice::circuit::metrics::{measure_lattice_circuit, output_bandwidth};
use four_terminal_lattice::circuit::model::SwitchCircuitModel;
use four_terminal_lattice::explorer::{explore, DesignSpec, ExploreOptions};
use four_terminal_lattice::lattice::defects;
use four_terminal_lattice::logic::generators;
use four_terminal_lattice::spice::analysis::log_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SwitchCircuitModel::square_hfo2()?;
    let f = generators::xor(3);
    let lat = xor3_lattice();

    // 1. Complementary vs resistive bench: static power and low level.
    println!("== complementary pull-up vs 500 kOhm resistor (XOR3) ==");
    let resistive = LatticeCircuit::build(&lat, 3, &model, BenchConfig::default())?;
    let m = measure_lattice_circuit(&resistive, 3, 60e-9, 1e-9)?;
    let pu = four_terminal_lattice::synth::synthesize(&!&f)?.lattice;
    let comp = ComplementaryCircuit::build(&lat, &pu, 3, &model, BenchConfig::default())?;
    let mut comp_static_worst = 0.0f64;
    let mut comp_vol_worst = 0.0f64;
    for x in 0..8u32 {
        comp_static_worst = comp_static_worst.max(comp.static_supply_current(x)? * 1.2);
        if f.eval(x) {
            comp_vol_worst = comp_vol_worst.max(comp.dc_output(x)?);
        }
    }
    println!(
        "  resistive bench   : worst static power {:.3e} W, V_OL ~0.19 V",
        m.static_power_worst
    );
    println!(
        "  complementary     : worst static power {:.3e} W, V_OL {:.4} V",
        comp_static_worst, comp_vol_worst
    );
    println!(
        "  static-power saving: {:.0}x  (paper: 'almost zero')",
        m.static_power_worst / comp_static_worst.max(1e-18)
    );

    // 2. Small-signal bandwidth of the resistive bench.
    println!("\n== small-signal output bandwidth (input a, lattice ON path) ==");
    let freqs = log_sweep(1e3, 1e12, 91);
    if let Some(bw) = output_bandwidth(&resistive, 3, 0b111, 0, &freqs)? {
        println!("  -3 dB bandwidth: {:.3e} Hz", bw);
    } else {
        println!("  response flat across the sweep");
    }
    if let Some(d) = m.worst_delay {
        println!(
            "  worst 50%-50% delay: {:.2} ns -> max toggle rate {:.2} MHz",
            d * 1e9,
            1e-6 / (2.0 * d)
        );
    }

    // 3. Defect analysis of the XOR3 lattice.
    println!("\n== single-switch defect analysis of the 3x3 XOR3 lattice ==");
    let report = defects::analyze(&lat, 3)?;
    println!(
        "  {} faults, {} undetectable, worst impact {} of 8 rows, detectability {:.1}%",
        report.total,
        report.undetectable,
        report.worst_impact,
        report.detectability() * 100.0
    );
    for (site, impact) in defects::critical_sites(&lat, 3, 3)? {
        println!(
            "  critical switch at {:?}: up to {} rows corrupted",
            site, impact
        );
    }

    // 4. Automated design tool (fast settings).
    println!("\n== design-space exploration: XOR2 ==");
    let g = generators::xor(2);
    let opts = ExploreOptions {
        phase: 40e-9,
        dt: 2e-9,
        ..Default::default()
    };
    let ex = explore(&g, &model, &opts)?;
    for c in &ex.candidates {
        println!(
            "  {:<13} {}x{} ({} sw)  delay {:>7.2} ns  static {:>9.3e} W  energy {:>9.3e} J",
            c.source,
            c.lattice.rows(),
            c.lattice.cols(),
            c.lattice.site_count(),
            c.metrics.worst_delay.map(|d| d * 1e9).unwrap_or(f64::NAN),
            c.metrics.static_power_worst,
            c.metrics.transient_energy
        );
    }
    let spec = DesignSpec {
        max_area: Some(6),
        ..Default::default()
    };
    match ex.recommend(&spec) {
        Some(c) => println!(
            "  recommended under max_area=6: {} {}x{}",
            c.source,
            c.lattice.rows(),
            c.lattice.cols()
        ),
        None => println!("  nothing meets max_area=6"),
    }
    Ok(())
}
