//! Quickstart: realize a Boolean function as a four-terminal switching
//! lattice circuit, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use four_terminal_lattice::logic::generators;
use four_terminal_lattice::pipeline::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The function the paper's intro motivates: compact two-dimensional
    // realizations of multi-product functions. Majority-of-3 is self-dual,
    // so the Altun–Riedel construction gives a 3×3 lattice.
    let f = generators::majority(3);
    println!(
        "target function: MAJ3 = {}",
        four_terminal_lattice::logic::isop::isop(&f)
    );

    let run = Pipeline::standard().realize(&f)?;

    println!(
        "\nsynthesized lattice ({}x{}):",
        run.lattice.rows(),
        run.lattice.cols()
    );
    println!("{}", run.lattice);
    println!("\nswitch model (square-gate HfO2 device, level-1 fit):");
    println!(
        "  Type A: Kp = {:.3e} A/V², Vth = {:.3} V, lambda = {:.3} 1/V",
        run.model.type_a.kp, run.model.type_a.vth, run.model.type_a.lambda
    );
    println!(
        "  Type B: Kp = {:.3e} A/V², Vth = {:.3} V, lambda = {:.3} 1/V",
        run.model.type_b.kp, run.model.type_b.vth, run.model.type_b.lambda
    );

    println!("\nDC verification (output = NOT f, ratioed levels):");
    for x in 0..(1u32 << f.vars()) {
        let v = run.circuit.dc_output(x)?;
        println!(
            "  abc = {:03b}  ->  out = {:.3} V  ({})",
            x,
            v,
            if v > 0.6 { "HIGH" } else { "low" }
        );
    }
    println!("\ncircuit verified: {}", run.verified);
    Ok(())
}
